"""The edge controller: the centralized brain of one edge service.

Global Switchboard asks it for the ingress/egress sites of a chain
(Figure 4, step 1) and tells it which classifier and egress-table
entries to install (step 4).  The controller hides which concrete edge
instances exist at each site -- exactly the service-oriented split the
paper advocates.
"""

from __future__ import annotations

from repro.dataplane.labels import Labels
from repro.edge.classifier import ClassifierRule
from repro.edge.instance import EdgeError, EdgeInstance


class EdgeController:
    """Controller for one edge service (e.g. 'enterprise-vpn')."""

    def __init__(self, service_name: str):
        self.service_name = service_name
        #: site -> edge instances at that site.
        self._instances: dict[str, list[EdgeInstance]] = {}
        #: customer attachment: attachment id -> site (e.g. the site a
        #: customer's CPE homes to).
        self._attachments: dict[str, str] = {}

    # -- registration -------------------------------------------------

    def register_instance(self, instance: EdgeInstance) -> None:
        self._instances.setdefault(instance.site, []).append(instance)

    def register_attachment(self, attachment_id: str, site: str) -> None:
        """Record that a customer attachment point homes to a site."""
        self._attachments[attachment_id] = site

    def instances_at(self, site: str) -> list[EdgeInstance]:
        return list(self._instances.get(site, []))

    @property
    def sites(self) -> list[str]:
        return sorted(self._instances)

    # -- queries from Global Switchboard ----------------------------------

    def resolve_site(self, attachment_id: str) -> str:
        """Map a chain spec's ingress/egress attachment to a site."""
        try:
            return self._attachments[attachment_id]
        except KeyError:
            raise EdgeError(
                f"edge service {self.service_name!r}: unknown attachment "
                f"{attachment_id!r}"
            ) from None

    # -- configuration pushed by Global Switchboard -------------------------

    def install_chain(
        self,
        site: str,
        labels: Labels,
        classifier: ClassifierRule | None,
        egress_routes: list[tuple[str, str]] | None = None,
    ) -> list[EdgeInstance]:
        """Configure every instance at a site for a chain.

        ``classifier`` applies on the ingress side (it carries the chain
        label); ``egress_routes`` are (prefix, egress site) pairs for the
        per-customer routing table.  Returns the configured instances.
        """
        instances = self._instances.get(site, [])
        if not instances:
            raise EdgeError(
                f"edge service {self.service_name!r} has no instances at "
                f"{site!r}"
            )
        for instance in instances:
            if classifier is not None:
                instance.install_classifier(classifier)
            for prefix, egress_site in egress_routes or []:
                instance.egress_table.add_route(prefix, egress_site)
        return instances

    def remove_chain(self, labels: Labels) -> None:
        for instances in self._instances.values():
            for instance in instances:
                instance.remove_classifier(labels.chain)
