"""Edge instances: the chain's ingress and egress endpoints.

An edge instance classifies arriving customer packets (applying the two
overlay labels), hands them to its attached forwarder, and at the far
end strips the labels before final delivery.  It remembers, per flow,
which forwarder delivered the forward direction so that reverse packets
re-enter the chain through the same forwarder (the symmetric-return
anchor of Section 5.3).
"""

from __future__ import annotations

from repro.dataplane.forwarder import DataPlane, ForwardingError
from repro.dataplane.labels import FiveTuple, Labels, Packet
from repro.edge.classifier import ClassifierRule, EgressTable


class EdgeError(Exception):
    """Raised on edge misconfiguration."""


class EdgeInstance:
    """One edge instance at one site, attached to one forwarder."""

    def __init__(self, name: str, site: str, dataplane: DataPlane):
        self.name = name
        self.site = site
        self.dataplane = dataplane
        self.forwarder: str | None = None
        self.classifier: list[ClassifierRule] = []
        self.egress_table = EgressTable()
        #: Packets delivered out of the chain to local destinations.
        self.delivered: list[Packet] = []
        #: Packets that failed classification (no chain matched).
        self.unclassified: list[Packet] = []
        #: flow -> (labels, forwarder the forward direction arrived from).
        self._flow_memory: dict[FiveTuple, tuple[Labels, str]] = {}
        dataplane.add_endpoint(self)

    # -- control plane ----------------------------------------------------

    def attach_forwarder(self, forwarder_name: str) -> None:
        if forwarder_name not in self.dataplane.forwarders:
            raise EdgeError(f"unknown forwarder {forwarder_name!r}")
        if self.dataplane.forwarders[forwarder_name].site != self.site:
            raise EdgeError("edge instance and forwarder must share a site")
        self.forwarder = forwarder_name

    def install_classifier(self, rule: ClassifierRule) -> None:
        self.classifier.append(rule)

    def remove_classifier(self, chain_label: int) -> None:
        self.classifier = [
            r for r in self.classifier if r.chain_label != chain_label
        ]

    # -- ingress path -----------------------------------------------------------

    def classify(self, flow: FiveTuple) -> int | None:
        """First-match classification to a chain label."""
        for rule in self.classifier:
            if rule.matches(flow):
                return rule.chain_label
        return None

    def ingress(self, packet: Packet) -> Packet:
        """Label an arriving customer packet and walk it down the chain."""
        if self.forwarder is None:
            raise EdgeError(f"edge {self.name!r} has no attached forwarder")
        packet.record(self.name)
        chain_label = self.classify(packet.flow)
        if chain_label is None:
            self.unclassified.append(packet)
            return packet
        egress_site = self.egress_table.lookup(packet.flow.dst_ip)
        if egress_site is None:
            self.unclassified.append(packet)
            return packet
        packet.labels = Labels(chain_label, egress_site)
        return self.dataplane.send_forward(packet, self.forwarder, self.name)

    def send_reverse(self, packet: Packet) -> Packet:
        """Inject a reverse-direction packet for a flow this edge egressed.

        ``packet.flow`` must be the reversed five-tuple of a forward flow
        previously delivered here.
        """
        forward_flow = packet.flow.reversed()
        memory = self._flow_memory.get(forward_flow)
        if memory is None:
            raise ForwardingError(
                f"edge {self.name!r}: no flow state for reverse of {forward_flow}"
            )
        labels, return_forwarder = memory
        packet.labels = labels
        packet.record(self.name)
        return self.dataplane.send_reverse(packet, return_forwarder, self.name)

    # -- egress path -------------------------------------------------------------

    def receive_from_chain(self, packet: Packet, came_from: str) -> None:
        """Terminate the chain: strip labels, deliver, remember the flow."""
        packet.record(self.name)
        if packet.direction == "forward" and packet.labels is not None:
            self._flow_memory[packet.flow] = (packet.labels, came_from)
        packet.labels = None
        self.delivered.append(packet)

    def __repr__(self) -> str:
        return f"EdgeInstance({self.name!r}, site={self.site!r})"
