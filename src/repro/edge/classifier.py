"""Packet classification at the edge (Section 5.3, Conformity).

"An edge instance applies the first service chain label by parsing and
matching the packet header fields to the chain specification.  It
applies the egress site label using a per-customer routing table that
associates a destination address with an egress site."
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

from repro.dataplane.labels import FiveTuple


class ClassifierError(Exception):
    """Raised on malformed classifier rules."""


def ip_in_prefix(ip: str, prefix: str) -> bool:
    """True if ``ip`` falls inside the CIDR ``prefix``."""
    return ipaddress.ip_address(ip) in ipaddress.ip_network(prefix, strict=False)


@dataclass(frozen=True)
class ClassifierRule:
    """Matches a traffic slice onto a chain label.

    Any field left as None is a wildcard.  Port ranges are inclusive.
    Rules are evaluated in installation order; first match wins (the
    usual longest-prefix nuance is delegated to rule ordering, as with
    VLAN/flow classifiers on real CPE).
    """

    chain_label: int
    src_prefix: str | None = None
    dst_prefix: str | None = None
    protocol: str | None = None
    src_port_range: tuple[int, int] | None = None
    dst_port_range: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        for prefix in (self.src_prefix, self.dst_prefix):
            if prefix is not None:
                ipaddress.ip_network(prefix, strict=False)  # validate
        for ports in (self.src_port_range, self.dst_port_range):
            if ports is not None and ports[0] > ports[1]:
                raise ClassifierError(f"invalid port range {ports}")

    def matches(self, flow: FiveTuple) -> bool:
        if self.src_prefix is not None and not ip_in_prefix(
            flow.src_ip, self.src_prefix
        ):
            return False
        if self.dst_prefix is not None and not ip_in_prefix(
            flow.dst_ip, self.dst_prefix
        ):
            return False
        if self.protocol is not None and flow.protocol != self.protocol:
            return False
        if self.src_port_range is not None and not (
            self.src_port_range[0] <= flow.src_port <= self.src_port_range[1]
        ):
            return False
        if self.dst_port_range is not None and not (
            self.dst_port_range[0] <= flow.dst_port <= self.dst_port_range[1]
        ):
            return False
        return True


class EgressTable:
    """Per-customer routing table: destination prefix -> egress site.

    Longest-prefix match, as the VRF-based route redistribution the paper
    references would provide.
    """

    def __init__(self) -> None:
        self._routes: list[tuple[ipaddress.IPv4Network | ipaddress.IPv6Network, str]] = []

    def add_route(self, prefix: str, egress_site: str) -> None:
        self._routes.append((ipaddress.ip_network(prefix, strict=False), egress_site))
        self._routes.sort(key=lambda r: r[0].prefixlen, reverse=True)

    def remove_route(self, prefix: str) -> bool:
        network = ipaddress.ip_network(prefix, strict=False)
        before = len(self._routes)
        self._routes = [(p, s) for p, s in self._routes if p != network]
        return len(self._routes) != before

    def lookup(self, dst_ip: str) -> str | None:
        address = ipaddress.ip_address(dst_ip)
        for prefix, site in self._routes:
            if address in prefix:
                return site
        return None

    def __len__(self) -> int:
        return len(self._routes)
