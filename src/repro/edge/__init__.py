"""Edge platform services (Sections 2-3).

An *edge service* fronts a type of access network (VPN, enterprise
router, cellular) and is composed of edge instances at sites plus a
centralized edge controller.  Edge instances classify customer packets
onto chains (applying the chain + egress-site labels) and are the only
elements that understand customer addressing; everything downstream
works purely on labels.
"""

from repro.edge.classifier import ClassifierRule, EgressTable, ip_in_prefix
from repro.edge.instance import EdgeInstance
from repro.edge.controller import EdgeController

__all__ = [
    "ClassifierRule",
    "EdgeController",
    "EdgeInstance",
    "EgressTable",
    "ip_in_prefix",
]
