"""Simulated hosts and links.

Messages sent between hosts experience, per directed link:

- *queueing delay* behind earlier messages (FIFO, one transmitter),
- *serialization delay* = size / bandwidth,
- *propagation delay* = the link's configured one-way delay,
- *drops* when the backlog of queued-but-untransmitted bytes exceeds the
  link's buffer.

These are exactly the effects that separate Switchboard's message-bus
topology from full-mesh broadcast in Figure 9: broadcast serializes one
copy per subscriber through the publisher's uplink, so its queueing delay
explodes and buffers overflow, while the proxy topology sends one copy
per *site*.

Fault primitives (used by :mod:`repro.chaos`): links can be failed and
restored, given a loss probability or a propagation-delay degradation
multiplier; hosts can crash and restart; the network can be partitioned
into host groups.  Every message lost to a fault is counted as a *drop*
on its link (with a per-reason counter), so the accounting invariant
``sent == delivered + dropped + in_flight`` keeps holding under any
fault schedule -- that is what lets :mod:`repro.chaos.invariants` check
conservation continuously while faults play.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TYPE_CHECKING

from repro.simnet.events import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry


class NetworkError(Exception):
    """Raised on invalid network construction or use."""


@dataclass(frozen=True)
class LinkSpec:
    """Static parameters of a directed link.

    ``bandwidth_bps`` of ``None`` means infinite (no serialization delay
    and no drops); ``buffer_bytes`` of ``None`` means an unbounded buffer.
    A finite buffer requires a finite bandwidth: with instantaneous
    serialization the transmit queue can never back up, so a buffer
    limit on an infinite-bandwidth link would silently never drop --
    that spec combination is rejected here instead.
    """

    delay_s: float
    bandwidth_bps: float | None = None
    buffer_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise NetworkError(f"negative link delay {self.delay_s}")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise NetworkError(f"non-positive bandwidth {self.bandwidth_bps}")
        if self.buffer_bytes is not None and self.buffer_bytes <= 0:
            raise NetworkError(f"non-positive buffer {self.buffer_bytes}")
        if self.buffer_bytes is not None and self.bandwidth_bps is None:
            raise NetworkError(
                "buffer_bytes requires a finite bandwidth_bps: an "
                "infinite-bandwidth link never queues, so its buffer "
                "limit could never drop anything"
            )


@dataclass
class LinkStats:
    """Counters accumulated by a directed link.

    ``sent`` counts messages accepted onto the link (at send time);
    ``delivered`` counts messages actually handed to the destination
    host, incremented *when the delivery event fires*, so a message
    still crossing the link when the simulator stops is in flight, not
    delivered.  ``sent == delivered + dropped + in_flight`` holds at any
    simulated time.
    """

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    bytes_dropped: int = 0

    @property
    def in_flight(self) -> int:
        """Messages accepted but not yet delivered (queued, serializing,
        or propagating)."""
        return self.sent - self.delivered - self.dropped

    @property
    def bytes_in_flight(self) -> int:
        return self.bytes_sent - self.bytes_delivered - self.bytes_dropped


@dataclass
class _LinkState:
    spec: LinkSpec
    stats: LinkStats = field(default_factory=LinkStats)
    # Time at which the transmitter finishes the last queued message.
    busy_until: float = 0.0
    # Bytes accepted but not yet fully serialized (the queue occupancy).
    queued_bytes: int = 0
    # Cached per-link metric handles (queue-delay histogram, delivered
    # and dropped counters), created lazily on first use so links on an
    # un-instrumented network pay nothing.
    obs: tuple | None = None
    # -- fault state (repro.chaos) ------------------------------------
    up: bool = True
    #: Probability a message on the link is lost (sampled at send time
    #: from the network's fault RNG).
    loss: float = 0.0
    #: Propagation-delay multiplier (>= 1 models degradation).
    delay_multiplier: float = 1.0


class Host:
    """A named endpoint attached to the simulated network.

    A host delivers incoming messages to its registered receive callback.
    The optional ``site`` attribute groups hosts for site-local (zero
    link) communication, mirroring how the paper colocates proxies,
    forwarders, and VNF instances at a cloud site.
    """

    def __init__(self, network: "SimNetwork", name: str, site: str | None = None):
        self.network = network
        self.name = name
        self.site = site
        self._receiver: Callable[[str, Any], None] | None = None
        self.received: list[tuple[float, str, Any]] = []

    def on_receive(self, callback: Callable[[str, Any], None]) -> None:
        """Register ``callback(sender_name, payload)`` for incoming messages."""
        self._receiver = callback

    def send(
        self, dst: str, payload: Any, size_bytes: int = 1000,
        strict: bool = True,
    ) -> bool:
        """Send ``payload`` to host ``dst``.  Returns False if dropped."""
        return self.network.send(self.name, dst, payload, size_bytes,
                                 strict=strict)

    def _deliver(self, sender: str, payload: Any) -> None:
        self.received.append((self.network.sim.now, sender, payload))
        if self._receiver is not None:
            self._receiver(sender, payload)

    def _deliver_from_link(
        self, state: "_LinkState", size_bytes: int, sender: str, payload: Any
    ) -> None:
        """Delivery event for un-instrumented networks: count the
        message against its link *now* (not at send time), then deliver.
        One call frame instead of two keeps the common metrics-off
        configuration at seed-level speed; the instrumented twin is
        :meth:`SimNetwork._complete_delivery`.

        A message still crossing a link when the link fails or the
        destination crashes is accounted as a drop at its (would-be)
        delivery time -- never as a delivery -- so link conservation
        survives mid-flight faults."""
        network = self.network
        if not state.up or self.name in network._crashed:
            network._count_drop(state, size_bytes, sender, self.name,
                                "in_flight")
            return
        stats = state.stats
        stats.delivered += 1
        stats.bytes_delivered += size_bytes
        self.received.append((network.sim.now, sender, payload))
        if self._receiver is not None:
            self._receiver(sender, payload)


class SimNetwork:
    """Hosts connected by directed links with delay, bandwidth, and buffers."""

    #: Link used between two hosts at the same site when no explicit link
    #: exists: a fast local hop rather than a wide-area one.
    LOCAL_LINK = LinkSpec(delay_s=0.0002, bandwidth_bps=10e9)

    def __init__(
        self,
        sim: Simulator | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.sim = sim if sim is not None else Simulator()
        self._hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], _LinkState] = {}
        self.default_link: LinkSpec | None = None
        #: Optional observability sink; ``None`` keeps hot paths free.
        self.metrics = metrics
        # -- fault state (repro.chaos) --------------------------------
        self._crashed: set[str] = set()
        #: host -> partition group id; hosts in different groups cannot
        #: communicate.  ``None`` means no partition is active.
        self._partition: dict[str, int] | None = None
        #: Seeded RNG for loss sampling; set it explicitly (or via the
        #: constructor of the chaos engine) for reproducible runs.
        self._fault_rng: random.Random | None = None
        #: Network-wide drop counts by reason (kept even without a
        #: metrics registry so invariants stay checkable everywhere).
        self.drop_reasons: dict[str, int] = {}

    def _link_obs(self, state: _LinkState, src: str, dst: str) -> tuple:
        """Per-link metric handles, created once per link."""
        if state.obs is None:
            link = f"{src}->{dst}"
            state.obs = (
                self.metrics.histogram("link.queue_delay_s", link=link),
                self.metrics.histogram("link.serialization_s", link=link),
                self.metrics.counter("link.delivered", link=link),
                self.metrics.counter("link.dropped", link=link),
                self.metrics.counter("link.bytes_dropped", link=link),
            )
        return state.obs

    # -- construction -------------------------------------------------

    def add_host(self, name: str, site: str | None = None) -> Host:
        if name in self._hosts:
            raise NetworkError(f"duplicate host {name!r}")
        host = Host(self, name, site)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    @property
    def hosts(self) -> list[Host]:
        return list(self._hosts.values())

    def connect(
        self,
        src: str,
        dst: str,
        spec: LinkSpec,
        bidirectional: bool = True,
    ) -> None:
        """Install a link from ``src`` to ``dst`` (and back, by default)."""
        for name in (src, dst):
            if name not in self._hosts:
                raise NetworkError(f"unknown host {name!r}")
        if src == dst:
            raise NetworkError("cannot connect a host to itself")
        self._links[(src, dst)] = _LinkState(spec=spec)
        if bidirectional:
            self._links[(dst, src)] = _LinkState(spec=spec)

    def link_stats(self, src: str, dst: str) -> LinkStats:
        state = self._links.get((src, dst))
        if state is None:
            raise NetworkError(f"no link {src!r} -> {dst!r}")
        return state.stats

    # -- fault primitives (repro.chaos) --------------------------------

    def set_fault_rng(self, rng: random.Random) -> None:
        """Install the seeded RNG that samples probabilistic loss."""
        self._fault_rng = rng

    def _fault_states(
        self, src: str, dst: str, bidirectional: bool
    ) -> list[_LinkState]:
        """Link states a fault applies to; lazily materializes
        site-local/default links (the same links :meth:`send` would use)
        so faults on them take effect."""
        pairs = [(src, dst)] + ([(dst, src)] if bidirectional else [])
        states = []
        for a, b in pairs:
            if a not in self._hosts or b not in self._hosts:
                raise NetworkError(f"unknown host in link {a!r} -> {b!r}")
            state = self._resolve_link(a, b)
            if state is not None:
                states.append(state)
        if not states:
            raise NetworkError(f"no link {src!r} <-> {dst!r}")
        return states

    def fail_link(self, src: str, dst: str, bidirectional: bool = True) -> None:
        """Take a link down: subsequent sends and in-flight messages on
        it are counted as drops until :meth:`restore_link`."""
        for state in self._fault_states(src, dst, bidirectional):
            state.up = False

    def restore_link(
        self, src: str, dst: str, bidirectional: bool = True
    ) -> None:
        for state in self._fault_states(src, dst, bidirectional):
            state.up = True

    def link_is_up(self, src: str, dst: str) -> bool:
        state = self._links.get((src, dst))
        if state is None:
            raise NetworkError(f"no link {src!r} -> {dst!r}")
        return state.up

    def set_link_loss(
        self, src: str, dst: str, probability: float,
        bidirectional: bool = True,
    ) -> None:
        """Per-message loss probability, sampled from the fault RNG."""
        if not 0.0 <= probability <= 1.0:
            raise NetworkError(f"loss probability out of range: {probability}")
        if probability > 0.0 and self._fault_rng is None:
            self._fault_rng = random.Random(0)
        for state in self._fault_states(src, dst, bidirectional):
            state.loss = probability

    def set_link_degradation(
        self, src: str, dst: str, delay_multiplier: float,
        bidirectional: bool = True,
    ) -> None:
        """Scale a link's propagation delay (1.0 restores nominal)."""
        if delay_multiplier < 0:
            raise NetworkError(
                f"negative delay multiplier {delay_multiplier}"
            )
        for state in self._fault_states(src, dst, bidirectional):
            state.delay_multiplier = delay_multiplier

    def crash_host(self, name: str) -> None:
        """Crash a host: messages to or from it are counted as drops and
        its receive callback never fires, until :meth:`restart_host`."""
        if name not in self._hosts:
            raise NetworkError(f"unknown host {name!r}")
        self._crashed.add(name)

    def restart_host(self, name: str) -> None:
        """Bring a crashed host back (its registered callback resumes;
        host-level state is whatever the owner kept, mirroring a
        stateless process restart)."""
        if name not in self._hosts:
            raise NetworkError(f"unknown host {name!r}")
        self._crashed.discard(name)

    def host_is_up(self, name: str) -> bool:
        if name not in self._hosts:
            raise NetworkError(f"unknown host {name!r}")
        return name not in self._crashed

    def links_of(self, host: str) -> list[tuple[str, str]]:
        """All explicit directed links incident to ``host`` (either
        endpoint), sorted -- the blast radius of crashing it.  Fault
        injectors use this to target a host's connectivity without
        enumerating the topology by hand; links materialized on demand
        from the default spec are not included."""
        if host not in self._hosts:
            raise NetworkError(f"unknown host {host!r}")
        return sorted(
            pair for pair in self._links if host in pair
        )

    def partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Partition the network into host groups: messages between
        hosts in *different* groups are dropped; hosts in no group are
        unrestricted.  Replaces any active partition."""
        mapping: dict[str, int] = {}
        for index, group in enumerate(groups):
            for host in group:
                if host not in self._hosts:
                    raise NetworkError(f"unknown host {host!r} in partition")
                mapping[host] = index
        self._partition = mapping

    def heal_partition(self) -> None:
        self._partition = None

    def _cut_by_partition(self, src: str, dst: str) -> bool:
        if self._partition is None:
            return False
        g1 = self._partition.get(src)
        g2 = self._partition.get(dst)
        return g1 is not None and g2 is not None and g1 != g2

    def _count_drop(
        self, state: _LinkState, size_bytes: int, src: str, dst: str,
        reason: str,
    ) -> None:
        """Account one fault-dropped message on its link (plus the
        per-reason network tally and, when instrumented, a
        ``link.dropped_<reason>`` counter)."""
        stats = state.stats
        stats.dropped += 1
        stats.bytes_dropped += size_bytes
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1
        if self.metrics is not None:
            obs = self._link_obs(state, src, dst)
            obs[3].inc()
            obs[4].inc(size_bytes)
            self.metrics.counter(
                f"link.dropped_{reason}", link=f"{src}->{dst}"
            ).inc()

    # -- transmission --------------------------------------------------

    def _resolve_link(self, src: str, dst: str) -> _LinkState | None:
        state = self._links.get((src, dst))
        if state is not None:
            return state
        src_host, dst_host = self._hosts[src], self._hosts[dst]
        if src_host.site is not None and src_host.site == dst_host.site:
            # Lazily materialize a site-local link so queueing state
            # persists across messages.
            state = _LinkState(spec=self.LOCAL_LINK)
            self._links[(src, dst)] = state
            return state
        if self.default_link is not None:
            state = _LinkState(spec=self.default_link)
            self._links[(src, dst)] = state
            return state
        return None

    def send(
        self, src: str, dst: str, payload: Any, size_bytes: int = 1000,
        strict: bool = True,
    ) -> bool:
        """Send a message; returns False if it was dropped.

        ``strict=False`` turns a send to an *unknown* destination host
        into an accounted drop instead of a :class:`NetworkError` -- the
        bus uses this so a fault scenario that crashes or removes a
        proxy degrades into drop counters rather than an exception from
        deep inside the event loop.  Sends from an unknown *source* are
        always errors (the caller itself is misconfigured)."""
        if src not in self._hosts:
            raise NetworkError(f"unknown host {src!r}")
        dst_host = self._hosts.get(dst)
        if dst_host is None:
            if strict:
                raise NetworkError(f"unknown host {dst!r}")
            # No link exists to account the drop against; tally it
            # network-wide under the same reason a crashed host uses.
            self.drop_reasons["dst_down"] = (
                self.drop_reasons.get("dst_down", 0) + 1
            )
            if self.metrics is not None:
                self.metrics.counter(
                    "link.dropped_dst_down", link=f"{src}->{dst}"
                ).inc()
            return False
        if size_bytes <= 0:
            raise NetworkError(f"non-positive message size {size_bytes}")
        state = self._resolve_link(src, dst)
        if state is None:
            raise NetworkError(f"no link {src!r} -> {dst!r} and no default link")

        spec, stats = state.spec, state.stats
        stats.sent += 1
        stats.bytes_sent += size_bytes

        # Fault checks, in blast-radius order: a crashed endpoint kills
        # every link of the host, a down link only itself.  Each drop is
        # accounted on this link so conservation holds.
        if src in self._crashed:
            self._count_drop(state, size_bytes, src, dst, "src_down")
            return False
        if dst in self._crashed:
            self._count_drop(state, size_bytes, src, dst, "dst_down")
            return False
        if not state.up:
            self._count_drop(state, size_bytes, src, dst, "link_down")
            return False
        if self._cut_by_partition(src, dst):
            self._count_drop(state, size_bytes, src, dst, "partition")
            return False
        if state.loss > 0.0 and self._fault_rng is not None and (
            self._fault_rng.random() < state.loss
        ):
            self._count_drop(state, size_bytes, src, dst, "loss")
            return False

        now = self.sim.now
        delay = spec.delay_s * state.delay_multiplier
        if spec.bandwidth_bps is None:
            # Infinite bandwidth: no queueing, no serialization, and (by
            # LinkSpec validation) no buffer to overflow.
            if self.metrics is None:
                self.sim.schedule(
                    delay,
                    dst_host._deliver_from_link, state, size_bytes, src,
                    payload,
                )
            else:
                self.sim.schedule(
                    delay,
                    self._complete_delivery, state, src, dst_host, payload,
                    size_bytes,
                )
                q_hist, s_hist, *_ = self._link_obs(state, src, dst)
                q_hist.observe(0.0)
                s_hist.observe(0.0)
            return True

        if (
            spec.buffer_bytes is not None
            and state.queued_bytes + size_bytes > spec.buffer_bytes
        ):
            stats.dropped += 1
            stats.bytes_dropped += size_bytes
            if self.metrics is not None:
                obs = self._link_obs(state, src, dst)
                obs[3].inc()
                obs[4].inc(size_bytes)
            return False

        serialization = size_bytes * 8 / spec.bandwidth_bps
        start = max(now, state.busy_until)
        done = start + serialization
        state.busy_until = done
        state.queued_bytes += size_bytes
        self.sim.schedule_at(done, self._drain, state, size_bytes)
        if self.metrics is None:
            self.sim.schedule_at(
                done + delay,
                dst_host._deliver_from_link, state, size_bytes, src, payload,
            )
        else:
            self.sim.schedule_at(
                done + delay,
                self._complete_delivery, state, src, dst_host, payload,
                size_bytes,
            )
            q_hist, s_hist, *_ = self._link_obs(state, src, dst)
            q_hist.observe(start - now)
            s_hist.observe(serialization)
        return True

    def _drain(self, state: _LinkState, size_bytes: int) -> None:
        state.queued_bytes -= size_bytes

    def _complete_delivery(
        self,
        state: _LinkState,
        src: str,
        dst_host: Host,
        payload: Any,
        size_bytes: int,
    ) -> None:
        """Delivery event: count the message delivered *now*, then hand
        it to the destination host.  Counting here (rather than at send
        time) keeps ``LinkStats.delivered`` honest when the simulator
        stops with messages still in flight.  A message whose link went
        down or whose destination crashed while it was crossing becomes
        a drop instead."""
        if not state.up or dst_host.name in self._crashed:
            self._count_drop(state, size_bytes, src, dst_host.name,
                             "in_flight")
            return
        stats = state.stats
        stats.delivered += 1
        stats.bytes_delivered += size_bytes
        if self.metrics is not None:
            self._link_obs(state, src, dst_host.name)[2].inc()
        dst_host._deliver(src, payload)

    def run(self, until: float | None = None) -> None:
        """Convenience passthrough to the underlying simulator."""
        self.sim.run(until=until)
