"""Generator-based processes for the discrete-event simulator.

Callback-style event code (as in :mod:`repro.controller.protocol`) gets
hard to read past a few steps.  A :class:`Process` lets sequential
simulated behaviour be written as a generator that yields what it waits
for::

    def worker(proc):
        yield 1.5                      # sleep 1.5 simulated seconds
        msg = yield proc.receive()     # wait for a message
        yield 0.1
        other.send(msg)

    Process(sim, worker)

Yield values:

- a ``float``/``int`` -- sleep that many seconds;
- a :class:`Mailbox` wait token (from :meth:`Process.receive`) -- block
  until another process calls :meth:`Process.deliver`; the ``yield``
  expression evaluates to the delivered payload.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator

from repro.simnet.events import Simulator


class ProcessError(Exception):
    """Raised on invalid process operations."""


class _ReceiveToken:
    """Sentinel yielded to wait for a message."""

    __slots__ = ()


_RECEIVE = _ReceiveToken()


class Process:
    """A coroutine-style simulated process."""

    def __init__(
        self,
        sim: Simulator,
        body: Callable[["Process"], Generator],
        name: str = "process",
    ):
        self.sim = sim
        self.name = name
        self.finished = False
        self.result: Any = None
        self._mailbox: deque[Any] = deque()
        self._waiting_for_message = False
        self._generator = body(self)
        sim.schedule(0.0, self._step, None)

    # -- API used inside the body -----------------------------------------

    def receive(self) -> _ReceiveToken:
        """Yield this to block until a message is delivered."""
        return _RECEIVE

    # -- API used by other processes -----------------------------------------

    def deliver(self, payload: Any) -> None:
        """Send a message to this process (wakes it if it is waiting)."""
        if self.finished:
            raise ProcessError(f"process {self.name!r} already finished")
        self._mailbox.append(payload)
        if self._waiting_for_message:
            self._waiting_for_message = False
            self.sim.schedule(0.0, self._step, self._mailbox.popleft())

    # -- engine -------------------------------------------------------------------

    def _step(self, send_value: Any) -> None:
        if self.finished:
            return
        try:
            yielded = self._generator.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            return
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                self._crash(ProcessError(f"negative sleep {yielded}"))
                return
            self.sim.schedule(float(yielded), self._step, None)
        elif isinstance(yielded, _ReceiveToken):
            if self._mailbox:
                self.sim.schedule(0.0, self._step, self._mailbox.popleft())
            else:
                self._waiting_for_message = True
        else:
            self._crash(
                ProcessError(
                    f"process {self.name!r} yielded {yielded!r}; expected a "
                    "delay or receive()"
                )
            )

    def _crash(self, error: ProcessError) -> None:
        self.finished = True
        self._generator.close()
        raise error
