"""Discrete-event simulation substrate.

The control-plane experiments (message bus, chain installation, edge-site
addition) and the data-plane end-to-end experiments run on this simulator
instead of a physical testbed.  It provides:

- :class:`~repro.simnet.events.Simulator` -- an event loop with a
  simulated clock and cancellable timers.
- :class:`~repro.simnet.network.SimNetwork` -- hosts connected by
  directed links with propagation delay, finite bandwidth, and finite
  FIFO buffers (so overload produces queueing and drops, which the
  Figure 9 broadcast comparison depends on).
"""

from repro.simnet.events import EventHandle, Simulator
from repro.simnet.process import Process
from repro.simnet.network import Host, LinkSpec, LinkStats, SimNetwork

__all__ = [
    "EventHandle",
    "Host",
    "LinkSpec",
    "Process",
    "LinkStats",
    "SimNetwork",
    "Simulator",
]
