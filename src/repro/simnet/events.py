"""Event loop with a simulated clock.

The simulator is deterministic: events scheduled for the same time fire in
the order they were scheduled (FIFO tie-break via a monotonically
increasing sequence number), which keeps every experiment reproducible.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(Exception):
    """Raised on invalid use of the simulator (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle to a scheduled event; supports cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator | None" = None):
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._event.cancelled:
            return
        self._event.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()


class Simulator:
    """A discrete-event simulator.

    Example::

        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "hello")
        sim.run()
        assert sim.now == 1.5 and fired == ["hello"]
    """

    # Below this many queued events compaction is not worth the rebuild.
    _COMPACT_MIN_PENDING = 64

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._cancelled_pending = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if not math.isfinite(delay):
            raise SimulationError(f"non-finite delay: {delay}")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute simulated ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time: {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = _Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event, self)

    def _note_cancelled(self) -> None:
        """Called by :class:`EventHandle` when a queued event is cancelled."""
        self._cancelled_pending += 1
        if (
            len(self._heap) >= self._COMPACT_MIN_PENDING
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify, bounding queue memory."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0

    def _discard_cancelled(self, event: _Event) -> None:
        if self._cancelled_pending > 0:
            self._cancelled_pending -= 1

    def step(self) -> bool:
        """Fire the next pending event.  Returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._discard_cancelled(event)
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so periodic measurements can rely
        on the final timestamp.  If ``max_events`` exhausts the budget while
        events are still pending, the clock advances as far toward ``until``
        as possible without passing the next unfired event.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            next_event = self._heap[0]
            if next_event.cancelled:
                heapq.heappop(self._heap)
                self._discard_cancelled(next_event)
                continue
            if until is not None and next_event.time > until:
                break
            self.step()
            fired += 1
        if until is not None and until > self._now:
            target = until
            next_time = self._next_pending_time()
            if next_time is not None:
                target = min(target, next_time)
            if target > self._now:
                self._now = target

    def _next_pending_time(self) -> float | None:
        """Time of the earliest non-cancelled queued event, if any."""
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                self._discard_cancelled(event)
                continue
            return event.time
        return None
