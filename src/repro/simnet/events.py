"""Event loop with a simulated clock.

The simulator is deterministic: events scheduled for the same time fire in
the order they were scheduled (FIFO tie-break via a monotonically
increasing sequence number), which keeps every experiment reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(Exception):
    """Raised on invalid use of the simulator (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle to a scheduled event; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


class Simulator:
    """A discrete-event simulator.

    Example::

        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "hello")
        sim.run()
        assert sim.now == 1.5 and fired == ["hello"]
    """

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = _Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Fire the next pending event.  Returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so periodic measurements can rely
        on the final timestamp.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return
            next_event = self._heap[0]
            if next_event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and next_event.time > until:
                break
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self._now = until
