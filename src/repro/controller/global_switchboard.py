"""Global Switchboard: the centralized SDN controller (Sections 3-4).

``create_chain`` reproduces the Figure 4 message flow synchronously:

1. resolve ingress/egress sites with the edge controller;
2. compute the wide-area route (SB-DP against the residual state of the
   already-installed chains) and allocate the chain label;
3. two-phase commit the route's capacity with every VNF controller on
   it -- a rejection rolls the route back, reconciles the rejecting
   VNF's capacity, and recomputes;
4. have edge and VNF controllers allocate their instances on the route;
5. have the Local Switchboards compile and install the hierarchical
   load-balancing rules at their forwarders.

``extend_chain`` re-routes any unrouted remainder (the Figure 10
dynamic route addition) and ``add_edge_site`` grafts a new ingress edge
site onto the nearest existing route (the Section 6 mobility case,
Table 2).
"""

from __future__ import annotations

import contextlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

from repro.core.dp import DpConfig, IncrementalDpRouter
from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.core.model import Chain, NetworkModel
from repro.dataplane.forwarder import DataPlane
from repro.dataplane.labels import LabelAllocator, Labels
from repro.dataplane.rules import LoadBalancingRule, WeightedChoice
from repro.edge.classifier import ClassifierRule
from repro.edge.controller import EdgeController
from repro.controller.chainspec import ChainSpecification
from repro.controller.local_switchboard import LocalSwitchboard
from repro.vnf.service import VnfService

_EPS = 1e-9


class InstallationError(Exception):
    """Raised when a chain cannot be installed."""


@dataclass
class ChainInstallation:
    """Everything Global Switchboard installed for one chain."""

    spec: ChainSpecification
    label: int
    ingress_site: str
    egress_site: str
    routed_fraction: float
    #: (vnf service, site) -> committed load.
    committed_load: dict[tuple[str, str], float] = field(default_factory=dict)
    #: additional ingress edge sites grafted on later (Section 6).
    extra_edge_sites: list[str] = field(default_factory=list)

    @property
    def labels(self) -> Labels:
        return Labels(self.label, self.egress_site)


class GlobalSwitchboard:
    """The centralized controller over one administrative deployment."""

    MAX_COMMIT_ATTEMPTS = 4

    def __init__(
        self,
        model: NetworkModel,
        dataplane: DataPlane,
        dp_config: DpConfig | None = None,
        metrics: "MetricsRegistry | None" = None,
        solver=None,
    ):
        self.model = model
        self.dataplane = dataplane
        self.metrics = metrics
        #: Optional TE-solve strategy (``repro.scale.SolverFarm`` or
        #: ``repro.scale.MonolithicSolver``).  ``None`` keeps the
        #: original direct-LP behaviour of :meth:`plan_routes`.
        self.solver = solver
        #: Optional federated control plane (``attach_federation``):
        #: installs/removals are mirrored into it so cross-shard chains
        #: are split, 2PC-installed, and planned regionally.
        self.federation = None
        self.router = IncrementalDpRouter(model, dp_config)
        self.labels = LabelAllocator()
        self.locals: dict[str, LocalSwitchboard] = {}
        self.edge_controllers: dict[str, EdgeController] = {}
        self.vnf_services: dict[str, VnfService] = {}
        self.installations: dict[str, ChainInstallation] = {}

    def attach_federation(self, coordinator) -> None:
        """Plan through a :class:`repro.federation.GlobalCoordinator`.

        The coordinator becomes the TE solver strategy (so
        :meth:`plan_routes` federates: per-region farms plus border
        stitching), and every install/removal is mirrored into it --
        intra-shard chains delegate to their regional switchboard,
        cross-shard chains go through the split + 2PC install."""
        self.solver = coordinator
        self.federation = coordinator

    def _notify_federation_installed(self, chain_name: str) -> None:
        if self.federation is None:
            return
        chain = self.model.chains.get(chain_name)
        if chain is not None and chain_name not in self.federation.installed():
            self.federation.submit(chain)

    def _notify_federation_removed(self, chain_name: str) -> None:
        if self.federation is None:
            return
        if chain_name in self.federation.installed():
            self.federation.remove(chain_name)

    # -- service registration (Section 3, "prior to chain specification") --

    def register_local_switchboard(self, local: LocalSwitchboard) -> None:
        if local.site not in self.model.sites:
            raise InstallationError(f"unknown site {local.site!r}")
        self.locals[local.site] = local

    def local_switchboard(self, site: str) -> LocalSwitchboard:
        local = self.locals.get(site)
        if local is None:
            raise InstallationError(f"no Local Switchboard at {site!r}")
        return local

    def register_edge_service(self, controller: EdgeController) -> None:
        self.edge_controllers[controller.service_name] = controller

    def register_vnf_service(self, service: VnfService) -> None:
        if service.name not in self.model.vnfs:
            raise InstallationError(
                f"VNF service {service.name!r} not in the network model"
            )
        self.vnf_services[service.name] = service

    # -- chain lifecycle ----------------------------------------------------

    def _span(self, name: str, **labels):
        """A tracing span when a registry is attached, else a no-op."""
        if self.metrics is None:
            return contextlib.nullcontext()
        return self.metrics.span(name, **labels)

    def plan_routes(
        self, objective: LpObjective = LpObjective.MAX_THROUGHPUT
    ):
        """Whole-network TE plan (SB-LP) for the current model.

        Dispatches to the configured ``solver=`` strategy when one was
        attached -- a :class:`repro.scale.SolverFarm` partitions, caches
        and parallelizes the solve -- and otherwise calls
        :func:`repro.core.lp.solve_chain_routing_lp` directly, which is
        bit-for-bit the pre-farm behaviour.  Returns an
        ``LpResult``-shaped object either way (``status`` /
        ``objective`` / ``solution`` / ``ok``).
        """
        with self._span("controller.plan_routes"):
            if self.solver is not None:
                return self.solver.solve(self.model, objective)
            return solve_chain_routing_lp(
                self.model, objective, metrics=self.metrics
            )

    def create_chain(self, spec: ChainSpecification) -> ChainInstallation:
        """Install a chain end to end (the Figure 4 flow)."""
        with self._span("install.create_chain", chain=spec.name):
            return self._create_chain(spec)

    def _create_chain(self, spec: ChainSpecification) -> ChainInstallation:
        edge = self.edge_controllers.get(spec.edge_service)
        if edge is None:
            raise InstallationError(f"unknown edge service {spec.edge_service!r}")
        for vnf_name in spec.vnf_services:
            if vnf_name not in self.vnf_services:
                raise InstallationError(f"unknown VNF service {vnf_name!r}")
        if len(set(spec.vnf_services)) != len(spec.vnf_services):
            # Rules are keyed by (chain label, egress site); a VNF that
            # appears twice would need per-position keys.
            raise InstallationError(
                f"chain {spec.name!r} repeats a VNF service; deploy a "
                "second instance of the service under a distinct name"
            )

        # (1) Resolve chain endpoints to sites.
        ingress_site = edge.resolve_site(spec.ingress_attachment)
        egress_site = edge.resolve_site(spec.egress_attachment)

        chain = Chain(
            spec.name,
            self.model.endpoint_node(ingress_site),
            self.model.endpoint_node(egress_site),
            spec.vnf_services,
            spec.forward_demand,
            spec.reverse_demand,
        )
        self.model.add_chain(chain)

        # (2)+(3) Route computation and two-phase commit, with
        # recompute-on-reject.
        try:
            routed, committed = self._route_and_commit(spec.name)
        except InstallationError:
            self.model.remove_chain(spec.name)
            raise

        label = self.labels.allocate(spec.name)
        installation = ChainInstallation(
            spec, label, ingress_site, egress_site, routed, committed
        )
        self.installations[spec.name] = installation

        # (4) Edge configuration + VNF instance assignment.
        self._configure_edges(installation, edge)
        self._assign_instances(installation)
        # (5) Local Switchboards compile and install rules.
        self._install_rules(installation)
        self._notify_federation_installed(spec.name)
        return installation

    def extend_chain(self, chain_name: str) -> float:
        """Try to route any unrouted remainder of a chain over whatever
        capacity exists now (the Figure 10 'new chain route').

        Returns the newly routed fraction and refreshes the data-plane
        rules; existing connections keep their old routes (Section 5.3).
        """
        installation = self._installation(chain_name)
        before = self.router.solution.routed_fraction(chain_name)
        if before >= 1.0 - _EPS:
            return 0.0
        self.router.route(chain_name)
        after = self.router.solution.routed_fraction(chain_name)
        gained = after - before
        if gained > _EPS:
            delta = self._chain_loads(chain_name)
            self._commit_delta(chain_name, delta, installation)
            self._assign_instances(installation)
            self._install_rules(installation)
            installation.routed_fraction = after
        return gained

    def remove_chain(self, chain_name: str) -> None:
        """Tear a chain down: release capacity, labels, rules, and flows."""
        installation = self._installation(chain_name)
        for (vnf_name, site), load in installation.committed_load.items():
            self.vnf_services[vnf_name].release(chain_name, site, load)
        for local in self.locals.values():
            local.remove_chain_rules(installation.label, installation.egress_site)
        edge = self.edge_controllers.get(installation.spec.edge_service)
        if edge is not None:
            edge.remove_chain(installation.labels)
        self.router.rollback(chain_name)
        self.labels.release(chain_name)
        self._notify_federation_removed(chain_name)
        if chain_name in self.model.chains:
            self.model.remove_chain(chain_name)
        del self.installations[chain_name]

    def add_edge_site(self, chain_name: str, edge_site: str) -> str:
        """Graft a new ingress edge site onto an existing chain via the
        nearest wide-area route (Section 6).  Returns the chosen
        first-VNF site."""
        installation = self._installation(chain_name)
        chain = self.model.chains[chain_name]
        stage1 = self.router.solution.stage_flows(chain_name, 1)
        if not stage1:
            raise InstallationError(f"chain {chain_name!r} carries no traffic")
        entry_sites = {dst for (_src, dst), frac in stage1.items() if frac > _EPS}
        edge_node = self.model.endpoint_node(edge_site)
        best = min(
            entry_sites,
            key=lambda s: (
                self.model.latency(edge_node, self.model.endpoint_node(s)),
                s,
            ),
        )

        # The new edge site's *edge forwarder* gets an ingress-style rule
        # toward the first VNF's forwarders on the chosen route; the
        # site's VNF-fronting forwarders (if the site is on the route)
        # keep their existing rules untouched.
        local = self.local_switchboard(edge_site)
        if chain.vnfs:
            first_vnf = chain.vnfs[0]
            service = self.vnf_services[first_vnf]
            target_local = self.local_switchboard(best)
            next_hops = target_local.forwarders_for_instances(
                service.instances_at(best)
            )
        else:
            edge_ctrl = self.edge_controllers[installation.spec.edge_service]
            next_hops = {
                inst.name: 1.0
                for inst in edge_ctrl.instances_at(installation.egress_site)
            }
        local.install_edge_rule(
            installation.label, installation.egress_site, next_hops
        )
        # Configure edge instances at the new site.
        edge = self.edge_controllers[installation.spec.edge_service]
        classifier = self._classifier_for(installation)
        routes = [
            (prefix, installation.egress_site)
            for prefix in installation.spec.dst_prefixes
        ]
        instances = edge.install_chain(
            edge_site, installation.labels, classifier, routes
        )
        for instance in instances:
            if instance.forwarder is None:
                instance.attach_forwarder(local.edge_forwarder().name)
        installation.extra_edge_sites.append(edge_site)
        return best

    # -- internals -----------------------------------------------------------

    def _installation(self, chain_name: str) -> ChainInstallation:
        installation = self.installations.get(chain_name)
        if installation is None:
            raise InstallationError(f"chain {chain_name!r} is not installed")
        return installation

    def _route_and_commit(
        self, chain_name: str
    ) -> tuple[float, dict[tuple[str, str], float]]:
        """Route the chain and 2PC its capacity; recompute on rejection."""
        for _attempt in range(self.MAX_COMMIT_ATTEMPTS):
            with self._span("install.route_compute", chain=chain_name):
                routed = self.router.route(chain_name)
            if routed <= _EPS:
                self.router.rollback(chain_name)
                raise InstallationError(
                    f"no feasible route for chain {chain_name!r}"
                )
            loads = self._chain_loads(chain_name)
            rejection = self._two_phase_commit(chain_name, loads)
            if rejection is None:
                return routed, loads
            # A VNF controller rejected: reconcile its reported capacity,
            # roll the route back, and recompute (Section 3 step 2).
            vnf_name, site = rejection
            service = self.vnf_services[vnf_name]
            if self.metrics is not None:
                self.metrics.counter("2pc.rejections", chain=chain_name).inc()
            self.router.rollback(chain_name)
            self.router.sync_vnf_capacity(vnf_name, site, service.available(site))
        raise InstallationError(
            f"chain {chain_name!r}: two-phase commit failed after "
            f"{self.MAX_COMMIT_ATTEMPTS} attempts"
        )

    def _chain_loads(self, chain_name: str) -> dict[tuple[str, str], float]:
        """Per-(VNF service, site) load of the chain's current flows."""
        chain = self.model.chains[chain_name]
        loads: dict[tuple[str, str], float] = defaultdict(float)
        for z in range(1, chain.num_stages + 1):
            for (src, dst), frac in self.router.solution.stage_flows(
                chain_name, z
            ).items():
                traffic = chain.stage_traffic(z) * frac
                if z < chain.num_stages:
                    vnf = chain.vnf_at(z)
                    loads[(vnf, dst)] += (
                        self.model.vnfs[vnf].load_per_unit * traffic
                    )
                if z > 1:
                    vnf = chain.vnf_at(z - 1)
                    loads[(vnf, src)] += (
                        self.model.vnfs[vnf].load_per_unit * traffic
                    )
        return dict(loads)

    def _two_phase_commit(
        self, chain_name: str, loads: dict[tuple[str, str], float]
    ) -> tuple[str, str] | None:
        """Phase 1 everywhere, then phase 2.  Returns the rejecting
        (vnf, site) or None on success."""
        prepared: list[tuple[str, str]] = []
        with self._span("2pc.prepare", chain=chain_name):
            for (vnf_name, site), load in sorted(loads.items()):
                service = self.vnf_services[vnf_name]
                if not service.prepare(chain_name, site, load):
                    for p_vnf, p_site in prepared:
                        self.vnf_services[p_vnf].abort(chain_name, p_site)
                    return (vnf_name, site)
                prepared.append((vnf_name, site))
        with self._span("2pc.commit", chain=chain_name):
            for vnf_name, site in prepared:
                self.vnf_services[vnf_name].commit(chain_name, site)
        return None

    def _commit_delta(
        self,
        chain_name: str,
        new_total: dict[tuple[str, str], float],
        installation: ChainInstallation,
    ) -> None:
        """Commit only the *additional* load of an extended route."""
        for key, load in new_total.items():
            extra = load - installation.committed_load.get(key, 0.0)
            if extra <= _EPS:
                continue
            vnf_name, site = key
            service = self.vnf_services[vnf_name]
            if service.prepare(chain_name, site, extra):
                service.commit(chain_name, site)
                installation.committed_load[key] = load

    def _classifier_for(self, installation: ChainInstallation) -> ClassifierRule:
        spec = installation.spec
        return ClassifierRule(
            chain_label=installation.label,
            src_prefix=spec.src_prefix,
            protocol=spec.protocol,
            dst_port_range=spec.dst_port_range,
        )

    def _configure_edges(
        self, installation: ChainInstallation, edge: EdgeController
    ) -> None:
        spec = installation.spec
        classifier = self._classifier_for(installation)
        routes = [(p, installation.egress_site) for p in spec.dst_prefixes]
        ingress_instances = edge.install_chain(
            installation.ingress_site, installation.labels, classifier, routes
        )
        local = self.local_switchboard(installation.ingress_site)
        for instance in ingress_instances:
            if instance.forwarder is None:
                instance.attach_forwarder(local.edge_forwarder().name)
        # The egress side needs no classifier (it strips labels), but its
        # instances must exist and be known to the data plane.
        if installation.egress_site != installation.ingress_site:
            egress_instances = edge.instances_at(installation.egress_site)
            if not egress_instances:
                raise InstallationError(
                    f"no edge instances at egress site "
                    f"{installation.egress_site!r}"
                )

    def _assign_instances(self, installation: ChainInstallation) -> None:
        """Attach every VNF instance on the route to a forwarder."""
        chain = self.model.chains[installation.spec.name]
        for z in range(1, chain.num_stages):
            vnf_name = chain.vnf_at(z)
            service = self.vnf_services[vnf_name]
            for (_src, dst), frac in self.router.solution.stage_flows(
                installation.spec.name, z
            ).items():
                if frac <= _EPS:
                    continue
                local = self.local_switchboard(dst)
                instances = service.instances_at(dst)
                if not instances:
                    instances = [service.scale_out(dst)]
                for instance in instances:
                    local.assign_instance(instance)

    def _next_hop_weights(
        self,
        installation: ChainInstallation,
        position: int,
        site: str | None,
    ) -> dict[str, float]:
        """Hierarchical next-hop weights leaving chain node ``position``.

        For an intermediate stage the targets are the forwarders fronting
        the next VNF's instances at each destination site, weighted by
        the TE fraction times the forwarder's published weight; for the
        last stage the targets are the egress edge instances.
        ``site=None`` means the ingress position (whose stage-1 sources
        are the raw ingress node, so no source filtering applies).
        """
        chain_name = installation.spec.name
        chain = self.model.chains[chain_name]
        stage_out = position + 1
        out_flows = self.router.solution.stage_flows(chain_name, stage_out)
        edge = self.edge_controllers[installation.spec.edge_service]
        egress_targets = {
            inst.name: 1.0
            for inst in edge.instances_at(installation.egress_site)
        }
        next_hops: dict[str, float] = {}
        for (src, dst), frac in out_flows.items():
            if site is not None and src != site:
                continue
            if stage_out == chain.num_stages:
                for target, weight in egress_targets.items():
                    next_hops[target] = (
                        next_hops.get(target, 0.0) + frac * weight
                    )
                continue
            next_vnf = chain.vnf_at(stage_out)
            next_service = self.vnf_services[next_vnf]
            target_local = self.local_switchboard(dst)
            fwd_weights = target_local.forwarders_for_instances(
                next_service.instances_at(dst)
            )
            for fwd_name, weight in fwd_weights.items():
                next_hops[fwd_name] = (
                    next_hops.get(fwd_name, 0.0) + frac * weight
                )
        return next_hops

    def _prev_hop_weights(
        self,
        installation: ChainInstallation,
        position: int,
        site: str,
    ) -> dict[str, float]:
        """Hierarchical previous-hop weights entering chain node
        ``position`` at ``site`` (informational; the reverse data path
        follows flow-table state)."""
        chain_name = installation.spec.name
        chain = self.model.chains[chain_name]
        in_flows = self.router.solution.stage_flows(chain_name, position)
        prev_hops: dict[str, float] = {}
        for (src, dst), frac in in_flows.items():
            if dst != site:
                continue
            if position == 1:
                ingress_local = self.local_switchboard(
                    installation.ingress_site
                )
                fwd = ingress_local.edge_forwarder()
                prev_hops[fwd.name] = prev_hops.get(fwd.name, 0.0) + frac
            else:
                prev_vnf = chain.vnf_at(position - 1)
                prev_service = self.vnf_services[prev_vnf]
                src_local = self.local_switchboard(src)
                fwd_weights = src_local.forwarders_for_instances(
                    prev_service.instances_at(src)
                )
                for fwd_name, weight in fwd_weights.items():
                    prev_hops[fwd_name] = (
                        prev_hops.get(fwd_name, 0.0) + frac * weight
                    )
        return prev_hops

    def _install_rules(
        self, installation: ChainInstallation, only_site: str | None = None
    ) -> None:
        """Compile the route's stage flows into per-forwarder rules.

        Rules are per *forwarder*, not per site: a forwarder fronting
        instances of the chain's VNF at position ``p`` gets a rule that
        load-balances into its own instances and on toward position
        ``p + 1``; the ingress site's dedicated edge forwarder gets the
        position-0 rule.  This is what keeps a site that is both the
        ingress and a VNF host (or that hosts two of the chain's VNFs)
        unambiguous.

        ``only_site`` restricts installation to one site -- the
        bus-driven protocol uses this, since each Local Switchboard
        installs its own site's rules when its subscriptions fire.
        """
        chain_name = installation.spec.name
        chain = self.model.chains[chain_name]
        label = installation.label
        egress_site = installation.egress_site
        solution = self.router.solution
        rule_installs = self.metrics.counter("rules.installed") if (
            self.metrics is not None
        ) else None

        # Position-0 rule on the ingress site's edge forwarder.
        if only_site is None or only_site == installation.ingress_site:
            ingress_local = self.local_switchboard(installation.ingress_site)
            ingress_local.install_edge_rule(
                label,
                egress_site,
                self._next_hop_weights(installation, 0, site=None),
            )
            if rule_installs is not None:
                rule_installs.inc()

        # VNF rules: for every (position, site) carrying traffic, every
        # forwarder fronting that VNF's instances at the site.
        for position in range(1, chain.num_stages):
            vnf_name = chain.vnf_at(position)
            arriving: dict[str, float] = defaultdict(float)
            for (_src, dst), frac in solution.stage_flows(
                chain_name, position
            ).items():
                arriving[dst] += frac
            for site, frac in arriving.items():
                if frac <= _EPS:
                    continue
                if only_site is not None and site != only_site:
                    continue
                local = self.local_switchboard(site)
                next_hops = self._next_hop_weights(
                    installation, position, site
                )
                prev_hops = self._prev_hop_weights(
                    installation, position, site
                )
                for fwd in local.forwarders_for_service(vnf_name):
                    local_instances = {
                        inst.name: inst.weight
                        for inst in fwd.attached.values()
                        if inst.service == vnf_name
                    }
                    fwd.install_rule(
                        label,
                        egress_site,
                        LoadBalancingRule(
                            local_instances=WeightedChoice(local_instances),
                            next_forwarders=WeightedChoice(next_hops),
                            prev_forwarders=WeightedChoice(prev_hops),
                        ),
                    )
                    if rule_installs is not None:
                        rule_installs.inc()
