"""Controller fault tolerance: a MUSIC-style replicated key-value store.

Section 4.5: "We plan to support fault-tolerance of controllers using a
replication recipe based on MUSIC, a resilient key-value store optimized
for wide-area deployments."  This module implements that recipe's core:

- a set of replicas (one per controller site) holding versioned entries;
- **majority-quorum** writes and reads -- a write succeeds only if a
  quorum of replicas accepted it, a read consults a quorum and returns
  the highest version it sees (so any successful read observes any
  successful write: the two quorums intersect);
- read-repair: stale replicas touched by a read are brought up to date;
- an **ownership lease** recipe (MUSIC's locking API) so exactly one
  Global Switchboard instance acts as leader at a time, with takeover
  after lease expiry;
- checkpoint/restore helpers that persist Global Switchboard's chain
  installations so a standby controller can rebuild its control state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.controller.chainspec import ChainSpecification
from repro.controller.global_switchboard import ChainInstallation


class ReplicationError(Exception):
    """Raised on quorum loss or invalid store operations."""


@dataclass
class _Versioned:
    version: int
    value: Any


@dataclass
class Replica:
    """One store replica (a controller site)."""

    name: str
    alive: bool = True
    data: dict[str, _Versioned] = field(default_factory=dict)


@dataclass
class _Lease:
    owner: str
    expires_at: float


class ReplicatedStore:
    """Quorum-replicated, versioned key-value store."""

    def __init__(self, replica_names: list[str], quorum: int | None = None):
        if not replica_names:
            raise ReplicationError("need at least one replica")
        if len(set(replica_names)) != len(replica_names):
            raise ReplicationError("duplicate replica names")
        self.replicas = {name: Replica(name) for name in replica_names}
        self.quorum = (
            quorum if quorum is not None else len(replica_names) // 2 + 1
        )
        if not 1 <= self.quorum <= len(replica_names):
            raise ReplicationError(f"invalid quorum {self.quorum}")
        self._next_version = 1
        self.writes = 0
        self.reads = 0
        self.read_repairs = 0

    # -- membership -----------------------------------------------------

    def fail(self, name: str) -> None:
        self._replica(name).alive = False

    def recover(self, name: str) -> None:
        """Bring a replica back (possibly with stale data: read-repair
        heals it lazily)."""
        self._replica(name).alive = True

    def alive_count(self) -> int:
        return sum(1 for r in self.replicas.values() if r.alive)

    def _replica(self, name: str) -> Replica:
        try:
            return self.replicas[name]
        except KeyError:
            raise ReplicationError(f"unknown replica {name!r}") from None

    # -- quorum operations ------------------------------------------------

    def put(self, key: str, value: Any) -> int:
        """Write a value; returns the committed version.

        Raises :class:`ReplicationError` if fewer than a quorum of
        replicas are alive (the write must not appear successful).
        """
        alive = [r for r in self.replicas.values() if r.alive]
        if len(alive) < self.quorum:
            raise ReplicationError(
                f"write quorum lost: {len(alive)} alive < {self.quorum}"
            )
        version = self._next_version
        self._next_version += 1
        for replica in alive:
            replica.data[key] = _Versioned(version, value)
        self.writes += 1
        return version

    def get(self, key: str) -> Any:
        """Quorum read: the highest-versioned value a quorum has seen."""
        alive = [r for r in self.replicas.values() if r.alive]
        if len(alive) < self.quorum:
            raise ReplicationError(
                f"read quorum lost: {len(alive)} alive < {self.quorum}"
            )
        self.reads += 1
        best: _Versioned | None = None
        for replica in alive[: max(self.quorum, len(alive))]:
            entry = replica.data.get(key)
            if entry is not None and (best is None or entry.version > best.version):
                best = entry
        if best is None:
            return None
        # Read-repair any alive replica that is stale.
        for replica in alive:
            entry = replica.data.get(key)
            if entry is None or entry.version < best.version:
                replica.data[key] = best
                self.read_repairs += 1
        return best.value

    def delete(self, key: str) -> None:
        """Delete by writing a tombstone (None)."""
        self.put(key, None)

    def keys(self, prefix: str = "") -> list[str]:
        """Keys with live (non-tombstone) values under a prefix."""
        alive = [r for r in self.replicas.values() if r.alive]
        if len(alive) < self.quorum:
            raise ReplicationError("read quorum lost")
        candidates: set[str] = set()
        for replica in alive:
            candidates.update(
                k for k in replica.data if k.startswith(prefix)
            )
        return sorted(k for k in candidates if self.get(k) is not None)

    # -- leader lease (the MUSIC locking recipe) ----------------------------

    LEASE_KEY = "/leader-lease"

    def acquire_lease(self, owner: str, now: float, duration: float) -> bool:
        """Try to become (or stay) leader until ``now + duration``."""
        current: _Lease | None = self.get(self.LEASE_KEY)
        if current is not None and current.owner != owner and current.expires_at > now:
            return False
        self.put(self.LEASE_KEY, _Lease(owner, now + duration))
        return True

    def leader(self, now: float) -> str | None:
        """The current leaseholder, or None if the lease has expired."""
        current: _Lease | None = self.get(self.LEASE_KEY)
        if current is None or current.expires_at <= now:
            return None
        return current.owner

    def release_lease(self, owner: str) -> None:
        current: _Lease | None = self.get(self.LEASE_KEY)
        if current is not None and current.owner == owner:
            self.put(self.LEASE_KEY, None)


# ---------------------------------------------------------------------------
# Global Switchboard checkpointing
# ---------------------------------------------------------------------------

_CHAIN_PREFIX = "/chains/"
_INSTALL_PREFIX = "/installing/"


def mark_install_phase(
    store: ReplicatedStore,
    chain_name: str,
    phase: str,
    loads: dict[tuple[str, str], float],
) -> None:
    """Durably record that an installation is in flight.

    The bus-driven installer writes a marker when the 2PC starts
    (``phase="committing"``) and when the route is published
    (``phase="configuring"``), and clears it on completion or abort.  A
    standby controller that takes over uses the markers to find chains
    whose install died with the primary: a ``committing`` marker with no
    checkpoint means reservations/commitments may exist at the recorded
    (vnf, site) pairs with no coordinator left to resolve them -- the
    standby tears those down.
    """
    store.put(
        _INSTALL_PREFIX + chain_name,
        {
            "phase": phase,
            "loads": {
                f"{vnf}@{site}": load
                for (vnf, site), load in loads.items()
            },
        },
    )


def clear_install_marker(store: ReplicatedStore, chain_name: str) -> None:
    store.delete(_INSTALL_PREFIX + chain_name)


def pending_install_markers(
    store: ReplicatedStore,
) -> dict[str, dict]:
    """Every in-flight-install marker: chain name -> {phase, loads}."""
    markers: dict[str, dict] = {}
    for key in store.keys(_INSTALL_PREFIX):
        record = store.get(key)
        if record is None:
            continue
        markers[key[len(_INSTALL_PREFIX):]] = {
            "phase": record["phase"],
            "loads": {
                tuple(pair.split("@", 1)): load
                for pair, load in record["loads"].items()
            },
        }
    return markers


def checkpoint_installation(
    store: ReplicatedStore, installation: ChainInstallation
) -> None:
    """Persist one chain installation (called after create/extend)."""
    spec = installation.spec
    record = {
        "spec": {
            "name": spec.name,
            "edge_service": spec.edge_service,
            "ingress_attachment": spec.ingress_attachment,
            "egress_attachment": spec.egress_attachment,
            "vnf_services": list(spec.vnf_services),
            "forward_demand": spec.forward_demand,
            "reverse_demand": spec.reverse_demand,
            "src_prefix": spec.src_prefix,
            "dst_prefixes": list(spec.dst_prefixes),
            "protocol": spec.protocol,
            "dst_port_range": spec.dst_port_range,
        },
        "label": installation.label,
        "ingress_site": installation.ingress_site,
        "egress_site": installation.egress_site,
        "routed_fraction": installation.routed_fraction,
        "committed_load": {
            f"{vnf}@{site}": load
            for (vnf, site), load in installation.committed_load.items()
        },
        "extra_edge_sites": list(installation.extra_edge_sites),
    }
    store.put(_CHAIN_PREFIX + spec.name, record)


def remove_checkpoint(store: ReplicatedStore, chain_name: str) -> None:
    store.delete(_CHAIN_PREFIX + chain_name)


def restore_installations(store: ReplicatedStore) -> dict[str, ChainInstallation]:
    """Rebuild every checkpointed installation (for a standby controller)."""
    installations: dict[str, ChainInstallation] = {}
    for key in store.keys(_CHAIN_PREFIX):
        record = store.get(key)
        if record is None:
            continue
        spec_data = record["spec"]
        spec = ChainSpecification(
            spec_data["name"],
            spec_data["edge_service"],
            spec_data["ingress_attachment"],
            spec_data["egress_attachment"],
            spec_data["vnf_services"],
            forward_demand=spec_data["forward_demand"],
            reverse_demand=spec_data["reverse_demand"],
            src_prefix=spec_data["src_prefix"],
            dst_prefixes=spec_data["dst_prefixes"],
            protocol=spec_data["protocol"],
            dst_port_range=spec_data["dst_port_range"],
        )
        committed = {
            tuple(key.split("@", 1)): load
            for key, load in record["committed_load"].items()
        }
        installation = ChainInstallation(
            spec,
            record["label"],
            record["ingress_site"],
            record["egress_site"],
            record["routed_fraction"],
            committed,
            list(record["extra_edge_sites"]),
        )
        installations[spec.name] = installation
    return installations
