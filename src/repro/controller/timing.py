"""Timed models of the control-plane message flows (Section 7.1).

The logical work of chain installation is in
:mod:`repro.controller.global_switchboard`; what the paper *measures* in
Section 7.1 is the wall-clock latency of the message sequences, driven
by wide-area propagation and data-plane configuration times.  This
module replays those sequences on the discrete-event simulator with a
configurable latency budget:

- :func:`simulate_chain_route_update` -- the Figure 10a experiment: the
  end-to-end latency of adding a new route to a live chain (the paper
  measures 595 ms on its testbed).
- :func:`simulate_edge_site_addition` -- the Table 2 experiment: the
  six-step latency breakdown of grafting a new edge site onto a chain
  (paper total: 567 ms, "below 600 ms").

Defaults are calibrated to the paper's testbed numbers; the benches
print paper-vs-model tables and EXPERIMENTS.md records the deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simnet.events import Simulator


@dataclass(frozen=True)
class ControlPlaneLatencies:
    """Latency budget for control-plane operations (seconds).

    The bus propagation entries correspond to one-way publish-to-receive
    latencies between the relevant sites (proxy hops included); the
    data-plane configuration entries are the OVS/DPDK rule- and
    tunnel-installation times the paper observes on its CPE and cloud
    forwarders.
    """

    #: RPC one-way latency between Global Switchboard and a controller.
    gs_rpc_oneway_s: float = 0.020
    #: Route computation at Global Switchboard (SB-DP is milliseconds).
    route_compute_s: float = 0.010
    #: Per-phase processing at a VNF controller during 2PC.
    twopc_processing_s: float = 0.005
    #: Bus propagation: first VNF's info to the edge site's forwarder.
    bus_vnf_info_to_edge_s: float = 0.063
    #: Bus propagation: edge forwarder's info to the first VNF's forwarder.
    bus_edge_info_to_vnf_s: float = 0.074
    #: Local Switchboard rule computation (in-memory; the paper's 0 ms row).
    local_sb_compute_s: float = 0.0
    #: Data-plane configuration at the edge-site forwarder (rules + tunnel).
    edge_dataplane_config_s: float = 0.093
    #: Delay before the VNF-side forwarder starts configuring (message
    #: aggregation at Local Switchboard + tunnel negotiation start).
    vnf_config_start_s: float = 0.233
    #: Data-plane configuration at the VNF-side forwarder.
    vnf_dataplane_config_s: float = 0.104
    #: Edge/VNF controllers allocating instances and publishing them.
    allocation_publish_s: float = 0.040


@dataclass
class Milestone:
    """One step of a control-plane operation."""

    operation: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class Timeline:
    """An executed sequence of milestones."""

    milestones: list[Milestone] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return max((m.end_s for m in self.milestones), default=0.0)

    @property
    def summed_durations_s(self) -> float:
        return sum(m.duration_s for m in self.milestones)

    def duration_of(self, operation: str) -> float:
        for m in self.milestones:
            if m.operation == operation:
                return m.duration_s
        raise KeyError(operation)


def _run_steps(steps: list[tuple[str, float]]) -> Timeline:
    """Execute sequential steps on the simulator and record milestones."""
    sim = Simulator()
    timeline = Timeline()

    def fire(index: int) -> None:
        if index >= len(steps):
            return
        name, duration = steps[index]
        start = sim.now

        def finish() -> None:
            timeline.milestones.append(Milestone(name, start, sim.now))
            fire(index + 1)

        sim.schedule(duration, finish)

    fire(0)
    sim.run()
    return timeline


def simulate_chain_route_update(
    latencies: ControlPlaneLatencies | None = None,
) -> Timeline:
    """The Figure 10a flow: add a new wide-area route to a live chain.

    Sequence: the route request reaches Global Switchboard, the route is
    recomputed, capacity is two-phase committed with the VNF controller
    at the new site (two RPC round trips), routes and labels propagate
    over the bus, controllers allocate instances and publish them, Local
    Switchboards compile rules, and both ends configure their data
    planes.
    """
    lat = latencies or ControlPlaneLatencies()
    rtt = 2 * lat.gs_rpc_oneway_s
    shared = [
        ("route request reaches Global Switchboard", lat.gs_rpc_oneway_s),
        ("route recomputation (SB-DP)", lat.route_compute_s),
        ("2PC prepare at VNF controllers", rtt + lat.twopc_processing_s),
        ("2PC commit at VNF controllers", rtt + lat.twopc_processing_s),
        ("route/label propagation on the bus", lat.bus_vnf_info_to_edge_s),
        ("instance allocation + publication", lat.allocation_publish_s),
        ("instance info propagation on the bus", lat.bus_edge_info_to_vnf_s),
        ("Local Switchboard rule computation", lat.local_sb_compute_s),
    ]
    # After the rules are computed, the edge-side and VNF-side data
    # planes configure their tunnel ends concurrently (the two tracks of
    # Table 2); the update completes when the slower track finishes.
    edge_track = [("edge-side forwarder configuration", lat.edge_dataplane_config_s)]
    vnf_track = [
        ("VNF-side forwarder configuration start", lat.vnf_config_start_s - rtt),
        ("VNF-side forwarder configuration", lat.vnf_dataplane_config_s),
    ]
    timeline = _run_steps(shared)
    fork = timeline.total_s
    for track in (edge_track, vnf_track):
        at = fork
        for name, duration in track:
            timeline.milestones.append(Milestone(name, at, at + duration))
            at += duration
    return timeline


def simulate_edge_site_addition(
    latencies: ControlPlaneLatencies | None = None,
) -> Timeline:
    """The Table 2 flow: route traffic from a new edge site to the first
    VNF of an existing chain.

    The six steps mirror the table's rows: Local Switchboard picks the
    first VNF's site from its replicated route state (0 ms), the edge
    forwarder learns the first VNF's forwarder set and configures its
    data plane, then the first VNF's forwarder learns the edge forwarder
    and configures the other end of the tunnel.
    """
    lat = latencies or ControlPlaneLatencies()
    steps = [
        ("Local SB chooses the 1st VNF's site", lat.local_sb_compute_s),
        ("Edge instance's fwrdr receives 1st VNF's info", lat.bus_vnf_info_to_edge_s),
        ("Edge instance's fwrdr dataplane configured", lat.edge_dataplane_config_s),
        ("1st VNF's fwrdr receives edge's fwrdr info", lat.bus_edge_info_to_vnf_s),
        ("1st VNF's fwrdr starts dataplane configuration", lat.vnf_config_start_s),
        ("1st VNF's fwrdr finishes configuration", lat.vnf_dataplane_config_s),
    ]
    return _run_steps(steps)


#: The paper's Table 2, for comparison in tests/benches (milliseconds).
PAPER_TABLE2_MS = {
    "Local SB chooses the 1st VNF's site": 0.0,
    "Edge instance's fwrdr receives 1st VNF's info": 63.0,
    "Edge instance's fwrdr dataplane configured": 93.0,
    "1st VNF's fwrdr receives edge's fwrdr info": 74.0,
    "1st VNF's fwrdr starts dataplane configuration": 233.0,
    "1st VNF's fwrdr finishes configuration": 104.0,
}

#: The paper's Figure 10a total route-update latency (milliseconds).
PAPER_ROUTE_UPDATE_MS = 595.0
