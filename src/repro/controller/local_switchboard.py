"""Local Switchboard: the per-site controller (Sections 3, 5.2).

Responsibilities reproduced here:

- horizontal scaling of forwarders at the site and the assignment of
  VNF instances to forwarders (round-robin, keeping a VNF instance in
  the same L2 domain as its forwarder);
- compiling a chain's wide-area route fractions plus the published
  instance weights into the three weighted load-balancing rule sets of
  Section 5.2, and installing them at the site's forwarders;
- the on-demand edge-site extension of Section 6: choosing the nearest
  existing wide-area route for traffic appearing at a new edge site.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from repro.dataplane.forwarder import DataPlane, Forwarder, VnfInstance
from repro.dataplane.rules import (
    LoadBalancingRule,
    WeightedChoice,
    forwarder_weight,
)


class LocalSwitchboardError(Exception):
    """Raised on per-site control errors."""


class LocalSwitchboard:
    """The Switchboard controller at one site."""

    def __init__(self, site: str, dataplane: DataPlane, num_forwarders: int = 1):
        self.site = site
        self.dataplane = dataplane
        self.forwarders: list[Forwarder] = []
        #: VNF instance name -> forwarder name it is attached to.
        self.assignment: dict[str, str] = {}
        self._counter = itertools.count(1)
        self._edge_forwarder: Forwarder | None = None
        for _ in range(num_forwarders):
            self.scale_forwarders(1)

    # -- forwarder fleet -------------------------------------------------

    def scale_forwarders(self, extra: int = 1) -> list[Forwarder]:
        """Elastically add forwarders at this site."""
        added = []
        for _ in range(extra):
            name = f"fwd.{self.site}.{next(self._counter)}"
            fwd = self.dataplane.add_forwarder(Forwarder(name, self.site))
            self.forwarders.append(fwd)
            added.append(fwd)
        return added

    def edge_forwarder(self) -> Forwarder:
        """The forwarder reserved for edge instances at this site.

        Edge and VNF traffic need distinct forwarders because a
        forwarder's rule for a (chain, egress) pair describes *one* role
        -- either "load-balance into my local VNF instances" or
        "classify-and-forward for the ingress edge".  Keeping edges on a
        dedicated forwarder mirrors Figure 5, where each forwarder
        fronts a specific set of VNF instances.
        """
        if self._edge_forwarder is None:
            name = f"fwd.{self.site}.edge"
            self._edge_forwarder = self.dataplane.add_forwarder(
                Forwarder(name, self.site)
            )
        return self._edge_forwarder

    def assign_instance(self, instance: VnfInstance) -> Forwarder:
        """Attach a VNF instance to a forwarder fronting its service.

        The instance keeps its assignment for its lifetime (remapping
        would break flow affinity, Section 5.3).  A forwarder fronts
        instances of at most one VNF service -- the paper's model, and a
        requirement for unambiguous per-forwarder rules -- so the least
        loaded same-service forwarder is chosen, scaling out if every
        forwarder already fronts a different service.
        """
        if instance.site != self.site:
            raise LocalSwitchboardError(
                f"instance {instance.name!r} is at {instance.site!r}, "
                f"not {self.site!r}"
            )
        existing = self.assignment.get(instance.name)
        if existing is not None:
            return self.dataplane.forwarders[existing]
        candidates = [
            f
            for f in self.forwarders
            if not f.attached
            or next(iter(f.attached.values())).service == instance.service
        ]
        if not candidates:
            candidates = self.scale_forwarders(1)
        fwd = min(candidates, key=lambda f: len(f.attached))
        fwd.attach(instance)
        self.assignment[instance.name] = fwd.name
        return fwd

    def forwarders_for_service(self, service: str) -> list[Forwarder]:
        """Forwarders fronting at least one instance of a VNF service."""
        return [
            f
            for f in self.forwarders
            if any(inst.service == service for inst in f.attached.values())
        ]

    def forwarder_of(self, instance_name: str) -> str:
        try:
            return self.assignment[instance_name]
        except KeyError:
            raise LocalSwitchboardError(
                f"instance {instance_name!r} not assigned at {self.site!r}"
            ) from None

    def forwarders_for_instances(
        self, instances: list[VnfInstance]
    ) -> dict[str, float]:
        """Published weights of the forwarders fronting the instances:
        forwarder weight = sum of its attached instances' weights."""
        per_forwarder: dict[str, dict[str, float]] = {}
        for instance in instances:
            fwd = self.forwarder_of(instance.name)
            per_forwarder.setdefault(fwd, {})[instance.name] = instance.weight
        return {
            fwd: forwarder_weight(weights)
            for fwd, weights in per_forwarder.items()
        }

    # -- rule compilation ------------------------------------------------------

    def install_chain_rules(
        self,
        chain_label: int,
        egress_site: str,
        local_instances: Mapping[str, float],
        next_hops: Mapping[str, float],
        prev_hops: Mapping[str, float],
    ) -> None:
        """Install the compiled rule at every forwarder of this site.

        ``local_instances`` / ``next_hops`` / ``prev_hops`` already carry
        hierarchical weights (site fraction x instance weight); this
        method only materializes them into the forwarders.
        """
        for fwd in self.forwarders:
            rule = LoadBalancingRule(
                local_instances=WeightedChoice(
                    {
                        name: weight
                        for name, weight in local_instances.items()
                        if name in fwd.attached
                    }
                ),
                next_forwarders=WeightedChoice(dict(next_hops)),
                prev_forwarders=WeightedChoice(dict(prev_hops)),
            )
            fwd.install_rule(chain_label, egress_site, rule)

    def install_edge_rule(
        self,
        chain_label: int,
        egress_site: str,
        next_hops: Mapping[str, float],
    ) -> Forwarder:
        """Install the ingress-side rule on the site's edge forwarder."""
        fwd = self.edge_forwarder()
        fwd.install_rule(
            chain_label,
            egress_site,
            LoadBalancingRule(next_forwarders=WeightedChoice(dict(next_hops))),
        )
        return fwd

    def remove_chain_rules(self, chain_label: int, egress_site: str) -> None:
        for fwd in self.forwarders:
            fwd.remove_rule(chain_label, egress_site)
        if self._edge_forwarder is not None:
            self._edge_forwarder.remove_rule(chain_label, egress_site)
