"""The Figure 4 message flow as a discrete-event protocol on the bus.

Where :mod:`repro.controller.timing` replays the paper's latency budget
as fixed steps, this module makes the control-plane latency *emerge*
from actual messages: Global Switchboard, the edge controller, the VNF
controllers, and the Local Switchboards are hosts on a simulated
network, the route/label and instance announcements travel over the
real :class:`~repro.bus.bus.GlobalMessageBus`, and the two-phase commit
is request/response RPC with wide-area propagation.

The protocol drives the same state objects as the synchronous
:meth:`GlobalSwitchboard.create_chain` -- it *is* the same installation,
just spread over simulated time -- so a test can assert that the end
state (routes, commitments, rules) is identical while the timeline
reflects the deployment's geography.

Message sequence (the numbered arrows of Figure 4):

1. chain spec reaches Global Switchboard;
2. GS resolves ingress/egress sites with the edge controller (RPC);
3. GS computes the route and 2PCs capacity with each VNF controller on
   it (prepare RPCs, then commit RPCs; a rejection triggers recompute);
4. GS publishes the route + labels on the bus; edge and VNF controllers
   configure/allocate and publish their instances;
5. each Local Switchboard, having both the route and the instance info,
   compiles and installs its site's rules (+ data-plane config delay).

Installation completes when every site on the route has configured.

Fault tolerance (:mod:`repro.resilience`): control RPCs ride the
at-least-once :class:`~repro.resilience.rpc.RpcLayer`; 2PC messages are
stamped with the coordinator's **attempt number** and receivers keep a
per-(chain, vnf, site) epoch so stale rounds (a retransmitted abort
racing a fresh prepare) are no-ops; a per-install **deadline** triggers
:meth:`BusDrivenInstaller.abort_install`, which tears down every
participant and rolls the coordinator back; a per-install **re-drive
tick** re-sends the phase-appropriate messages that travel over bare or
pub/sub channels (chain request, edge configure, instance allocation);
and, given a :class:`~repro.controller.replication.ReplicatedStore`,
the installer checkpoints installations and phase markers so a standby
controller can resume or abort after a failover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.replication import ReplicatedStore
    from repro.obs.registry import MetricsRegistry
    from repro.obs.trace import Span
    from repro.simnet.events import EventHandle

from repro.bus.bus import GlobalMessageBus
from repro.bus.topics import Topic
from repro.controller.chainspec import ChainSpecification
from repro.controller.global_switchboard import (
    ChainInstallation,
    GlobalSwitchboard,
    InstallationError,
)
from repro.core.model import Chain
from repro.resilience.deadline import DeadlineManager, ResilienceConfig
from repro.resilience.rpc import RpcLayer
from repro.simnet.network import LinkSpec
from repro.vnf.service import AllocationError

_EPS = 1e-9

#: Attempt number carried by teardown messages: larger than any real
#: 2PC round, so a teardown permanently fences late prepares/commits of
#: the chain at that participant.
_TOMBSTONE = 1 << 30


class ProtocolError(Exception):
    """Raised on invalid protocol configuration."""


@dataclass(frozen=True)
class ProtocolDelays:
    """Processing times charged at each element (propagation comes from
    the simulated network)."""

    route_compute_s: float = 0.010
    controller_processing_s: float = 0.005
    instance_allocation_s: float = 0.020
    rule_compute_s: float = 0.002
    dataplane_config_s: float = 0.093


@dataclass
class InstallationTimeline:
    """Timestamps of the Figure 4 milestones (simulated seconds)."""

    requested_at: float = 0.0
    sites_resolved_at: float | None = None
    route_committed_at: float | None = None
    route_published_at: float | None = None
    #: site -> time its rules were fully installed.
    site_configured_at: dict[str, float] = field(default_factory=dict)
    completed_at: float | None = None
    failed: str | None = None
    installation: ChainInstallation | None = None

    @property
    def total_s(self) -> float:
        if self.completed_at is None:
            return float("inf")
        return self.completed_at - self.requested_at


class BusDrivenInstaller:
    """Runs chain installations as timed message exchanges.

    Construction wires one host per controller onto the bus network:
    Global Switchboard at ``gs_site``, the edge controller at
    ``edge_site``, one VNF-controller host per VNF service (at the
    service's first deployment site), and one Local-Switchboard client
    per cloud site (attached to the bus for route/instance topics).

    ``resilience`` configures the hardening stack (RPC retries, install
    deadlines, re-drive); ``store`` enables durable checkpoints and
    phase markers for standby-controller failover.
    """

    def __init__(
        self,
        gs: GlobalSwitchboard,
        bus: GlobalMessageBus,
        gs_site: str,
        edge_controller_site: str,
        vnf_controller_sites: dict[str, str],
        delays: ProtocolDelays | None = None,
        wan_delay_s: dict[tuple[str, str], float] | float | None = None,
        metrics: "MetricsRegistry | None" = None,
        resilience: ResilienceConfig | None = None,
        store: "ReplicatedStore | None" = None,
    ):
        self.gs = gs
        self.bus = bus
        self.network = bus.network
        self.sim = bus.network.sim
        self.delays = delays or ProtocolDelays()
        self._wan_delay = wan_delay_s
        #: Observability sink; spans measure *simulated* seconds when the
        #: registry's clock is this network's simulator.
        self.metrics = metrics
        self.resilience = resilience or ResilienceConfig()
        self.store = store

        host_sites: dict[str, str] = {}

        def add_host(name: str, site: str) -> None:
            if site not in bus.sites:
                raise ProtocolError(f"unknown bus site {site!r}")
            self.network.add_host(name, site=site)
            host_sites[name] = site

        self.gs_host = "ctrl.gs"
        add_host(self.gs_host, gs_site)
        self.edge_host = "ctrl.edge"
        add_host(self.edge_host, edge_controller_site)
        self.vnf_hosts: dict[str, str] = {}
        for vnf_name, site in vnf_controller_sites.items():
            host = f"ctrl.vnf.{vnf_name}"
            add_host(host, site)
            self.vnf_hosts[vnf_name] = host

        # Direct control links between controllers carry the same WAN
        # propagation as the inter-site bus links, so RPC latency is
        # geography-dependent (same-site hosts use the LAN implicitly).
        #: Cross-site control link endpoints, for targeted fault
        #: injection (the chaos ``control_loss`` event).
        self.control_pairs: list[tuple[str, str]] = []
        names = list(host_sites)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                site_a, site_b = host_sites[a], host_sites[b]
                if site_a == site_b:
                    continue
                self.network.connect(
                    a, b, LinkSpec(delay_s=self._delay_between(site_a, site_b))
                )
                self.control_pairs.append((a, b))
        # Local Switchboards are bus clients at their sites.
        self.local_clients: dict[str, str] = {}
        for site in gs.locals:
            client = f"lsb.{site}"
            bus.attach(client, site)
            self.local_clients[site] = client
        # The GS also speaks on the bus (publishing routes).
        bus.attach("gsb.pub", gs_site)

        self._pending: dict[str, _PendingInstall] = {}
        #: (chain, vnf, site) -> lowest 2PC attempt still accepted there.
        self._epochs: dict[tuple[str, str, str], int] = {}
        self.deadline_aborts = 0
        self.aborted = 0

        # Reliable control endpoints (each registers itself as its
        # host's receiver; bare legacy sends pass through unchanged).
        self.rpc = RpcLayer(
            self.network,
            self.resilience.rpc,
            metrics=metrics,
            seed=self.resilience.seed,
        )
        self._gs_rpc = self.rpc.endpoint(self.gs_host, self._gs_receive)
        self._edge_rpc = self.rpc.endpoint(self.edge_host, self._edge_receive)
        self._vnf_rpc = {
            vnf_name: self.rpc.endpoint(host, self._make_vnf_receiver(vnf_name))
            for vnf_name, host in self.vnf_hosts.items()
        }
        self.deadlines = DeadlineManager(self.sim, metrics=metrics)
        if metrics is not None:
            metrics.counter("install.deadline_aborts")
            metrics.counter("install.aborted")

    def _delay_between(self, site_a: str, site_b: str) -> float:
        """One-way control-RPC delay between two sites.

        Uses the explicit ``wan_delay_s`` if given; otherwise reads the
        bus network's gateway->proxy link for the pair (the same WAN the
        pub/sub traffic crosses); falls back to 20 ms.
        """
        if isinstance(self._wan_delay, (int, float)):
            return float(self._wan_delay)
        if isinstance(self._wan_delay, dict):
            if (site_a, site_b) in self._wan_delay:
                return self._wan_delay[(site_a, site_b)]
            if (site_b, site_a) in self._wan_delay:
                return self._wan_delay[(site_b, site_a)]
        from repro.bus.bus import gateway_name, proxy_name

        link = self.network._links.get(
            (gateway_name(site_a), proxy_name(site_b))
        )
        if link is not None:
            return link.spec.delay_s
        return 0.020

    # -- tracing helpers -------------------------------------------------

    def _start_stage(self, pending: "_PendingInstall", stage: str) -> None:
        if self.metrics is None:
            return
        pending.spans[stage] = self.metrics.start_span(
            stage, chain=pending.spec.name
        )

    def _finish_stage(self, pending: "_PendingInstall", stage: str) -> None:
        if self.metrics is None:
            return
        span = pending.spans.pop(stage, None)
        if span is not None:
            span.finish()

    def _finish_open_stages(self, pending: "_PendingInstall") -> None:
        for stage in list(pending.spans):
            self._finish_stage(pending, stage)

    # -- durable state (checkpoints + phase markers) ----------------------

    def _mark_phase(self, chain_name: str, phase: str, loads) -> None:
        if self.store is None:
            return
        from repro.controller.replication import (
            ReplicationError,
            mark_install_phase,
        )

        try:
            mark_install_phase(self.store, chain_name, phase, loads)
        except ReplicationError:
            pass  # degraded store: proceed without durability

    def _clear_marker(self, chain_name: str) -> None:
        if self.store is None:
            return
        from repro.controller.replication import (
            ReplicationError,
            clear_install_marker,
        )

        try:
            clear_install_marker(self.store, chain_name)
        except ReplicationError:
            pass

    def _checkpoint(self, installation: ChainInstallation) -> None:
        if self.store is None:
            return
        from repro.controller.replication import (
            ReplicationError,
            checkpoint_installation,
        )

        try:
            checkpoint_installation(self.store, installation)
        except ReplicationError:
            pass

    def _remove_checkpoint(self, chain_name: str) -> None:
        if self.store is None:
            return
        from repro.controller.replication import (
            ReplicationError,
            remove_checkpoint,
        )

        try:
            remove_checkpoint(self.store, chain_name)
        except ReplicationError:
            pass

    # -- public API ------------------------------------------------------

    def install(
        self,
        spec: ChainSpecification,
        on_complete: Callable[[InstallationTimeline], None] | None = None,
    ) -> InstallationTimeline:
        """Start an installation; returns its (live) timeline object.

        Run the simulator (``installer.network.run()``) to drive it to
        completion; the timeline fills in as milestones pass.  If the
        install has not completed by ``resilience.install_deadline_s``
        it is aborted and rolled back, and the timeline reports the
        failure.
        """
        timeline = InstallationTimeline(requested_at=self.sim.now)
        pending = _PendingInstall(spec, timeline, on_complete)
        self._pending[spec.name] = pending
        self._start_stage(pending, "install.total")
        self._start_stage(pending, "install.resolve")
        self.deadlines.arm(
            spec.name, self.resilience.install_deadline_s, self._on_deadline
        )
        pending.redrive = self.sim.schedule(
            self.resilience.redrive_interval_s, self._redrive_tick, spec.name
        )
        # Arrow 0: the portal's request reaches Global Switchboard.  A
        # bare send (the portal is a bus client, which cannot speak the
        # RPC envelope); the re-drive tick re-sends it if lost.
        self.sim.schedule(
            0.0,
            self.network.send,
            "gsb.pub",
            self.gs_host,
            {"type": "chain_request", "chain": spec.name},
        )
        return timeline

    def abort_install(self, name: str, reason: str) -> bool:
        """Unilaterally abort an in-flight installation and roll
        everything back: fence and tear down every participant that may
        hold reservations or commitments, undo router/model/label state
        at the coordinator, drop durable markers, and report a failed
        timeline.  Idempotent; returns False if the install is not
        pending (already completed, failed, or unknown)."""
        pending = self._pending.get(name)
        if pending is None or pending.timeline.completed_at is not None:
            return False
        self.aborted += 1
        if self.metrics is not None:
            self.metrics.counter("install.aborted").inc()
        # Stop retransmitting anything about this chain: receivers'
        # epoch guards make copies already in flight no-ops.
        for endpoint in self.rpc.endpoints.values():
            endpoint.cancel_matching(
                lambda p: isinstance(p, dict) and p.get("chain") == name
            )
        # Fence + release every participant the 2PC may have touched.
        for vnf_name, site in sorted(set(pending.loads)):
            self.send_teardown(vnf_name, name, site)
        # Coordinator-side rollback, by how far the install progressed.
        if name in self.gs.installations:
            self.gs.remove_chain(name)
        else:
            if name in self.gs.model.chains:
                self.gs.router.rollback(name)
                self.gs.model.remove_chain(name)
            self.gs.labels.release(name)
        # Drop this install's bus subscriptions so a reused label cannot
        # trigger its stale callbacks.
        for raw in pending.involved_topics:
            for client in self.local_clients.values():
                self.bus.unsubscribe(client, raw)
        self._remove_checkpoint(name)
        self._fail(pending, reason)
        return True

    def send_teardown(self, vnf_name: str, chain: str, site: str) -> None:
        """Reliably tell a VNF controller to drop *all* state for a
        (chain, site): the reservation and the committed allocation.
        Carries the tombstone attempt, permanently fencing late 2PC
        messages for the chain there."""
        self._gs_rpc.send(
            self.vnf_hosts[vnf_name],
            {
                "type": "teardown",
                "chain": chain,
                "vnf": vnf_name,
                "site": site,
                "attempt": _TOMBSTONE,
            },
        )

    def redrive(self, name: str) -> None:
        """Re-send the phase-appropriate messages for a pending install.

        Reliable RPCs retry themselves; this covers the hops that do
        not: the initial bare chain request, and (post-publish) the edge
        configuration and instance allocations whose effects travel
        over the at-most-once pub/sub bus.  Every re-driven action is
        idempotent downstream.  Used by the periodic tick and by a
        standby controller after failover.
        """
        pending = self._pending.get(name)
        if pending is None or pending.timeline.completed_at is not None:
            return
        timeline = pending.timeline
        if timeline.sites_resolved_at is None:
            if not pending.resolve_requested:
                self.network.send(
                    "gsb.pub",
                    self.gs_host,
                    {"type": "chain_request", "chain": name},
                    strict=False,
                )
        elif timeline.route_published_at is not None:
            self._drive_configure(pending)
        # Between those milestones the 2PC is in flight and its RPCs
        # carry their own retransmit timers.

    # -- deadline / re-drive internals ------------------------------------

    def _on_deadline(self, name: str) -> None:
        self.deadline_aborts += 1
        if self.metrics is not None:
            self.metrics.counter("install.deadline_aborts").inc()
        self.abort_install(name, "installation deadline expired")

    def _redrive_tick(self, name: str) -> None:
        pending = self._pending.get(name)
        if pending is None:
            return
        self.redrive(name)
        pending.redrive = self.sim.schedule(
            self.resilience.redrive_interval_s, self._redrive_tick, name
        )

    def _cancel_redrive(self, pending: "_PendingInstall") -> None:
        if pending.redrive is not None:
            pending.redrive.cancel()
            pending.redrive = None

    def _rpc_gave_up(self, dst: str, payload) -> None:
        """A critical control RPC exhausted its retries: the peer is
        unreachable beyond what retransmits can fix, so abort the
        install rather than hang until the deadline."""
        chain = payload.get("chain") if isinstance(payload, dict) else None
        if chain is not None:
            self.abort_install(chain, f"control rpc to {dst} gave up")

    def _drive_configure(self, pending: "_PendingInstall") -> None:
        spec = pending.spec
        if not pending.edge_configured:
            self._gs_rpc.send(
                self.edge_host,
                {"type": "configure_edge", "chain": spec.name},
                self._rpc_gave_up,
            )
        for vnf_name, site in sorted(set(pending.loads)):
            self._gs_rpc.send(
                self.vnf_hosts[vnf_name],
                {"type": "allocate", "chain": spec.name, "site": site},
                self._rpc_gave_up,
            )

    # -- Global Switchboard host -------------------------------------------

    def _gs_receive(self, sender: str, message: dict) -> None:
        handler = {
            "chain_request": self._on_chain_request,
            "sites_resolved": self._on_sites_resolved,
            "prepare_ack": self._on_prepare_ack,
            "commit_ack": self._on_commit_ack,
        }.get(message.get("type"))
        if handler is not None:
            handler(message)

    def _on_chain_request(self, message: dict) -> None:
        pending = self._pending.get(message["chain"])
        if pending is None or pending.resolve_requested:
            return  # unknown chain, or a re-driven duplicate request
        pending.resolve_requested = True
        # Arrow 1: resolve ingress/egress sites with the edge controller.
        self.sim.schedule(
            self.delays.controller_processing_s,
            self._gs_rpc.send,
            self.edge_host,
            {
                "type": "resolve_sites",
                "chain": pending.spec.name,
                "ingress": pending.spec.ingress_attachment,
                "egress": pending.spec.egress_attachment,
            },
            self._rpc_gave_up,
        )

    def _edge_receive(self, sender: str, message: dict) -> None:
        if message.get("type") == "resolve_sites":
            pending = self._pending.get(message["chain"])
            if pending is None:
                return
            edge = self.gs.edge_controllers[pending.spec.edge_service]
            reply = {
                "type": "sites_resolved",
                "chain": message["chain"],
                "ingress_site": edge.resolve_site(message["ingress"]),
                "egress_site": edge.resolve_site(message["egress"]),
            }
            self.sim.schedule(
                self.delays.controller_processing_s,
                self._edge_rpc.send,
                self.gs_host,
                reply,
            )
        elif message.get("type") == "configure_edge":
            pending = self._pending.get(message["chain"])
            if pending is None or pending.edge_configured:
                return
            pending.edge_configured = True
            installation = pending.timeline.installation
            edge = self.gs.edge_controllers[pending.spec.edge_service]
            self.gs._configure_edges(installation, edge)

    def _on_sites_resolved(self, message: dict) -> None:
        pending = self._pending.get(message["chain"])
        if pending is None or pending.timeline.sites_resolved_at is not None:
            return  # re-driven duplicate resolution
        pending.timeline.sites_resolved_at = self.sim.now
        self._finish_stage(pending, "install.resolve")
        self._start_stage(pending, "install.route_compute")
        pending.ingress_site = message["ingress_site"]
        pending.egress_site = message["egress_site"]

        # Arrow 2: route computation (charged compute time), then 2PC.
        def compute() -> None:
            if self._pending.get(pending.spec.name) is not pending:
                return  # aborted while the compute delay elapsed
            spec = pending.spec
            chain = Chain(
                spec.name,
                self.gs.model.endpoint_node(pending.ingress_site),
                self.gs.model.endpoint_node(pending.egress_site),
                spec.vnf_services,
                spec.forward_demand,
                spec.reverse_demand,
            )
            try:
                self.gs.model.add_chain(chain)
            except Exception as exc:
                self._fail(pending, str(exc))
                return
            self._recompute_route(pending)

        self.sim.schedule(self.delays.route_compute_s, compute)

    def _recompute_route(self, pending: "_PendingInstall") -> None:
        """Route (or re-route after a rejection) and start the 2PC."""
        if self._pending.get(pending.spec.name) is not pending:
            return  # aborted while the recompute delay elapsed
        spec = pending.spec
        try:
            routed = self.gs.router.route(spec.name)
            if routed <= _EPS:
                raise InstallationError(
                    f"no feasible route for chain {spec.name!r}"
                )
        except Exception as exc:
            self.gs.model.remove_chain(spec.name)
            self._fail(pending, str(exc))
            return
        self._finish_stage(pending, "install.route_compute")
        pending.loads = self.gs._chain_loads(spec.name)
        pending.awaiting_prepare = set(pending.loads)
        if not pending.awaiting_prepare:
            self._publish_route(pending)
            return
        self._mark_phase(spec.name, "committing", pending.loads)
        self._start_stage(pending, "2pc.prepare")
        for (vnf_name, site), load in pending.loads.items():
            self._gs_rpc.send(
                self.vnf_hosts[vnf_name],
                {
                    "type": "prepare",
                    "chain": spec.name,
                    "vnf": vnf_name,
                    "site": site,
                    "load": load,
                    "attempt": pending.commit_attempts,
                },
                self._rpc_gave_up,
            )

    def _make_vnf_receiver(self, vnf_name: str):
        def receive(sender: str, message: dict) -> None:
            kind = message.get("type")
            service = self.gs.vnf_services[vnf_name]
            chain, site = message.get("chain"), message.get("site")
            attempt = message.get("attempt", 0)
            epoch_key = (chain, vnf_name, site)
            epoch = self._epochs.get(epoch_key, 0)
            if kind == "prepare":
                if attempt < epoch:
                    return  # stale round: already aborted or torn down
                if attempt > epoch:
                    # A newer round supersedes any reservation a prior
                    # round left behind (its abort may still be in
                    # flight -- and must now be ignored).
                    service.abort(chain, site)
                    self._epochs[epoch_key] = attempt
                ok = service.prepare(chain, site, message["load"])
                self.sim.schedule(
                    self.delays.controller_processing_s,
                    self._vnf_rpc[vnf_name].send,
                    self.gs_host,
                    {**message, "type": "prepare_ack", "ok": ok},
                )
            elif kind == "commit":
                if attempt < epoch:
                    return
                try:
                    service.commit(chain, site)
                except AllocationError:
                    # Commit raced a teardown fence; the coordinator's
                    # deadline/abort path owns the outcome.
                    return
                self.sim.schedule(
                    self.delays.controller_processing_s,
                    self._vnf_rpc[vnf_name].send,
                    self.gs_host,
                    {**message, "type": "commit_ack"},
                )
            elif kind == "abort":
                if attempt < epoch:
                    return
                service.abort(chain, site)
                self._epochs[epoch_key] = attempt + 1
            elif kind == "teardown":
                service.teardown(chain, site)
                self._epochs[epoch_key] = max(epoch, attempt + 1)
            elif kind == "allocate":
                # Arrow 4: allocate instances and publish them on the bus.
                pending = self._pending.get(chain)
                if pending is None:
                    return

                def publish() -> None:
                    if self._pending.get(chain) is not pending:
                        return  # completed or aborted meanwhile
                    self._publish_instances(pending, vnf_name, site)

                self.sim.schedule(self.delays.instance_allocation_s, publish)

        return receive

    def _on_prepare_ack(self, message: dict) -> None:
        pending = self._pending.get(message["chain"])
        if pending is None:
            return
        if message.get("attempt", 0) != pending.commit_attempts:
            return  # ack from a superseded 2PC round
        key = (message["vnf"], message["site"])
        if not message["ok"]:
            self._finish_stage(pending, "2pc.prepare")
            if self.metrics is not None:
                self.metrics.counter(
                    "2pc.rejections", chain=pending.spec.name
                ).inc()
            # Rejection: abort every *other* participant of this round
            # (not just the un-acked ones -- VNFs that already acked
            # hold live reservations), reconcile the rejecting VNF's
            # reported capacity, roll the route back, and recompute --
            # the Section 3 step-2 retry, as in the synchronous path.
            # Aborts carry the rejected round's attempt and bump each
            # receiver's epoch past it, so retransmits of this round
            # are fenced while next round's prepares are accepted.
            for vnf_name, site in sorted(set(pending.loads) - {key}):
                self._gs_rpc.send(
                    self.vnf_hosts[vnf_name],
                    {"type": "abort", "chain": pending.spec.name,
                     "vnf": vnf_name, "site": site,
                     "attempt": pending.commit_attempts},
                )
            self.gs.router.rollback(pending.spec.name)
            pending.commit_attempts += 1
            if pending.commit_attempts >= GlobalSwitchboard.MAX_COMMIT_ATTEMPTS:
                self.gs.model.remove_chain(pending.spec.name)
                self._fail(pending, f"2PC rejected by {key}")
                return
            vnf_name, site = key
            service = self.gs.vnf_services[vnf_name]
            self.gs.router.sync_vnf_capacity(
                vnf_name, site, service.available(site)
            )
            self._start_stage(pending, "install.route_compute")
            self.sim.schedule(
                self.delays.route_compute_s, self._recompute_route, pending
            )
            return
        pending.awaiting_prepare.discard(key)
        if not pending.awaiting_prepare:
            self._finish_stage(pending, "2pc.prepare")
            self._start_stage(pending, "2pc.commit")
            pending.awaiting_commit = set(pending.loads)
            for vnf_name, site in pending.loads:
                self._gs_rpc.send(
                    self.vnf_hosts[vnf_name],
                    {"type": "commit", "chain": pending.spec.name,
                     "vnf": vnf_name, "site": site,
                     "attempt": pending.commit_attempts},
                    self._rpc_gave_up,
                )

    def _on_commit_ack(self, message: dict) -> None:
        pending = self._pending.get(message["chain"])
        if pending is None:
            return
        if message.get("attempt", 0) != pending.commit_attempts:
            return
        pending.awaiting_commit.discard((message["vnf"], message["site"]))
        if not pending.awaiting_commit and pending.timeline.route_committed_at is None:
            pending.timeline.route_committed_at = self.sim.now
            self._finish_stage(pending, "2pc.commit")
            self._publish_route(pending)

    # -- arrows 3-5: bus publications and rule installation ------------------

    def _route_sites(self, pending: "_PendingInstall") -> set[str]:
        """Every site that must install rules for the chain."""
        chain = self.gs.model.chains[pending.spec.name]
        sites = {pending.ingress_site}
        for z in range(1, chain.num_stages):
            for (_src, dst), frac in self.gs.router.solution.stage_flows(
                pending.spec.name, z
            ).items():
                if frac > _EPS:
                    sites.add(dst)
        return sites

    def _publish_route(self, pending: "_PendingInstall") -> None:
        spec = pending.spec
        label = self.gs.labels.allocate(spec.name)
        installation = ChainInstallation(
            spec, label, pending.ingress_site, pending.egress_site,
            self.gs.router.solution.routed_fraction(spec.name),
            pending.loads,
        )
        self.gs.installations[spec.name] = installation
        pending.timeline.installation = installation
        pending.timeline.route_published_at = self.sim.now
        # Durable: the chain is committed; a standby controller must
        # either finish configuring it or tear it down exactly.
        self._checkpoint(installation)
        self._mark_phase(spec.name, "configuring", pending.loads)
        self._start_stage(pending, "install.configure")
        # The edge controller configures classifiers (arrow 4, edge side).
        self._gs_rpc.send(
            self.edge_host,
            {"type": "configure_edge", "chain": spec.name},
            self._rpc_gave_up,
        )
        # Instance allocation requests to VNF controllers on the route.
        involved: set[tuple[str, str]] = set(pending.loads)
        pending.awaiting_instances = set(involved)
        if not involved:
            self._configure_sites(pending)
            return
        for vnf_name, site in involved:
            self._gs_rpc.send(
                self.vnf_hosts[vnf_name],
                {"type": "allocate", "chain": spec.name, "site": site},
                self._rpc_gave_up,
            )
        # Local Switchboards subscribe for the instance announcements
        # (the Section 6 topic layout: filters land at publisher sites).
        pending.involved_topics = {
            str(
                Topic(
                    chain=f"c{installation.label}",
                    egress=pending.egress_site,
                    vnf=vnf_name,
                    site=vnf_site,
                    kind="instances",
                )
            )
            for vnf_name, vnf_site in involved
        }
        for site in self._route_sites(pending):
            callback = self._make_local_callback(pending, site)
            for raw in pending.involved_topics:
                self.bus.subscribe(self.local_clients[site], raw, callback)

    def _publish_instances(
        self, pending: "_PendingInstall", vnf_name: str, site: str
    ) -> None:
        installation = pending.timeline.installation
        self.gs._assign_instances(installation)
        service = self.gs.vnf_services[vnf_name]
        topic = Topic(
            chain=f"c{installation.label}",
            egress=pending.egress_site,
            vnf=vnf_name,
            site=site,
            kind="instances",
        )
        # The VNF controller's local proxy fans this out to exactly the
        # subscribed sites.
        self.bus.publish(
            "gsb.pub" if site not in self.bus.sites else self._bus_client(site),
            topic,
            {
                "instances": [
                    inst.name for inst in service.instances_at(site)
                ]
            },
        )
        pending.awaiting_instances.discard((vnf_name, site))

    def _bus_client(self, site: str) -> str:
        return self.local_clients.get(site, "gsb.pub")

    def _make_local_callback(self, pending: "_PendingInstall", site: str):
        def on_instances(topic: str, _payload) -> None:
            if self._pending.get(pending.spec.name) is not pending:
                return  # aborted install: ignore straggler publications
            if site in pending.timeline.site_configured_at:
                return
            seen = pending.seen_instance_info.setdefault(site, set())
            seen.add(topic)
            # Compile rules only once every involved VNF's instances are
            # known (next-hop weights need the downstream assignments).
            if seen < pending.involved_topics:
                return

            def configure() -> None:
                if self._pending.get(pending.spec.name) is not pending:
                    return
                if site in pending.timeline.site_configured_at:
                    return  # a re-driven duplicate publication
                installation = pending.timeline.installation
                self.gs._install_rules(installation, only_site=site)
                pending.timeline.site_configured_at[site] = self.sim.now
                needed = self._route_sites(pending)
                if needed <= set(pending.timeline.site_configured_at):
                    pending.timeline.completed_at = self.sim.now
                    self._complete(pending)

            self.sim.schedule(
                self.delays.rule_compute_s + self.delays.dataplane_config_s,
                configure,
            )

        return on_instances

    def _configure_sites(self, pending: "_PendingInstall") -> None:
        """VNF-less chain: configure the ingress site directly."""
        installation = pending.timeline.installation

        def configure() -> None:
            if self._pending.get(pending.spec.name) is not pending:
                return
            self.gs._install_rules(installation)
            now = self.sim.now
            pending.timeline.site_configured_at[pending.ingress_site] = now
            pending.timeline.completed_at = now
            self._complete(pending)

        self.sim.schedule(
            self.delays.rule_compute_s + self.delays.dataplane_config_s,
            configure,
        )

    def _complete(self, pending: "_PendingInstall") -> None:
        """Success path: release the pending entry, disarm timers,
        clear durable markers, and notify the caller -- symmetric with
        :meth:`_fail`."""
        name = pending.spec.name
        if self._pending.get(name) is pending:
            del self._pending[name]
        self.deadlines.disarm(name)
        self._cancel_redrive(pending)
        self._finish_open_stages(pending)
        self._clear_marker(name)
        # Mirror bus-driven installs into an attached federation the
        # same way the direct create_chain path does.
        self.gs._notify_federation_installed(name)
        if self.metrics is not None:
            self.metrics.counter("install.completed").inc()
        if pending.on_complete is not None:
            pending.on_complete(pending.timeline)

    def _fail(self, pending: "_PendingInstall", reason: str) -> None:
        name = pending.spec.name
        if self._pending.get(name) is pending:
            del self._pending[name]
        self.deadlines.disarm(name)
        self._cancel_redrive(pending)
        pending.timeline.failed = reason
        self._finish_open_stages(pending)
        self._clear_marker(name)
        if self.metrics is not None:
            self.metrics.counter("install.failed").inc()
        if pending.on_complete is not None:
            pending.on_complete(pending.timeline)


@dataclass
class _PendingInstall:
    spec: ChainSpecification
    timeline: InstallationTimeline
    on_complete: Callable[[InstallationTimeline], None] | None
    ingress_site: str = ""
    egress_site: str = ""
    commit_attempts: int = 0
    loads: dict[tuple[str, str], float] = field(default_factory=dict)
    awaiting_prepare: set[tuple[str, str]] = field(default_factory=set)
    awaiting_commit: set[tuple[str, str]] = field(default_factory=set)
    awaiting_instances: set[tuple[str, str]] = field(default_factory=set)
    involved_topics: set[str] = field(default_factory=set)
    #: site -> topics whose instance info has arrived there.
    seen_instance_info: dict[str, set[str]] = field(default_factory=dict)
    #: stage name -> open tracing span (populated only when the
    #: installer was built with a metrics registry).
    spans: "dict[str, Span]" = field(default_factory=dict)
    #: True once the edge resolution RPC for this install was issued.
    resolve_requested: bool = False
    #: True once the edge controller applied configure_edge.
    edge_configured: bool = False
    #: Handle of the next re-drive tick (cancelled on completion).
    redrive: "EventHandle | None" = None
