"""The Figure 4 message flow as a discrete-event protocol on the bus.

Where :mod:`repro.controller.timing` replays the paper's latency budget
as fixed steps, this module makes the control-plane latency *emerge*
from actual messages: Global Switchboard, the edge controller, the VNF
controllers, and the Local Switchboards are hosts on a simulated
network, the route/label and instance announcements travel over the
real :class:`~repro.bus.bus.GlobalMessageBus`, and the two-phase commit
is request/response RPC with wide-area propagation.

The protocol drives the same state objects as the synchronous
:meth:`GlobalSwitchboard.create_chain` -- it *is* the same installation,
just spread over simulated time -- so a test can assert that the end
state (routes, commitments, rules) is identical while the timeline
reflects the deployment's geography.

Message sequence (the numbered arrows of Figure 4):

1. chain spec reaches Global Switchboard;
2. GS resolves ingress/egress with the edge controller (RPC);
3. GS computes the route and 2PCs capacity with each VNF controller on
   it (prepare RPCs, then commit RPCs; a rejection triggers recompute);
4. GS publishes the route + labels on the bus; edge and VNF controllers
   configure/allocate and publish their instances;
5. each Local Switchboard, having both the route and the instance info,
   compiles and installs its site's rules (+ data-plane config delay).

Installation completes when every site on the route has configured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.obs.trace import Span

from repro.bus.bus import GlobalMessageBus
from repro.bus.topics import Topic
from repro.controller.chainspec import ChainSpecification
from repro.controller.global_switchboard import (
    ChainInstallation,
    GlobalSwitchboard,
    InstallationError,
)
from repro.core.model import Chain
from repro.simnet.network import LinkSpec

_EPS = 1e-9


class ProtocolError(Exception):
    """Raised on invalid protocol configuration."""


@dataclass(frozen=True)
class ProtocolDelays:
    """Processing times charged at each element (propagation comes from
    the simulated network)."""

    route_compute_s: float = 0.010
    controller_processing_s: float = 0.005
    instance_allocation_s: float = 0.020
    rule_compute_s: float = 0.002
    dataplane_config_s: float = 0.093


@dataclass
class InstallationTimeline:
    """Timestamps of the Figure 4 milestones (simulated seconds)."""

    requested_at: float = 0.0
    sites_resolved_at: float | None = None
    route_committed_at: float | None = None
    route_published_at: float | None = None
    #: site -> time its rules were fully installed.
    site_configured_at: dict[str, float] = field(default_factory=dict)
    completed_at: float | None = None
    failed: str | None = None
    installation: ChainInstallation | None = None

    @property
    def total_s(self) -> float:
        if self.completed_at is None:
            return float("inf")
        return self.completed_at - self.requested_at


class BusDrivenInstaller:
    """Runs chain installations as timed message exchanges.

    Construction wires one host per controller onto the bus network:
    Global Switchboard at ``gs_site``, the edge controller at
    ``edge_site``, one VNF-controller host per VNF service (at the
    service's first deployment site), and one Local-Switchboard client
    per cloud site (attached to the bus for route/instance topics).
    """

    def __init__(
        self,
        gs: GlobalSwitchboard,
        bus: GlobalMessageBus,
        gs_site: str,
        edge_controller_site: str,
        vnf_controller_sites: dict[str, str],
        delays: ProtocolDelays | None = None,
        wan_delay_s: dict[tuple[str, str], float] | float | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.gs = gs
        self.bus = bus
        self.network = bus.network
        self.sim = bus.network.sim
        self.delays = delays or ProtocolDelays()
        self._wan_delay = wan_delay_s
        #: Observability sink; spans measure *simulated* seconds when the
        #: registry's clock is this network's simulator.
        self.metrics = metrics

        host_sites: dict[str, str] = {}

        def add_host(name: str, site: str) -> None:
            if site not in bus.sites:
                raise ProtocolError(f"unknown bus site {site!r}")
            self.network.add_host(name, site=site)
            host_sites[name] = site

        self.gs_host = "ctrl.gs"
        add_host(self.gs_host, gs_site)
        self.edge_host = "ctrl.edge"
        add_host(self.edge_host, edge_controller_site)
        self.vnf_hosts: dict[str, str] = {}
        for vnf_name, site in vnf_controller_sites.items():
            host = f"ctrl.vnf.{vnf_name}"
            add_host(host, site)
            self.vnf_hosts[vnf_name] = host

        # Direct control links between controllers carry the same WAN
        # propagation as the inter-site bus links, so RPC latency is
        # geography-dependent (same-site hosts use the LAN implicitly).
        names = list(host_sites)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                site_a, site_b = host_sites[a], host_sites[b]
                if site_a == site_b:
                    continue
                self.network.connect(
                    a, b, LinkSpec(delay_s=self._delay_between(site_a, site_b))
                )
        # Local Switchboards are bus clients at their sites.
        self.local_clients: dict[str, str] = {}
        for site in gs.locals:
            client = f"lsb.{site}"
            bus.attach(client, site)
            self.local_clients[site] = client
        # The GS also speaks on the bus (publishing routes).
        bus.attach("gsb.pub", gs_site)

        self._pending: dict[str, _PendingInstall] = {}
        self.network.host(self.gs_host).on_receive(self._gs_receive)
        self.network.host(self.edge_host).on_receive(self._edge_receive)
        for vnf_name, host in self.vnf_hosts.items():
            self.network.host(host).on_receive(
                self._make_vnf_receiver(vnf_name)
            )

    def _delay_between(self, site_a: str, site_b: str) -> float:
        """One-way control-RPC delay between two sites.

        Uses the explicit ``wan_delay_s`` if given; otherwise reads the
        bus network's gateway->proxy link for the pair (the same WAN the
        pub/sub traffic crosses); falls back to 20 ms.
        """
        if isinstance(self._wan_delay, (int, float)):
            return float(self._wan_delay)
        if isinstance(self._wan_delay, dict):
            if (site_a, site_b) in self._wan_delay:
                return self._wan_delay[(site_a, site_b)]
            if (site_b, site_a) in self._wan_delay:
                return self._wan_delay[(site_b, site_a)]
        from repro.bus.bus import gateway_name, proxy_name

        link = self.network._links.get(
            (gateway_name(site_a), proxy_name(site_b))
        )
        if link is not None:
            return link.spec.delay_s
        return 0.020

    # -- tracing helpers -------------------------------------------------

    def _start_stage(self, pending: "_PendingInstall", stage: str) -> None:
        if self.metrics is None:
            return
        pending.spans[stage] = self.metrics.start_span(
            stage, chain=pending.spec.name
        )

    def _finish_stage(self, pending: "_PendingInstall", stage: str) -> None:
        if self.metrics is None:
            return
        span = pending.spans.pop(stage, None)
        if span is not None:
            span.finish()

    def _finish_open_stages(self, pending: "_PendingInstall") -> None:
        for stage in list(pending.spans):
            self._finish_stage(pending, stage)

    # -- public API ------------------------------------------------------

    def install(
        self,
        spec: ChainSpecification,
        on_complete: Callable[[InstallationTimeline], None] | None = None,
    ) -> InstallationTimeline:
        """Start an installation; returns its (live) timeline object.

        Run the simulator (``installer.network.run()``) to drive it to
        completion; the timeline fills in as milestones pass.
        """
        timeline = InstallationTimeline(requested_at=self.sim.now)
        pending = _PendingInstall(spec, timeline, on_complete)
        self._pending[spec.name] = pending
        self._start_stage(pending, "install.total")
        self._start_stage(pending, "install.resolve")
        # Arrow 0: the portal's request reaches Global Switchboard.
        self.sim.schedule(
            0.0,
            self.network.send,
            "gsb.pub",
            self.gs_host,
            {"type": "chain_request", "chain": spec.name},
        )
        return timeline

    # -- Global Switchboard host -------------------------------------------

    def _gs_receive(self, sender: str, message: dict) -> None:
        handler = {
            "chain_request": self._on_chain_request,
            "sites_resolved": self._on_sites_resolved,
            "prepare_ack": self._on_prepare_ack,
            "commit_ack": self._on_commit_ack,
        }.get(message.get("type"))
        if handler is not None:
            handler(message)

    def _on_chain_request(self, message: dict) -> None:
        pending = self._pending[message["chain"]]
        # Arrow 1: resolve ingress/egress sites with the edge controller.
        self.sim.schedule(
            self.delays.controller_processing_s,
            self.network.send,
            self.gs_host,
            self.edge_host,
            {
                "type": "resolve_sites",
                "chain": pending.spec.name,
                "ingress": pending.spec.ingress_attachment,
                "egress": pending.spec.egress_attachment,
            },
        )

    def _edge_receive(self, sender: str, message: dict) -> None:
        if message.get("type") == "resolve_sites":
            pending = self._pending[message["chain"]]
            edge = self.gs.edge_controllers[pending.spec.edge_service]
            reply = {
                "type": "sites_resolved",
                "chain": message["chain"],
                "ingress_site": edge.resolve_site(message["ingress"]),
                "egress_site": edge.resolve_site(message["egress"]),
            }
            self.sim.schedule(
                self.delays.controller_processing_s,
                self.network.send,
                self.edge_host,
                self.gs_host,
                reply,
            )
        elif message.get("type") == "configure_edge":
            pending = self._pending[message["chain"]]
            installation = pending.timeline.installation
            edge = self.gs.edge_controllers[pending.spec.edge_service]
            self.gs._configure_edges(installation, edge)

    def _on_sites_resolved(self, message: dict) -> None:
        pending = self._pending[message["chain"]]
        pending.timeline.sites_resolved_at = self.sim.now
        self._finish_stage(pending, "install.resolve")
        self._start_stage(pending, "install.route_compute")
        pending.ingress_site = message["ingress_site"]
        pending.egress_site = message["egress_site"]

        # Arrow 2: route computation (charged compute time), then 2PC.
        def compute() -> None:
            spec = pending.spec
            chain = Chain(
                spec.name,
                self.gs.model.endpoint_node(pending.ingress_site),
                self.gs.model.endpoint_node(pending.egress_site),
                spec.vnf_services,
                spec.forward_demand,
                spec.reverse_demand,
            )
            try:
                self.gs.model.add_chain(chain)
            except Exception as exc:
                self._fail(pending, str(exc))
                return
            self._recompute_route(pending)

        self.sim.schedule(self.delays.route_compute_s, compute)

    def _recompute_route(self, pending: "_PendingInstall") -> None:
        """Route (or re-route after a rejection) and start the 2PC."""
        spec = pending.spec
        try:
            routed = self.gs.router.route(spec.name)
            if routed <= _EPS:
                raise InstallationError(
                    f"no feasible route for chain {spec.name!r}"
                )
        except Exception as exc:
            self.gs.model.remove_chain(spec.name)
            self._fail(pending, str(exc))
            return
        self._finish_stage(pending, "install.route_compute")
        pending.loads = self.gs._chain_loads(spec.name)
        pending.awaiting_prepare = set(pending.loads)
        if not pending.awaiting_prepare:
            self._publish_route(pending)
            return
        self._start_stage(pending, "2pc.prepare")
        for (vnf_name, site), load in pending.loads.items():
            self.sim.schedule(
                0.0,
                self.network.send,
                self.gs_host,
                self.vnf_hosts[vnf_name],
                {
                    "type": "prepare",
                    "chain": spec.name,
                    "vnf": vnf_name,
                    "site": site,
                    "load": load,
                },
            )

    def _make_vnf_receiver(self, vnf_name: str):
        def receive(sender: str, message: dict) -> None:
            kind = message.get("type")
            service = self.gs.vnf_services[vnf_name]
            if kind == "prepare":
                ok = service.prepare(
                    message["chain"], message["site"], message["load"]
                )
                self.sim.schedule(
                    self.delays.controller_processing_s,
                    self.network.send,
                    self.vnf_hosts[vnf_name],
                    self.gs_host,
                    {**message, "type": "prepare_ack", "ok": ok},
                )
            elif kind == "commit":
                service.commit(message["chain"], message["site"])
                self.sim.schedule(
                    self.delays.controller_processing_s,
                    self.network.send,
                    self.vnf_hosts[vnf_name],
                    self.gs_host,
                    {**message, "type": "commit_ack"},
                )
            elif kind == "abort":
                service.abort(message["chain"], message["site"])
            elif kind == "allocate":
                # Arrow 4: allocate instances and publish them on the bus.
                def publish() -> None:
                    pending = self._pending[message["chain"]]
                    self._publish_instances(pending, vnf_name, message["site"])

                self.sim.schedule(self.delays.instance_allocation_s, publish)

        return receive

    def _on_prepare_ack(self, message: dict) -> None:
        pending = self._pending[message["chain"]]
        key = (message["vnf"], message["site"])
        if not message["ok"]:
            self._finish_stage(pending, "2pc.prepare")
            if self.metrics is not None:
                self.metrics.counter(
                    "2pc.rejections", chain=pending.spec.name
                ).inc()
            # Rejection: abort the other reservations, reconcile the
            # rejecting VNF's reported capacity, roll the route back, and
            # recompute -- the Section 3 step-2 retry, as in the
            # synchronous path.
            for vnf_name, site in pending.awaiting_prepare - {key}:
                self.network.send(
                    self.gs_host,
                    self.vnf_hosts[vnf_name],
                    {"type": "abort", "chain": pending.spec.name,
                     "vnf": vnf_name, "site": site},
                )
            self.gs.router.rollback(pending.spec.name)
            pending.commit_attempts += 1
            if pending.commit_attempts >= GlobalSwitchboard.MAX_COMMIT_ATTEMPTS:
                self.gs.model.remove_chain(pending.spec.name)
                self._fail(pending, f"2PC rejected by {key}")
                return
            vnf_name, site = key
            service = self.gs.vnf_services[vnf_name]
            self.gs.router.sync_vnf_capacity(
                vnf_name, site, service.available(site)
            )
            self._start_stage(pending, "install.route_compute")
            self.sim.schedule(
                self.delays.route_compute_s, self._recompute_route, pending
            )
            return
        pending.awaiting_prepare.discard(key)
        if not pending.awaiting_prepare:
            self._finish_stage(pending, "2pc.prepare")
            self._start_stage(pending, "2pc.commit")
            pending.awaiting_commit = set(pending.loads)
            for vnf_name, site in pending.loads:
                self.network.send(
                    self.gs_host,
                    self.vnf_hosts[vnf_name],
                    {"type": "commit", "chain": pending.spec.name,
                     "vnf": vnf_name, "site": site},
                )

    def _on_commit_ack(self, message: dict) -> None:
        pending = self._pending[message["chain"]]
        pending.awaiting_commit.discard((message["vnf"], message["site"]))
        if not pending.awaiting_commit:
            pending.timeline.route_committed_at = self.sim.now
            self._finish_stage(pending, "2pc.commit")
            self._publish_route(pending)

    # -- arrows 3-5: bus publications and rule installation ------------------

    def _route_sites(self, pending: "_PendingInstall") -> set[str]:
        """Every site that must install rules for the chain."""
        chain = self.gs.model.chains[pending.spec.name]
        sites = {pending.ingress_site}
        for z in range(1, chain.num_stages):
            for (_src, dst), frac in self.gs.router.solution.stage_flows(
                pending.spec.name, z
            ).items():
                if frac > _EPS:
                    sites.add(dst)
        return sites

    def _publish_route(self, pending: "_PendingInstall") -> None:
        spec = pending.spec
        label = self.gs.labels.allocate(spec.name)
        installation = ChainInstallation(
            spec, label, pending.ingress_site, pending.egress_site,
            self.gs.router.solution.routed_fraction(spec.name),
            pending.loads,
        )
        self.gs.installations[spec.name] = installation
        pending.timeline.installation = installation
        pending.timeline.route_published_at = self.sim.now
        self._start_stage(pending, "install.configure")
        # The edge controller configures classifiers (arrow 4, edge side).
        self.network.send(
            self.gs_host,
            self.edge_host,
            {"type": "configure_edge", "chain": spec.name},
        )
        # Instance allocation requests to VNF controllers on the route.
        involved: set[tuple[str, str]] = set(pending.loads)
        pending.awaiting_instances = set(involved)
        if not involved:
            self._configure_sites(pending)
            return
        for vnf_name, site in involved:
            self.network.send(
                self.gs_host,
                self.vnf_hosts[vnf_name],
                {"type": "allocate", "chain": spec.name, "site": site},
            )
        # Local Switchboards subscribe for the instance announcements
        # (the Section 6 topic layout: filters land at publisher sites).
        pending.involved_topics = {
            str(
                Topic(
                    chain=f"c{installation.label}",
                    egress=pending.egress_site,
                    vnf=vnf_name,
                    site=vnf_site,
                    kind="instances",
                )
            )
            for vnf_name, vnf_site in involved
        }
        for site in self._route_sites(pending):
            callback = self._make_local_callback(pending, site)
            for raw in pending.involved_topics:
                self.bus.subscribe(self.local_clients[site], raw, callback)

    def _publish_instances(
        self, pending: "_PendingInstall", vnf_name: str, site: str
    ) -> None:
        installation = pending.timeline.installation
        self.gs._assign_instances(installation)
        service = self.gs.vnf_services[vnf_name]
        topic = Topic(
            chain=f"c{installation.label}",
            egress=pending.egress_site,
            vnf=vnf_name,
            site=site,
            kind="instances",
        )
        # The VNF controller's local proxy fans this out to exactly the
        # subscribed sites.
        self.bus.publish(
            "gsb.pub" if site not in self.bus.sites else self._bus_client(site),
            topic,
            {
                "instances": [
                    inst.name for inst in service.instances_at(site)
                ]
            },
        )
        pending.awaiting_instances.discard((vnf_name, site))

    def _bus_client(self, site: str) -> str:
        return self.local_clients.get(site, "gsb.pub")

    def _make_local_callback(self, pending: "_PendingInstall", site: str):
        def on_instances(topic: str, _payload) -> None:
            if site in pending.timeline.site_configured_at:
                return
            seen = pending.seen_instance_info.setdefault(site, set())
            seen.add(topic)
            # Compile rules only once every involved VNF's instances are
            # known (next-hop weights need the downstream assignments).
            if seen < pending.involved_topics:
                return

            def configure() -> None:
                installation = pending.timeline.installation
                self.gs._install_rules(installation, only_site=site)
                pending.timeline.site_configured_at[site] = self.sim.now
                needed = self._route_sites(pending)
                if needed <= set(pending.timeline.site_configured_at):
                    pending.timeline.completed_at = self.sim.now
                    self._complete(pending)
                    if pending.on_complete is not None:
                        pending.on_complete(pending.timeline)

            self.sim.schedule(
                self.delays.rule_compute_s + self.delays.dataplane_config_s,
                configure,
            )

        return on_instances

    def _configure_sites(self, pending: "_PendingInstall") -> None:
        """VNF-less chain: configure the ingress site directly."""
        installation = pending.timeline.installation

        def configure() -> None:
            self.gs._install_rules(installation)
            now = self.sim.now
            pending.timeline.site_configured_at[pending.ingress_site] = now
            pending.timeline.completed_at = now
            self._complete(pending)
            if pending.on_complete is not None:
                pending.on_complete(pending.timeline)

        self.sim.schedule(
            self.delays.rule_compute_s + self.delays.dataplane_config_s,
            configure,
        )

    def _complete(self, pending: "_PendingInstall") -> None:
        self._finish_open_stages(pending)
        if self.metrics is not None:
            self.metrics.counter("install.completed").inc()

    def _fail(self, pending: "_PendingInstall", reason: str) -> None:
        pending.timeline.failed = reason
        self._finish_open_stages(pending)
        if self.metrics is not None:
            self.metrics.counter("install.failed").inc()
        if pending.on_complete is not None:
            pending.on_complete(pending.timeline)


@dataclass
class _PendingInstall:
    spec: ChainSpecification
    timeline: InstallationTimeline
    on_complete: Callable[[InstallationTimeline], None] | None
    ingress_site: str = ""
    egress_site: str = ""
    commit_attempts: int = 0
    loads: dict[tuple[str, str], float] = field(default_factory=dict)
    awaiting_prepare: set[tuple[str, str]] = field(default_factory=set)
    awaiting_commit: set[tuple[str, str]] = field(default_factory=set)
    awaiting_instances: set[tuple[str, str]] = field(default_factory=set)
    involved_topics: set[str] = field(default_factory=set)
    #: site -> topics whose instance info has arrived there.
    seen_instance_info: dict[str, set[str]] = field(default_factory=dict)
    #: stage name -> open tracing span (populated only when the
    #: installer was built with a metrics registry).
    spans: "dict[str, Span]" = field(default_factory=dict)
