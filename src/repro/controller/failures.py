"""Failure handling for sites and VNF deployments.

The paper defers failures to future work ("evaluate performance and
cost metrics in case of network and compute failures", Section 7.3);
this module implements the natural recovery flow on top of Global
Switchboard:

1. the failed site's compute disappears from the model, the VNF
   services, and the incremental router's residual state;
2. every installed chain with traffic through the site has its routing
   rolled back and recomputed on the surviving capacity (the same
   route-and-commit path used at creation, including two-phase commit);
3. data-plane rules are recompiled.  Flow-table entries at surviving
   forwarders are untouched, so connections that avoided the failed
   site keep their affinity (Section 5.3 semantics); connections through
   the failed site are the ones that must re-establish.

Link failures get the same first-class treatment via :func:`fail_link`:
the failed node pair's propagation delay becomes infinite (so the DP
cost function can never pick a route across it), every installed chain
with a stage hop over the pair is rolled back and recomputed on the
surviving topology, and :func:`restore_link` reinstates the stored
delay.  Both failure kinds return a :class:`FailureReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import CloudSite, VNF
from repro.controller.global_switchboard import GlobalSwitchboard

_EPS = 1e-9
_INF = float("inf")


class FailureError(Exception):
    """Raised on invalid failure operations."""


@dataclass
class FailureReport:
    """Outcome of a site- or link-failure recovery."""

    #: the failed target: a site name, or ``"n1<->n2"`` for a link.
    site: str
    #: ``"site"`` or ``"link"``.
    kind: str = "site"
    #: chains that had traffic through the failed site.
    affected_chains: list[str] = field(default_factory=list)
    #: chain -> carried fraction before the failure.
    carried_before: dict[str, float] = field(default_factory=dict)
    #: chain -> carried fraction after recovery.
    carried_after: dict[str, float] = field(default_factory=dict)

    @property
    def fully_recovered(self) -> list[str]:
        return [
            c
            for c in self.affected_chains
            if self.carried_after.get(c, 0.0)
            >= self.carried_before.get(c, 0.0) - _EPS
        ]

    @property
    def degraded(self) -> list[str]:
        return [
            c
            for c in self.affected_chains
            if self.carried_after.get(c, 0.0)
            < self.carried_before.get(c, 0.0) - _EPS
        ]

    def recovery_ratio(self) -> float:
        """Restored fraction of the traffic that was affected."""
        before = sum(self.carried_before.values())
        after = sum(self.carried_after.values())
        return after / before if before > 0 else 1.0


def chains_through_site(gs: GlobalSwitchboard, site: str) -> list[str]:
    """Installed chains with any stage flow into or out of a site."""
    affected = []
    for name in gs.installations:
        chain = gs.model.chains[name]
        for z in range(1, chain.num_stages + 1):
            if any(
                site in (src, dst)
                for (src, dst) in gs.router.solution.stage_flows(name, z)
            ):
                affected.append(name)
                break
    return affected


def fail_site(gs: GlobalSwitchboard, site: str) -> FailureReport:
    """Fail a cloud site and re-route every affected chain.

    The site's node keeps carrying transit traffic (the network is not
    the thing that failed); only its compute goes away.  Chains whose
    ingress or egress *node* is colocated with the site are unaffected
    as endpoints -- edges are not cloud workloads.
    """
    if site not in gs.model.sites:
        raise FailureError(f"unknown site {site!r}")

    report = FailureReport(site)
    report.affected_chains = chains_through_site(gs, site)
    for name in report.affected_chains:
        report.carried_before[name] = gs.router.solution.routed_fraction(name)

    # (1) Remove the site's compute everywhere.
    old_site = gs.model.sites[site]
    gs.model.sites[site] = CloudSite(site, old_site.node, 0.0)
    for vnf_name, vnf in list(gs.model.vnfs.items()):
        if site in vnf.site_capacity:
            caps = dict(vnf.site_capacity)
            caps[site] = 0.0
            gs.model.vnfs[vnf_name] = VNF(vnf.name, vnf.load_per_unit, caps)
            gs.router.sync_vnf_capacity(vnf_name, site, 0.0)
    for service in gs.vnf_services.values():
        if site in service.site_capacity:
            service.site_capacity[site] = 0.0

    # (2) Roll back and recompute each affected chain.
    _reroute_affected(gs, report)
    return report


def _reroute_affected(gs: GlobalSwitchboard, report: FailureReport) -> None:
    """Roll back and recompute every chain in ``report.affected_chains``
    on whatever capacity and topology survive, filling in
    ``carried_after`` (shared by site- and link-failure recovery)."""
    for name in report.affected_chains:
        installation = gs.installations[name]
        # Release the chain's committed capacity at every site (a full
        # re-route may choose entirely different sites).  The service's
        # per-chain ledger is authoritative for the amount, so no load
        # argument: a coordinator-side record that drifted (e.g. across
        # a failover restore) cannot over- or under-release.
        for vnf_name, committed_site in list(installation.committed_load):
            gs.vnf_services[vnf_name].release(name, committed_site)
        installation.committed_load = {}
        gs.router.rollback(name)
        try:
            routed, committed = gs._route_and_commit(name)
        except Exception:
            routed, committed = 0.0, {}
        installation.routed_fraction = routed
        installation.committed_load = committed
        report.carried_after[name] = routed
        if routed > _EPS:
            gs._assign_instances(installation)
            gs._install_rules(installation)
        else:
            for local in gs.locals.values():
                local.remove_chain_rules(
                    installation.label, installation.egress_site
                )


def restore_site(
    gs: GlobalSwitchboard,
    site: str,
    site_capacity: float,
    vnf_capacity: dict[str, float],
) -> None:
    """Bring a failed site back with the given capacities.

    Installed chains are *not* automatically re-balanced onto it -- the
    operator (or a periodic re-optimization, see
    :mod:`repro.controller.reoptimize`) calls ``extend_chain`` for the
    chains that should use the restored capacity, mirroring the paper's
    new-flows-only route change semantics.
    """
    if site not in gs.model.sites:
        raise FailureError(f"unknown site {site!r}")
    node = gs.model.sites[site].node
    gs.model.sites[site] = CloudSite(site, node, site_capacity)
    for vnf_name, capacity in vnf_capacity.items():
        vnf = gs.model.vnfs[vnf_name]
        caps = dict(vnf.site_capacity)
        caps[site] = capacity
        gs.model.vnfs[vnf_name] = VNF(vnf.name, vnf.load_per_unit, caps)
        service = gs.vnf_services.get(vnf_name)
        if service is not None:
            service.site_capacity[site] = capacity
            service._committed.setdefault(site, 0.0)


# ---------------------------------------------------------------------------
# Link failures (first-class, symmetric to site failures)
# ---------------------------------------------------------------------------


def _link_nodes(gs: GlobalSwitchboard, a: str, b: str) -> tuple[str, str]:
    """Resolve two endpoints (site or node names) to an existing
    backbone node pair."""
    n1 = gs.model.endpoint_node(a)
    n2 = gs.model.endpoint_node(b)
    if n1 == n2:
        raise FailureError(f"{a!r} and {b!r} are the same node")
    try:
        gs.model.latency(n1, n2)
    except Exception:
        raise FailureError(f"no link {a!r} <-> {b!r}") from None
    return n1, n2


def chains_through_link(gs: GlobalSwitchboard, a: str, b: str) -> list[str]:
    """Installed chains with any stage hop crossing the node pair
    ``a <-> b`` (in either direction)."""
    n1, n2 = _link_nodes(gs, a, b)
    pair = {n1, n2}
    affected = []
    for name in gs.installations:
        chain = gs.model.chains[name]
        for z in range(1, chain.num_stages + 1):
            if any(
                {
                    gs.model.endpoint_node(src),
                    gs.model.endpoint_node(dst),
                } == pair
                for (src, dst) in gs.router.solution.stage_flows(name, z)
            ):
                affected.append(name)
                break
    return affected


def fail_link(gs: GlobalSwitchboard, a: str, b: str) -> FailureReport:
    """Fail the backbone link between two nodes (or sites) and re-route
    every chain with a stage hop across it.

    The pair's one-way delay becomes infinite in both directions, which
    makes every route over it cost-infeasible for the DP (and keeps the
    model consistent: the nodes still exist, traffic just cannot cross).
    The previous delay entries are stashed on the controller so
    :func:`restore_link` can reinstate them.
    """
    n1, n2 = _link_nodes(gs, a, b)
    stash: dict[tuple[str, str], float | None] | None = getattr(
        gs, "_failed_links", None
    )
    if stash is None:
        stash = {}
        gs._failed_links = stash
    for key in ((n1, n2), (n2, n1)):
        if key not in stash:  # idempotent re-fail keeps the original
            stash[key] = gs.model._latency.get(key)
        gs.model._latency[key] = _INF
    # The in-place latency edit bypasses the model's cache maintenance:
    # columnar views and digests must not keep serving pre-failure
    # delays (the LP matrix cache keys on the digest).
    gs.model.invalidate_substrate()

    report = FailureReport(f"{n1}<->{n2}", kind="link")
    report.affected_chains = chains_through_link(gs, n1, n2)
    for name in report.affected_chains:
        report.carried_before[name] = gs.router.solution.routed_fraction(name)
    _reroute_affected(gs, report)
    return report


def restore_link(gs: GlobalSwitchboard, a: str, b: str) -> None:
    """Reinstate a failed link's stored delay.

    As with :func:`restore_site`, installed chains are not re-balanced
    automatically -- call ``extend_chain`` (or run a re-optimization
    round) for the chains that should use the restored shortcut.
    """
    n1, n2 = _link_nodes(gs, a, b)
    stash: dict[tuple[str, str], float | None] = getattr(
        gs, "_failed_links", {}
    )
    restored = False
    for key in ((n1, n2), (n2, n1)):
        if key in stash:
            previous = stash.pop(key)
            if previous is None:
                gs.model._latency.pop(key, None)
            else:
                gs.model._latency[key] = previous
            restored = True
    if not restored:
        raise FailureError(f"link {a!r} <-> {b!r} is not failed")
    gs.model.invalidate_substrate()
