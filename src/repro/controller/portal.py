"""The customer portal (Section 2).

The paper's portal shows "the list of network functions available in
Switchboard, which we envision evolving into an appstore-like
marketplace", lets a customer define a chain (ingress, egress, ordered
VNFs, traffic slice), activates it ("automated route computation and
installation.  Upon completion, a status message is displayed"), and
supports instant VNF insertion into an existing chain.

This module is that surface as a library facade over Global Switchboard:
catalog listing, chain validation + activation, human-readable status,
and deactivation.  VNF insertion reuses the Section 5.3 semantics --
the updated chain applies to new connections only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controller.chainspec import ChainSpecification
from repro.controller.global_switchboard import (
    GlobalSwitchboard,
    InstallationError,
)


class PortalError(Exception):
    """Raised on invalid portal requests."""


@dataclass(frozen=True)
class CatalogEntry:
    """One VNF in the marketplace listing."""

    name: str
    sites: tuple[str, ...]
    total_capacity: float
    description: str = ""


@dataclass
class ChainStatus:
    """What the portal displays for one customer chain."""

    name: str
    state: str  # "active" | "degraded" | "inactive"
    ingress_site: str | None = None
    egress_site: str | None = None
    vnfs: tuple[str, ...] = ()
    carried_fraction: float = 0.0
    message: str = ""


@dataclass
class Portal:
    """The customer-facing facade over one Switchboard deployment."""

    gs: GlobalSwitchboard
    descriptions: dict[str, str] = field(default_factory=dict)

    # -- marketplace ------------------------------------------------------

    def catalog(self) -> list[CatalogEntry]:
        """The available network functions, appstore-style."""
        entries = []
        for name, service in sorted(self.gs.vnf_services.items()):
            entries.append(
                CatalogEntry(
                    name,
                    tuple(service.sites),
                    sum(service.site_capacity.values()),
                    self.descriptions.get(name, ""),
                )
            )
        return entries

    def describe_vnf(self, name: str, description: str) -> None:
        if name not in self.gs.vnf_services:
            raise PortalError(f"unknown VNF {name!r}")
        self.descriptions[name] = description

    # -- chain lifecycle -----------------------------------------------------

    def activate(self, spec: ChainSpecification) -> ChainStatus:
        """Validate and install a chain; returns its status message."""
        self._validate(spec)
        try:
            self.gs.create_chain(spec)
        except InstallationError as exc:
            return ChainStatus(
                spec.name,
                "inactive",
                vnfs=spec.vnf_services,
                message=f"activation failed: {exc}",
            )
        return self.status(spec.name)

    def insert_vnf(
        self, chain_name: str, vnf_name: str, position: int
    ) -> ChainStatus:
        """Insert a VNF into an existing chain (the Section 1 use case:
        "instantly inserting a new VNF into an existing chain").

        Implemented as re-activation with the extended VNF list; per
        Section 5.3 only new connections take the new chain.
        """
        installation = self.gs.installations.get(chain_name)
        if installation is None:
            raise PortalError(f"chain {chain_name!r} is not active")
        if vnf_name not in self.gs.vnf_services:
            raise PortalError(f"unknown VNF {vnf_name!r}")
        old = installation.spec
        vnfs = list(old.vnf_services)
        if not 0 <= position <= len(vnfs):
            raise PortalError(
                f"position {position} out of range for {len(vnfs)} VNFs"
            )
        vnfs.insert(position, vnf_name)
        new_spec = ChainSpecification(
            old.name,
            old.edge_service,
            old.ingress_attachment,
            old.egress_attachment,
            vnfs,
            forward_demand=old.forward_demand,
            reverse_demand=old.reverse_demand,
            src_prefix=old.src_prefix,
            dst_prefixes=old.dst_prefixes,
            protocol=old.protocol,
            dst_port_range=old.dst_port_range,
        )
        self._validate(new_spec)
        self.gs.remove_chain(chain_name)
        return self.activate(new_spec)

    def deactivate(self, chain_name: str) -> ChainStatus:
        if chain_name not in self.gs.installations:
            raise PortalError(f"chain {chain_name!r} is not active")
        self.gs.remove_chain(chain_name)
        return ChainStatus(chain_name, "inactive", message="deactivated")

    # -- status -----------------------------------------------------------------

    def status(self, chain_name: str) -> ChainStatus:
        installation = self.gs.installations.get(chain_name)
        if installation is None:
            return ChainStatus(chain_name, "inactive", message="not installed")
        carried = installation.routed_fraction
        if carried >= 1.0 - 1e-9:
            state, message = "active", "all traffic routed"
        elif carried > 0:
            state = "degraded"
            message = f"{carried:.0%} of traffic routed (capacity limited)"
        else:
            state, message = "inactive", "no traffic routed"
        return ChainStatus(
            chain_name,
            state,
            ingress_site=installation.ingress_site,
            egress_site=installation.egress_site,
            vnfs=installation.spec.vnf_services,
            carried_fraction=carried,
            message=message,
        )

    def list_chains(self) -> list[ChainStatus]:
        return [self.status(name) for name in sorted(self.gs.installations)]

    # -- validation ------------------------------------------------------------

    def _validate(self, spec: ChainSpecification) -> None:
        catalog = {entry.name for entry in self.catalog()}
        unknown = [v for v in spec.vnf_services if v not in catalog]
        if unknown:
            raise PortalError(
                f"VNFs not in the catalog: {unknown}; available: "
                f"{sorted(catalog)}"
            )
        if spec.edge_service not in self.gs.edge_controllers:
            raise PortalError(f"unknown edge service {spec.edge_service!r}")
        edge = self.gs.edge_controllers[spec.edge_service]
        for attachment in (spec.ingress_attachment, spec.egress_attachment):
            try:
                edge.resolve_site(attachment)
            except Exception:
                raise PortalError(
                    f"unknown attachment {attachment!r} for edge service "
                    f"{spec.edge_service!r}"
                ) from None
