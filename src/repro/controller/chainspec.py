"""Customer-facing chain specifications.

This is what the portal of Section 2 submits: ingress/egress given as
edge attachments (a customer edge router identifier, a VPN, ...) plus an
optional traffic slice (prefixes, ports, protocol), the ordered VNF
list, and a demand estimate used for the initial route computation
("customer estimates for the initial chain deployment", Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


class SpecError(Exception):
    """Raised on malformed chain specifications."""


@dataclass(frozen=True)
class ChainSpecification:
    """A customer's chain request.

    ``ingress_attachment`` / ``egress_attachment`` name attachment points
    known to the edge service (resolved to sites by the edge controller).
    ``dst_prefixes`` populate the per-customer egress routing table.
    """

    name: str
    edge_service: str
    ingress_attachment: str
    egress_attachment: str
    vnf_services: tuple[str, ...]
    forward_demand: float = 1.0
    reverse_demand: float = 0.0
    src_prefix: str | None = None
    dst_prefixes: tuple[str, ...] = field(default_factory=tuple)
    protocol: str | None = None
    dst_port_range: tuple[int, int] | None = None

    def __init__(
        self,
        name: str,
        edge_service: str,
        ingress_attachment: str,
        egress_attachment: str,
        vnf_services: Sequence[str],
        forward_demand: float = 1.0,
        reverse_demand: float = 0.0,
        src_prefix: str | None = None,
        dst_prefixes: Sequence[str] = (),
        protocol: str | None = None,
        dst_port_range: tuple[int, int] | None = None,
    ):
        if not name:
            raise SpecError("chain needs a name")
        if forward_demand < 0 or reverse_demand < 0:
            raise SpecError(f"chain {name!r}: negative demand")
        if forward_demand + reverse_demand == 0:
            raise SpecError(f"chain {name!r}: zero total demand")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "edge_service", edge_service)
        object.__setattr__(self, "ingress_attachment", ingress_attachment)
        object.__setattr__(self, "egress_attachment", egress_attachment)
        object.__setattr__(self, "vnf_services", tuple(vnf_services))
        object.__setattr__(self, "forward_demand", forward_demand)
        object.__setattr__(self, "reverse_demand", reverse_demand)
        object.__setattr__(self, "src_prefix", src_prefix)
        object.__setattr__(self, "dst_prefixes", tuple(dst_prefixes))
        object.__setattr__(self, "protocol", protocol)
        object.__setattr__(self, "dst_port_range", dst_port_range)
