"""Switchboard's control plane (Sections 3-4).

- :mod:`repro.controller.chainspec` -- the customer-facing chain
  specification (what the portal of Section 2 submits).
- :mod:`repro.controller.local_switchboard` -- the per-site controller:
  scales forwarders, maps VNF instances onto forwarders, and compiles
  wide-area routes plus instance weights into the forwarders'
  load-balancing rules.
- :mod:`repro.controller.global_switchboard` -- the centralized
  controller: resolves chain endpoints with edge controllers, computes
  wide-area routes (SB-DP incrementally, SB-LP on demand), allocates
  labels, and installs routes atomically with a two-phase commit across
  VNF controllers.
- :mod:`repro.controller.timing` -- the timed (discrete-event) model of
  the Figure 4 message flow, producing the Figure 10a route-update
  latency and the Table 2 edge-addition breakdown.
"""

from repro.controller.audit import audit_chain, audit_deployment
from repro.controller.chainspec import ChainSpecification
from repro.controller.failures import (
    FailureReport,
    fail_link,
    fail_site,
    restore_link,
    restore_site,
)
from repro.controller.global_switchboard import (
    ChainInstallation,
    GlobalSwitchboard,
    InstallationError,
)
from repro.controller.local_switchboard import LocalSwitchboard
from repro.controller.portal import CatalogEntry, ChainStatus, Portal
from repro.controller.protocol import (
    BusDrivenInstaller,
    InstallationTimeline,
    ProtocolDelays,
)
from repro.controller.reoptimize import ReoptimizationReport, reoptimize
from repro.controller.replication import (
    ReplicatedStore,
    checkpoint_installation,
    restore_installations,
)
from repro.controller.timing import (
    ControlPlaneLatencies,
    Milestone,
    simulate_chain_route_update,
    simulate_edge_site_addition,
)

__all__ = [
    "BusDrivenInstaller",
    "CatalogEntry",
    "ChainStatus",
    "Portal",
    "audit_chain",
    "audit_deployment",
    "ChainInstallation",
    "ChainSpecification",
    "ControlPlaneLatencies",
    "InstallationTimeline",
    "ProtocolDelays",
    "FailureReport",
    "GlobalSwitchboard",
    "InstallationError",
    "LocalSwitchboard",
    "Milestone",
    "ReoptimizationReport",
    "ReplicatedStore",
    "checkpoint_installation",
    "fail_link",
    "fail_site",
    "restore_link",
    "reoptimize",
    "restore_installations",
    "restore_site",
    "simulate_chain_route_update",
    "simulate_edge_site_addition",
]
