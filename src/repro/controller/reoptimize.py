"""Periodic re-optimization under time-varying demand.

Implements the routing side of the paper's future-work item on
time-varying traffic matrices: given fresh per-chain demand estimates
(from forwarder measurements, or from the diurnal model in
:mod:`repro.topology.timeseries`), update the installed chains and
recompute routes where the demand moved materially.

Semantics follow Section 5.3: recomputation only changes where *new*
connections go; existing flow-table entries at the forwarders are never
touched.

When the Global Switchboard has a ``solver`` strategy attached (see
``GlobalSwitchboard(solver=...)`` and :mod:`repro.scale`), each round
also produces an advisory whole-network TE plan via the solver's
incremental ``resolve`` path -- with a ``SolverFarm`` only the
partitions containing changed chains are re-solved, the rest come from
the solution cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.controller.global_switchboard import GlobalSwitchboard

_EPS = 1e-9


@dataclass
class ReoptimizationReport:
    """Outcome of one re-optimization round."""

    rerouted: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    #: Chains that disappeared mid-round (torn down while this round was
    #: releasing/re-routing) and were therefore left alone.
    vanished: list[str] = field(default_factory=list)
    carried_before: float = 0.0
    carried_after: float = 0.0
    offered_after: float = 0.0
    #: Advisory whole-network TE plan from the attached solver strategy
    #: (``LpResult`` / ``FarmResult`` shaped), or ``None`` when the
    #: Global Switchboard has no solver or nothing changed.
    plan: Any = None

    @property
    def carried_share(self) -> float:
        return (
            self.carried_after / self.offered_after
            if self.offered_after > 0
            else 1.0
        )


def reoptimize(
    gs: GlobalSwitchboard,
    demand_factors: dict[str, float],
    threshold: float = 0.05,
) -> ReoptimizationReport:
    """Apply new demand factors and re-route chains that changed.

    ``demand_factors`` maps chain name -> multiplier relative to the
    chain's demand *as installed*.  Chains whose factor moved less than
    ``threshold`` from 1.0 keep their current routes (route churn is the
    thing the threshold suppresses); the rest are rolled back and routed
    afresh against the residual capacity, largest demand first so the
    heavy hitters get first pick, then committed through the usual
    two-phase protocol.

    The installation set is snapshotted once at entry.  Re-routing runs
    controller callbacks (2PC, rule installs) that can remove *other*
    chains from ``gs.installations`` mid-round -- an operator tearing a
    chain down between bus messages, or an admission policy evicting on
    rejection -- so every later step re-checks membership against the
    live dict instead of indexing it blindly; chains that vanished are
    reported in :attr:`ReoptimizationReport.vanished`.
    """
    report = ReoptimizationReport()
    # Snapshot: keys and per-chain demand as of round start.  The live
    # dict and model mutate underneath the loops below.
    installed = list(gs.installations)
    demand_at_start = {
        name: gs.model.chains[name].stage_traffic(1) for name in installed
    }
    for name in installed:
        report.carried_before += (
            gs.router.solution.routed_fraction(name) * demand_at_start[name]
        )

    changed: list[str] = []
    for name, factor in demand_factors.items():
        if name not in gs.installations:
            raise KeyError(f"chain {name!r} is not installed")
        if factor < 0:
            raise ValueError(f"negative demand factor for {name!r}")
        if abs(factor - 1.0) <= threshold:
            report.skipped.append(name)
            continue
        changed.append(name)

    # Release every changed chain first so the recomputation sees the
    # full freed capacity, then re-route in descending demand order.
    for name in changed:
        installation = gs.installations.get(name)
        if installation is None:
            continue
        for (vnf_name, site), load in list(installation.committed_load.items()):
            gs.vnf_services[vnf_name].release(name, site, load)
        installation.committed_load = {}
        gs.router.rollback(name)
        old_chain = gs.model.chains[name]
        gs.model.remove_chain(name)
        gs.model.add_chain(old_chain.scaled(demand_factors[name]))

    if changed and gs.solver is not None:
        # Incremental TE plan against the re-scaled demands: a
        # SolverFarm re-solves only the partitions whose chains moved.
        report.plan = gs.solver.resolve(
            gs.model, [n for n in changed if n in gs.model.chains]
        )

    changed.sort(
        key=lambda n: (
            gs.model.chains[n].stage_traffic(1)
            if n in gs.model.chains
            else 0.0
        ),
        reverse=True,
    )
    for name in changed:
        installation = gs.installations.get(name)
        if installation is None or name not in gs.model.chains:
            report.vanished.append(name)
            continue
        try:
            routed, committed = gs._route_and_commit(name)
        except Exception:
            routed, committed = 0.0, {}
        installation.routed_fraction = routed
        installation.committed_load = committed
        if routed > _EPS:
            gs._assign_instances(installation)
            gs._install_rules(installation)
        report.rerouted.append(name)

    for name in list(gs.installations):
        if name not in gs.model.chains:
            continue
        demand = gs.model.chains[name].stage_traffic(1)
        report.offered_after += demand
        report.carried_after += (
            gs.router.solution.routed_fraction(name) * demand
        )
    return report
