"""Periodic re-optimization under time-varying demand.

Implements the routing side of the paper's future-work item on
time-varying traffic matrices: given fresh per-chain demand estimates
(from forwarder measurements, or from the diurnal model in
:mod:`repro.topology.timeseries`), update the installed chains and
recompute routes where the demand moved materially.

Semantics follow Section 5.3: recomputation only changes where *new*
connections go; existing flow-table entries at the forwarders are never
touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controller.global_switchboard import GlobalSwitchboard

_EPS = 1e-9


@dataclass
class ReoptimizationReport:
    """Outcome of one re-optimization round."""

    rerouted: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    carried_before: float = 0.0
    carried_after: float = 0.0
    offered_after: float = 0.0

    @property
    def carried_share(self) -> float:
        return (
            self.carried_after / self.offered_after
            if self.offered_after > 0
            else 1.0
        )


def reoptimize(
    gs: GlobalSwitchboard,
    demand_factors: dict[str, float],
    threshold: float = 0.05,
) -> ReoptimizationReport:
    """Apply new demand factors and re-route chains that changed.

    ``demand_factors`` maps chain name -> multiplier relative to the
    chain's demand *as installed*.  Chains whose factor moved less than
    ``threshold`` from 1.0 keep their current routes (route churn is the
    thing the threshold suppresses); the rest are rolled back and routed
    afresh against the residual capacity, largest demand first so the
    heavy hitters get first pick, then committed through the usual
    two-phase protocol.
    """
    report = ReoptimizationReport()
    for name in gs.installations:
        report.carried_before += (
            gs.router.solution.routed_fraction(name)
            * gs.model.chains[name].stage_traffic(1)
        )

    changed: list[str] = []
    for name, factor in demand_factors.items():
        if name not in gs.installations:
            raise KeyError(f"chain {name!r} is not installed")
        if factor < 0:
            raise ValueError(f"negative demand factor for {name!r}")
        if abs(factor - 1.0) <= threshold:
            report.skipped.append(name)
            continue
        changed.append(name)

    # Release every changed chain first so the recomputation sees the
    # full freed capacity, then re-route in descending demand order.
    for name in changed:
        installation = gs.installations[name]
        for (vnf_name, site), load in list(installation.committed_load.items()):
            gs.vnf_services[vnf_name].release(name, site, load)
        installation.committed_load = {}
        gs.router.rollback(name)
        old_chain = gs.model.chains[name]
        gs.model.remove_chain(name)
        gs.model.add_chain(old_chain.scaled(demand_factors[name]))

    changed.sort(
        key=lambda n: gs.model.chains[n].stage_traffic(1), reverse=True
    )
    for name in changed:
        installation = gs.installations[name]
        try:
            routed, committed = gs._route_and_commit(name)
        except Exception:
            routed, committed = 0.0, {}
        installation.routed_fraction = routed
        installation.committed_load = committed
        if routed > _EPS:
            gs._assign_instances(installation)
            gs._install_rules(installation)
        report.rerouted.append(name)

    for name in gs.installations:
        demand = gs.model.chains[name].stage_traffic(1)
        report.offered_after += demand
        report.carried_after += (
            gs.router.solution.routed_fraction(name) * demand
        )
    return report
