"""Data-plane auditor: does the installed state match the TE intent?

An operations tool the paper's architecture invites: Global Switchboard
knows the routing it *intended* (the ``x`` fractions); the forwarders
hold the rules that were actually *installed*.  The auditor walks every
installed chain and checks:

- the ingress edge forwarder's next-hop weights realize the stage-1
  site split (within tolerance);
- every (position, site) on the route has at least one forwarder rule
  with reachable local instances;
- rule targets exist (no dangling forwarder or endpoint names);
- no forwarder carries rules for chains that are no longer installed
  (stale-rule leak detection).

Returns human-readable findings, empty when the planes agree.
"""

from __future__ import annotations

from collections import defaultdict

from repro.controller.global_switchboard import GlobalSwitchboard

_EPS = 1e-9


def audit_deployment(gs: GlobalSwitchboard, tolerance: float = 0.02) -> list[str]:
    """Audit every installed chain; returns findings (empty == clean)."""
    findings: list[str] = []
    for name in gs.installations:
        findings.extend(audit_chain(gs, name, tolerance))
    findings.extend(_find_stale_rules(gs))
    return findings


def audit_chain(
    gs: GlobalSwitchboard, chain_name: str, tolerance: float = 0.02
) -> list[str]:
    """Audit one installed chain against the routing solution."""
    findings: list[str] = []
    installation = gs.installations.get(chain_name)
    if installation is None:
        return [f"chain {chain_name!r} is not installed"]
    chain = gs.model.chains[chain_name]
    label = installation.label
    key = (label, installation.egress_site)
    solution = gs.router.solution

    # 1. Ingress split: edge forwarder weights vs stage-1 fractions.
    ingress_local = gs.local_switchboard(installation.ingress_site)
    edge_fwd = ingress_local.edge_forwarder()
    rule = edge_fwd.rules.get(key)
    if rule is None:
        findings.append(
            f"{chain_name}: no ingress rule at {edge_fwd.name}"
        )
    else:
        intended: dict[str, float] = defaultdict(float)
        for (_src, dst), frac in solution.stage_flows(chain_name, 1).items():
            if chain.vnfs:
                site = dst
            else:
                site = installation.egress_site
            intended[site] += frac
        total_intended = sum(intended.values()) or 1.0
        installed: dict[str, float] = defaultdict(float)
        for target in rule.next_forwarders.targets:
            weight = rule.next_forwarders.weight(target)
            site = _site_of_target(gs, target)
            if site is None:
                findings.append(
                    f"{chain_name}: ingress rule targets unknown element "
                    f"{target!r}"
                )
                continue
            installed[site] += weight
        total_installed = sum(installed.values()) or 1.0
        for site, frac in intended.items():
            want = frac / total_intended
            got = installed.get(site, 0.0) / total_installed
            if abs(want - got) > tolerance:
                findings.append(
                    f"{chain_name}: ingress split to {site} is {got:.3f}, "
                    f"TE intends {want:.3f}"
                )

    # 2. Every VNF position/site on the route has a serving rule.
    for z in range(1, chain.num_stages):
        vnf_name = chain.vnf_at(z)
        sites = {
            dst
            for (_src, dst), frac in solution.stage_flows(chain_name, z).items()
            if frac > _EPS
        }
        for site in sites:
            local = gs.local_switchboard(site)
            serving = [
                fwd
                for fwd in local.forwarders_for_service(vnf_name)
                if key in fwd.rules
            ]
            if not serving:
                findings.append(
                    f"{chain_name}: no rule for VNF {vnf_name!r} at {site}"
                )
                continue
            for fwd in serving:
                fwd_rule = fwd.rules[key]
                missing = [
                    target
                    for target in fwd_rule.local_instances.targets
                    if target not in fwd.attached
                ]
                if missing:
                    findings.append(
                        f"{chain_name}: rule at {fwd.name} references "
                        f"detached instances {missing}"
                    )
                for target in fwd_rule.next_forwarders.targets:
                    if _site_of_target(gs, target) is None:
                        findings.append(
                            f"{chain_name}: rule at {fwd.name} targets "
                            f"unknown element {target!r}"
                        )
    return findings


def _site_of_target(gs: GlobalSwitchboard, target: str) -> str | None:
    fwd = gs.dataplane.forwarders.get(target)
    if fwd is not None:
        return fwd.site
    endpoint = gs.dataplane.endpoints.get(target)
    if endpoint is not None:
        return getattr(endpoint, "site", "<endpoint>")
    return None


def _find_stale_rules(gs: GlobalSwitchboard) -> list[str]:
    """Rules whose chain label is no longer installed."""
    live_labels = {inst.label for inst in gs.installations.values()}
    findings = []
    for fwd in gs.dataplane.forwarders.values():
        for (label, egress) in fwd.rules:
            if label not in live_labels:
                findings.append(
                    f"stale rule (label {label}, egress {egress}) at "
                    f"{fwd.name}"
                )
    return findings
