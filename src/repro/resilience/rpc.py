"""At-least-once delivery for control-plane messages.

The simulated network drops messages (loss windows, link failures,
crashed hosts, partitions -- see :mod:`repro.chaos`), and the bus-driven
installer's correctness used to assume none of that ever happened to a
control RPC.  This module supplies the standard fix, below the
application protocol:

- every message carries a **monotonically increasing id** (one counter
  per :class:`RpcLayer`, so ids are unique across all endpoints);
- the sender keeps a per-message **retransmit timer**: exponential
  backoff with seeded jitter, up to ``max_retries`` attempts, then a
  give-up callback so the coordinator can abort instead of hanging;
- the receiver **acks every message id** and keeps a bounded **dedup
  window**: a re-delivered id is re-acked (the first ack may have been
  the thing that was lost) but *not* re-dispatched to the handler.

The result is at-least-once delivery into handlers that
:mod:`repro.controller.protocol` keeps idempotent (re-delivered
prepare/commit/abort are no-ops there), which composes into effectively
exactly-once application behaviour.

Determinism: jitter comes from one ``random.Random(f"rpc-{seed}")``
consumed in event order, so a chaos soak replays byte-identically from
its seed.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, TYPE_CHECKING

from repro.simnet.network import SimNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.simnet.events import EventHandle


class RpcError(Exception):
    """Raised on invalid RPC-layer configuration or use."""


def backoff_delay(
    base_s: float,
    backoff: float,
    jitter: float,
    attempt: int,
    rng: random.Random,
) -> float:
    """The one exponential-backoff-with-jitter formula of the stack.

    ``base_s * backoff**attempt`` scaled by ``1 + jitter * U[0, 1)``.
    Both the RPC retransmit timer and the federation coordinator's
    install retries go through here, so every retry loop in the system
    de-synchronizes the same way and replays byte-identically from its
    seed (the caller owns the rng and its consumption order).
    """
    delay = base_s * (backoff ** attempt)
    return delay * (1.0 + jitter * rng.random())


class BackoffPolicy:
    """A seeded retry-pacing policy around :func:`backoff_delay`.

    Owns its own ``random.Random(f"{name}-{seed}")`` so independent
    retry loops (install retries, queue re-drives) draw from disjoint
    deterministic streams and never perturb the RPC layer's jitter.
    """

    def __init__(
        self,
        base_s: float = 0.25,
        backoff: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
        name: str = "backoff",
    ):
        if base_s <= 0:
            raise RpcError(f"non-positive backoff base {base_s}")
        if backoff < 1.0:
            raise RpcError(f"backoff must be >= 1, got {backoff}")
        if jitter < 0:
            raise RpcError(f"negative jitter {jitter}")
        self.base_s = base_s
        self.backoff = backoff
        self.jitter = jitter
        self._rng = random.Random(f"{name}-{seed}")

    def delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        return backoff_delay(
            self.base_s, self.backoff, self.jitter, attempt, self._rng
        )


@dataclass(frozen=True)
class RpcConfig:
    """Retry/timeout knobs of the reliable control channel.

    The defaults fit the deployment geography: one-way control delays
    are 20-40 ms, so a 250 ms first timeout catches a loss quickly
    without firing on a healthy round trip, and six retries with 2x
    backoff push the give-up horizon past any transient loss window or
    link flap the chaos scenarios schedule.
    """

    timeout_s: float = 0.25
    max_retries: int = 6
    backoff: float = 2.0
    #: Uniform multiplicative jitter: each timeout is scaled by
    #: ``1 + jitter * U[0, 1)`` so retransmits from different senders
    #: de-synchronize.
    jitter: float = 0.25
    #: Receiver-side window of recently seen message ids.
    dedup_window: int = 4096
    message_bytes: int = 1000
    ack_bytes: int = 100

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise RpcError(f"non-positive rpc timeout {self.timeout_s}")
        if self.max_retries < 0:
            raise RpcError(f"negative max_retries {self.max_retries}")
        if self.backoff < 1.0:
            raise RpcError(f"backoff must be >= 1, got {self.backoff}")
        if self.jitter < 0:
            raise RpcError(f"negative jitter {self.jitter}")
        if self.dedup_window < 1:
            raise RpcError("dedup window must hold at least one id")


class _PendingSend:
    """One un-acked message and its retransmit state."""

    __slots__ = ("id", "dst", "payload", "attempt", "timer", "on_failure")

    def __init__(
        self,
        msg_id: int,
        dst: str,
        payload: Any,
        on_failure: Callable[[str, Any], None] | None,
    ):
        self.id = msg_id
        self.dst = dst
        self.payload = payload
        self.attempt = 0
        self.timer: "EventHandle | None" = None
        self.on_failure = on_failure


class RpcLayer:
    """Shared state of all reliable endpoints on one network: the id
    counter, the jitter RNG, the config, and the transport counters.

    The plain integer counters mirror the optional ``obs`` metrics so
    reports (e.g. the chaos soak report) can read them without a
    registry attached.
    """

    def __init__(
        self,
        network: SimNetwork,
        config: RpcConfig | None = None,
        metrics: "MetricsRegistry | None" = None,
        seed: int = 0,
    ):
        self.network = network
        self.sim = network.sim
        self.config = config or RpcConfig()
        self.metrics = metrics
        self._rng = random.Random(f"rpc-{seed}")
        self._next_id = 0
        self.endpoints: dict[str, RpcEndpoint] = {}
        # Transport counters (always kept; metrics mirror them).
        self.sent = 0
        self.acked = 0
        self.retries = 0
        self.timeouts = 0
        self.duplicates_suppressed = 0
        if metrics is not None:
            # Pre-register at zero so quiet runs still report the series.
            for name in (
                "rpc.sent", "rpc.acked", "rpc.retries", "rpc.timeouts",
                "rpc.duplicates_suppressed",
            ):
                metrics.counter(name)

    def endpoint(
        self, host_name: str, handler: Callable[[str, Any], None]
    ) -> "RpcEndpoint":
        """Create the reliable endpoint for a host and register it as
        the host's receiver.  One endpoint per host."""
        if host_name in self.endpoints:
            raise RpcError(f"host {host_name!r} already has an endpoint")
        endpoint = RpcEndpoint(self, host_name, handler)
        self.endpoints[host_name] = endpoint
        return endpoint

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _count(self, name: str, plain: str) -> None:
        setattr(self, plain, getattr(self, plain) + 1)
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def outstanding(self) -> int:
        """Un-acked messages across all endpoints."""
        return sum(len(e._pending) for e in self.endpoints.values())


class RpcEndpoint:
    """Reliable send/receive for one host.

    Outbound: :meth:`send` transmits and arms a retransmit timer;
    acks cancel it; exhaustion invokes the per-message ``on_failure``.
    Inbound: RPC messages are acked then deduped before dispatch;
    anything that is not an RPC envelope (e.g. a legacy bare
    ``network.send``) is dispatched to the handler as-is.
    """

    def __init__(
        self,
        layer: RpcLayer,
        host_name: str,
        handler: Callable[[str, Any], None],
    ):
        self.layer = layer
        self.host_name = host_name
        self.handler = handler
        self._pending: dict[int, _PendingSend] = {}
        self._seen: OrderedDict[int, None] = OrderedDict()
        layer.network.host(host_name).on_receive(self._receive)

    # -- sending ---------------------------------------------------------

    def send(
        self,
        dst: str,
        payload: Any,
        on_failure: Callable[[str, Any], None] | None = None,
    ) -> int:
        """Send ``payload`` at-least-once; returns the message id.

        ``on_failure(dst, payload)`` fires if every retransmit went
        unacked -- the caller decides whether that aborts a protocol
        round or is best-effort (pass ``None``).
        """
        pending = _PendingSend(self.layer.next_id(), dst, payload, on_failure)
        self._pending[pending.id] = pending
        self._transmit(pending)
        return pending.id

    def _transmit(self, pending: _PendingSend) -> None:
        cfg = self.layer.config
        self.layer._count("rpc.sent", "sent")
        # strict=False: a crashed/unknown destination becomes an
        # accounted drop; the retransmit timer is the recovery path.
        self.layer.network.send(
            self.host_name,
            pending.dst,
            {"rpc": "msg", "id": pending.id, "payload": pending.payload},
            cfg.message_bytes,
            strict=False,
        )
        delay = backoff_delay(
            cfg.timeout_s, cfg.backoff, cfg.jitter,
            pending.attempt, self.layer._rng,
        )
        pending.timer = self.layer.sim.schedule(delay, self._timeout, pending)

    def _timeout(self, pending: _PendingSend) -> None:
        if pending.id not in self._pending:
            return  # acked in the meantime (timer raced its own cancel)
        if pending.attempt >= self.layer.config.max_retries:
            del self._pending[pending.id]
            self.layer._count("rpc.timeouts", "timeouts")
            if pending.on_failure is not None:
                pending.on_failure(pending.dst, pending.payload)
            return
        pending.attempt += 1
        self.layer._count("rpc.retries", "retries")
        self._transmit(pending)

    def cancel_matching(self, predicate: Callable[[Any], bool]) -> int:
        """Drop un-acked sends whose payload matches (no more
        retransmits, no failure callback).  Used when the coordinator
        abandons a protocol round: the receivers' epoch guards make any
        copy already in flight a no-op, so retrying it is pure noise."""
        doomed = [
            p for p in self._pending.values() if predicate(p.payload)
        ]
        for pending in doomed:
            if pending.timer is not None:
                pending.timer.cancel()
            del self._pending[pending.id]
        return len(doomed)

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    # -- receiving -------------------------------------------------------

    def _receive(self, sender: str, message: Any) -> None:
        kind = message.get("rpc") if isinstance(message, dict) else None
        if kind == "ack":
            pending = self._pending.pop(message["id"], None)
            if pending is not None:
                if pending.timer is not None:
                    pending.timer.cancel()
                self.layer._count("rpc.acked", "acked")
            return
        if kind != "msg":
            # Not an RPC envelope: a legacy bare send -- dispatch as-is.
            self.handler(sender, message)
            return
        msg_id = message["id"]
        # Ack first, even for duplicates: the previous ack may be the
        # thing the network lost.
        self.layer.network.send(
            self.host_name,
            sender,
            {"rpc": "ack", "id": msg_id},
            self.layer.config.ack_bytes,
            strict=False,
        )
        if msg_id in self._seen:
            self.layer._count(
                "rpc.duplicates_suppressed", "duplicates_suppressed"
            )
            return
        self._seen[msg_id] = None
        while len(self._seen) > self.layer.config.dedup_window:
            self._seen.popitem(last=False)
        self.handler(sender, message["payload"])
