"""Periodic reconciliation between the coordinator and its participants.

The RPC layer, deadlines, and epochs cover almost every loss pattern,
but "almost" is not an invariant: an abort whose every retransmit was
lost leaves a reservation with no owner, and a router capacity view can
drift from what VNF controllers actually report after enough churn.
The sweeper is the backstop that turns those residuals into bounded
garbage: every ``interval_s`` of simulated time it

- releases **stale reservations** -- any (chain, site) reservation at a
  VNF service whose chain is not pending in the installer (no
  coordinator will ever commit or abort it);
- aborts **stalled installs** that outlived twice their deadline (the
  deadline timer itself is the primary path; this catches a coordinator
  whose timer state was lost, e.g. across a failover);
- re-syncs the **router's capacity view** against each service's
  reported :meth:`~repro.vnf.service.VnfService.available` -- only while
  no install is in flight, since mid-2PC reservations legitimately
  depress availability;
- exports the ``resilience.inflight_installs`` gauge.

The sweep loop runs on the sim clock and self-terminates at its
horizon, so a full ``network.run()`` drain still finishes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.protocol import BusDrivenInstaller
    from repro.obs.registry import MetricsRegistry


class ReconciliationSweeper:
    """Sim-clock garbage collector for control-plane residuals."""

    def __init__(
        self,
        installer: "BusDrivenInstaller",
        interval_s: float | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.installer = installer
        self.interval_s = (
            interval_s
            if interval_s is not None
            else installer.resilience.sweep_interval_s
        )
        self.metrics = metrics
        self.sweeps = 0
        self.stale_reservations_released = 0
        self.stalled_installs_aborted = 0
        if metrics is not None:
            metrics.counter("sweeper.stale_reservations")
            metrics.counter("sweeper.stalled_installs")
            metrics.gauge("resilience.inflight_installs")

    def start(self, until: float) -> None:
        """Sweep every ``interval_s`` sim-seconds until the horizon."""
        self._tick(until)

    def _tick(self, until: float) -> None:
        self.sweep()
        sim = self.installer.sim
        if sim.now + self.interval_s <= until:
            sim.schedule(self.interval_s, self._tick, until)

    def sweep(self) -> int:
        """One reconciliation pass; returns stale reservations released."""
        self.sweeps += 1
        installer = self.installer
        gs = installer.gs
        now = installer.sim.now

        # Stalled installs: the deadline timer should have fired long
        # ago; abort whatever is still pending past twice the deadline.
        budget = 2.0 * installer.resilience.install_deadline_s
        for name in sorted(installer._pending):
            pending = installer._pending[name]
            if now - pending.timeline.requested_at > budget:
                self.stalled_installs_aborted += 1
                if self.metrics is not None:
                    self.metrics.counter("sweeper.stalled_installs").inc()
                installer.abort_install(name, "swept: install stalled")

        pending_chains = set(installer._pending)
        released = 0
        for service in gs.vnf_services.values():
            for chain, site in sorted(service.reservations()):
                if chain not in pending_chains:
                    service.abort(chain, site)
                    released += 1
            # Committed ledger entries whose chain has no owner left
            # (not pending, not installed): the teardown that should
            # have released them gave up -- release them here.
            for chain, site in sorted(service.committed_chains()):
                if (
                    chain not in pending_chains
                    and chain not in gs.installations
                ):
                    service.release(chain, site)
                    released += 1
        if released:
            self.stale_reservations_released += released
            if self.metrics is not None:
                self.metrics.counter("sweeper.stale_reservations").inc(released)

        # Capacity re-sync is only sound at quiescence: while a 2PC is
        # in flight its reservations legitimately depress available().
        if not pending_chains:
            for vnf_name in sorted(gs.vnf_services):
                service = gs.vnf_services[vnf_name]
                for site in service.sites:
                    gs.router.sync_vnf_capacity(
                        vnf_name, site, service.available(site)
                    )

        if self.metrics is not None:
            self.metrics.gauge("resilience.inflight_installs").set(
                len(pending_chains)
            )
        return released
