"""Standby Global Switchboard: lease-based failover for the installer.

Section 4.5's replication recipe gives the control plane a durable,
quorum-replicated store; this module adds the process that uses it.  A
:class:`FailoverManager` runs a sim-clock tick on behalf of a set of
controller *candidates* (by convention ``gs-primary``/``gs-standby``,
both fronting the same ``ctrl.gs`` role host):

- while the active candidate's host is up, the tick simply **renews the
  leader lease** (through the chaos :class:`LeaseMonitor` when given
  one, so lease-safety stays checkable);
- when the active candidate dies (a chaos ``gs_crash`` marks it dead
  and crashes the host), the standby waits for the old lease to
  **expire**, acquires it, and :meth:`takes over <take_over>`:
  restarts the controller host, adopts every durable
  :func:`~repro.controller.replication.restore_installations`
  checkpoint missing from memory, **aborts** in-flight installs that
  had not committed their route (their 2PC outcome is unknown -- the
  teardown fence makes that safe), **re-drives** installs that had
  committed (the durable checkpoint proves the capacity is theirs), and
  resolves orphaned install markers -- re-applying the configuration of
  published chains, tearing down chains that died mid-2PC.

Everything runs on the simulated clock; the tick self-terminates at its
horizon so a full event-queue drain still finishes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.controller.replication import (
    ReplicatedStore,
    ReplicationError,
    pending_install_markers,
    restore_installations,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.invariants import LeaseMonitor
    from repro.controller.protocol import BusDrivenInstaller
    from repro.obs.registry import MetricsRegistry


class FailoverManager:
    """Keeps exactly one controller candidate driving the installer."""

    def __init__(
        self,
        installer: "BusDrivenInstaller",
        store: ReplicatedStore,
        monitor: "LeaseMonitor | None" = None,
        candidates: tuple[str, ...] = ("gs-primary", "gs-standby"),
        lease_duration_s: float = 2.0,
        check_interval_s: float = 0.5,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.installer = installer
        self.store = store
        self.monitor = monitor
        self.candidates = list(candidates)
        self.active = self.candidates[0]
        self.lease_duration_s = lease_duration_s
        self.check_interval_s = check_interval_s
        self.metrics = metrics
        self.takeovers = 0
        #: Candidates whose controller process has died (set by the
        #: chaos ``gs_crash`` event); they stop renewing immediately.
        self.dead: set[str] = set()
        if metrics is not None:
            metrics.counter("failover.takeovers")

    def mark_dead(self, candidate: str) -> None:
        self.dead.add(candidate)

    def revive(self, candidate: str) -> None:
        self.dead.discard(candidate)

    # -- the election/renewal loop ----------------------------------------

    def start(self, until: float) -> None:
        """Run the renewal/election tick until the sim-clock horizon."""
        self._tick(until)

    def _tick(self, until: float) -> None:
        self.check()
        sim = self.installer.sim
        if sim.now + self.check_interval_s <= until:
            sim.schedule(self.check_interval_s, self._tick, until)

    def check(self) -> None:
        """One election step: renew, or fail over if the active died."""
        installer = self.installer
        now = installer.sim.now
        if (
            self.active not in self.dead
            and installer.network.host_is_up(installer.gs_host)
        ):
            self._acquire(self.active, now)
            return
        standby = next(
            (c for c in self.candidates if c not in self.dead), None
        )
        if standby is None:
            return  # nobody left to lead
        if self._leader(now) is not None:
            return  # the dead leader's lease has not expired yet
        if self._acquire(standby, now):
            self.take_over(standby)

    def _acquire(self, owner: str, now: float) -> bool:
        if self.monitor is not None:
            return self.monitor.acquire(owner, now, self.lease_duration_s)
        try:
            return self.store.acquire_lease(owner, now, self.lease_duration_s)
        except ReplicationError:
            return False

    def _leader(self, now: float) -> str | None:
        if self.monitor is not None:
            return self.monitor.leader(now)
        try:
            return self.store.leader(now)
        except ReplicationError:
            return None

    # -- takeover ---------------------------------------------------------

    def take_over(self, owner: str) -> None:
        """Make ``owner`` the active controller and reconcile all
        control state against the durable store."""
        self.takeovers += 1
        if self.metrics is not None:
            self.metrics.counter("failover.takeovers").inc()
        installer = self.installer
        gs = installer.gs
        if not installer.network.host_is_up(installer.gs_host):
            installer.network.restart_host(installer.gs_host)

        # Adopt checkpointed installations the new controller does not
        # hold in memory (committed chains survive their coordinator).
        try:
            restored = restore_installations(self.store)
        except ReplicationError:
            restored = {}
        for name in sorted(restored):
            gs.installations.setdefault(name, restored[name])

        # In-flight installs: the route-commit milestone decides.
        # Uncommitted 2PC outcomes are unknown -> abort (the teardown
        # fence releases whatever participants hold).  Committed ones
        # own their capacity durably -> re-arm the deadline and re-drive
        # the configure phase.
        for name in sorted(installer._pending):
            pending = installer._pending[name]
            if pending.timeline.route_committed_at is None:
                installer.abort_install(name, "controller failover")
            else:
                installer.deadlines.arm(
                    name,
                    installer.resilience.install_deadline_s,
                    installer._on_deadline,
                )
                installer.redrive(name)

        # Install markers with no in-memory pending entry: the previous
        # coordinator died holding them.
        try:
            markers = pending_install_markers(self.store)
        except ReplicationError:
            markers = {}
        for name in sorted(markers):
            if name in installer._pending:
                continue
            marker = markers[name]
            if name in gs.installations and marker["phase"] == "configuring":
                # Published before the crash: re-apply the idempotent
                # configuration from the durable record.
                installation = gs.installations[name]
                gs._assign_instances(installation)
                edge = gs.edge_controllers.get(installation.spec.edge_service)
                if edge is not None:
                    gs._configure_edges(installation, edge)
                if name in gs.model.chains:
                    gs._install_rules(installation)
            else:
                # Died mid-2PC: no durable commit record exists, so
                # release the participants and forget the chain.
                for vnf_name, site in sorted(marker["loads"]):
                    if vnf_name in installer.vnf_hosts:
                        installer.send_teardown(vnf_name, name, site)
                if (
                    name in gs.model.chains
                    and name not in gs.installations
                ):
                    gs.router.rollback(name)
                    gs.model.remove_chain(name)
                if name not in gs.installations:
                    gs.labels.release(name)
                    installer._remove_checkpoint(name)
            installer._clear_marker(name)

        self.active = owner
