"""``repro.resilience`` -- control-plane hardening for the 2PC installer.

PR 3 (:mod:`repro.chaos`) gave the substrate a fault model: links drop,
degrade, and partition; hosts crash.  This package makes the *control
plane* survive those faults, so the Figure 4 bus-driven installation is
an end-to-end protocol rather than a fair-weather script:

- :mod:`repro.resilience.rpc` -- at-least-once delivery for control
  messages: monotonically increasing message ids, per-RPC timeouts,
  exponential backoff with seeded jitter, and a receiver-side dedup
  window that re-acks duplicates from cached state;
- :mod:`repro.resilience.deadline` -- per-installation deadlines (and
  the :class:`ResilienceConfig` knobs) so a stuck install is aborted
  and fully rolled back instead of leaking reservations;
- :mod:`repro.resilience.sweeper` -- a periodic sim-clock reconciler
  that garbage-collects stalled installs, re-syncs the router's
  capacity view against what VNF controllers actually report, and
  exports the in-flight-install gauge;
- :mod:`repro.resilience.failover` -- a standby Global Switchboard that
  takes the :class:`~repro.controller.replication.ReplicatedStore`
  lease when the primary dies, restores from checkpoints, and resumes
  or aborts in-flight installs.

Everything runs on the simulated clock with seeded randomness, so a
chaos soak with control faults replays byte-identically from one seed.
"""

from repro.resilience.deadline import DeadlineManager, ResilienceConfig
from repro.resilience.failover import FailoverManager
from repro.resilience.rpc import (
    BackoffPolicy,
    RpcConfig,
    RpcEndpoint,
    RpcError,
    RpcLayer,
    backoff_delay,
)
from repro.resilience.sweeper import ReconciliationSweeper

__all__ = [
    "BackoffPolicy",
    "DeadlineManager",
    "FailoverManager",
    "ReconciliationSweeper",
    "ResilienceConfig",
    "RpcConfig",
    "RpcEndpoint",
    "RpcError",
    "RpcLayer",
    "backoff_delay",
]
