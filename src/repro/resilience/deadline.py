"""Installation deadlines and the resilience configuration bundle.

A 2PC installation that loses enough control messages must not hang in
``_pending`` forever with capacity reserved at VNF controllers.  The
:class:`DeadlineManager` arms one cancellable sim-clock timer per
installation; if the install has not completed (or failed) by the
deadline, the installer's expiry callback aborts it unilaterally --
tearing down every participant, rolling back the router, and reporting a
failed timeline to the caller.

:class:`ResilienceConfig` bundles every knob of the hardening stack so
callers (tests, the chaos runner, the CLI) configure one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.resilience.rpc import RpcConfig, RpcError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.simnet.events import EventHandle, Simulator


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the control-plane hardening stack.

    ``install_deadline_s`` bounds how long a single installation may
    stay in flight; it must dominate the RPC give-up horizon for a
    single message (sum of all backoff timeouts) or the deadline aborts
    installs the transport would still have saved.
    """

    rpc: RpcConfig = field(default_factory=RpcConfig)
    #: Wall (sim) time an installation may stay pending before the
    #: coordinator aborts and rolls it back.
    install_deadline_s: float = 10.0
    #: Period of the per-install re-drive tick that re-sends
    #: phase-appropriate messages (chain request, edge configure,
    #: instance allocation) lost to bare, un-acked channels.
    redrive_interval_s: float = 0.75
    #: Period of the reconciliation sweeper.
    sweep_interval_s: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.install_deadline_s <= 0:
            raise RpcError(
                f"non-positive install deadline {self.install_deadline_s}"
            )
        if self.redrive_interval_s <= 0:
            raise RpcError(
                f"non-positive redrive interval {self.redrive_interval_s}"
            )
        if self.sweep_interval_s <= 0:
            raise RpcError(
                f"non-positive sweep interval {self.sweep_interval_s}"
            )


class DeadlineManager:
    """Cancellable per-key deadlines on the simulated clock.

    ``arm(key, ...)`` replaces any existing deadline for the key, so
    re-arming extends rather than stacking.  ``disarm`` is idempotent
    and cancels the underlying sim event, which the simulator skips
    without advancing the clock.
    """

    def __init__(self, sim: "Simulator", metrics: "MetricsRegistry | None" = None):
        self.sim = sim
        self.metrics = metrics
        self.expired = 0
        self._armed: dict[str, "EventHandle"] = {}
        if metrics is not None:
            metrics.counter("deadline.expired")

    def arm(
        self,
        key: str,
        deadline_s: float,
        on_expire: Callable[[str], None],
    ) -> None:
        """Fire ``on_expire(key)`` in ``deadline_s`` sim-seconds unless
        disarmed first."""
        self.disarm(key)
        self._armed[key] = self.sim.schedule(
            deadline_s, self._fire, key, on_expire
        )

    def disarm(self, key: str) -> bool:
        """Cancel the deadline for a key; True if one was armed."""
        handle = self._armed.pop(key, None)
        if handle is None:
            return False
        handle.cancel()
        return True

    def active(self) -> list[str]:
        return sorted(self._armed)

    def _fire(self, key: str, on_expire: Callable[[str], None]) -> None:
        if self._armed.pop(key, None) is None:
            return  # disarmed after the event was already popped
        self.expired += 1
        if self.metrics is not None:
            self.metrics.counter("deadline.expired").inc()
        on_expire(key)
