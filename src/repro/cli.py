"""Command-line interface: quick experiments without writing a script.

Usage::

    python -m repro topology [--cities N]
    python -m repro route [--chains N] [--coverage C] [--scheme all|dp|lp|anycast|compute-aware]
    python -m repro cache [--shared/--siloed both by default]
    python -m repro bus [--rate HZ] [--sites N]
    python -m repro timing
    python -m repro metrics [--publishes N] [--rate HZ] [--json]
    python -m repro scale [--chains N] [--partition-size K] [--workers W]
    python -m repro federation [--pops N] [--chains N] [--regions K] [--soak OPS]
    python -m repro chaos [--seed N] [--duration S] [--json] [--out [FILE]]
    python -m repro fuzz [--seed N] [--cases N] [--budget S] [--plant] [--out [FILE]]
    python -m repro bench [--suites A,B] [--compare] [--update-baselines] [--out DIR]
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def _default_out(out: "str | None", command: str, seed: int) -> "str | None":
    """Resolve a bare ``--out`` to a seed-derived filename.

    ``--out`` without a value used to be impossible; commands that
    hardcoded a name collided when two seeds ran in one directory
    (the second report overwrote the first).  A bare ``--out`` now
    yields ``<command>-report-seed<seed>.json``, unique per
    (command, seed) pair; an explicit path is used verbatim.
    """
    if out == "auto":
        return f"{command}-report-seed{seed}.json"
    return out


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.topology import build_backbone
    from repro.topology.cities import DEFAULT_CITIES

    cities = DEFAULT_CITIES[: args.cities]
    backbone = build_backbone(cities)
    lat = [v for v in backbone.latency.values() if v > 0]
    print(f"PoPs           : {len(backbone.nodes)}")
    print(f"directed links : {len(backbone.links)}")
    print(f"one-way delay  : {min(lat):.1f} - {max(lat):.1f} ms")
    tiers = sorted({link.bandwidth for link in backbone.links})
    print(f"link tiers     : {', '.join(f'{t:g}' for t in tiers)} Gbps")
    degrees = dict(backbone.graph.degree())
    hub = max(degrees, key=degrees.get)
    print(f"highest degree : {hub} ({degrees[hub]})")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.core.baselines import (
        route_anycast,
        route_compute_aware,
        scale_to_capacity,
    )
    from repro.core.dp import route_chains_dp
    from repro.core.lp import LpObjective, solve_chain_routing_lp
    from repro.topology import WorkloadConfig, build_backbone, generate_workload
    from repro.topology.cities import DEFAULT_CITIES

    cities = DEFAULT_CITIES[: args.cities]
    config = WorkloadConfig(
        num_chains=args.chains,
        num_vnfs=args.vnfs,
        coverage=args.coverage,
        total_traffic=args.traffic,
        site_capacity=args.site_capacity,
        cities=cities,
        seed=args.seed,
    )
    model = generate_workload(config, build_backbone(cities))
    offered = model.total_demand()
    print(f"workload: {len(model.chains)} chains, {offered:.0f} units offered")

    def report(name: str, solution, seconds: float) -> None:
        print(
            f"{name:<14} carried {solution.throughput():8.1f} "
            f"({solution.throughput() / offered:5.1%})  "
            f"latency {solution.mean_latency():6.1f} ms  "
            f"[{seconds:.2f}s]"
        )

    scheme = args.scheme
    if scheme in ("all", "dp"):
        start = time.perf_counter()
        dp = route_chains_dp(model)
        report("SB-DP", dp.solution, time.perf_counter() - start)
    if scheme in ("all", "lp"):
        start = time.perf_counter()
        lp = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        if not lp.ok:
            print(f"SB-LP          {lp.status}")
        else:
            report("SB-LP", lp.solution, time.perf_counter() - start)
    if scheme in ("all", "anycast"):
        start = time.perf_counter()
        solution = scale_to_capacity(route_anycast(model))
        report("ANYCAST", solution, time.perf_counter() - start)
    if scheme in ("all", "compute-aware"):
        start = time.perf_counter()
        solution = scale_to_capacity(route_compute_aware(model))
        report("COMPUTE-AWARE", solution, time.perf_counter() - start)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.vnf.cache import run_cache_experiment

    for shared in (True, False):
        result = run_cache_experiment(
            shared=shared,
            num_chains=args.chains,
            total_cache_objects=args.cache_objects,
            catalog_objects=args.catalog,
            popularity_spread=args.spread,
        )
        print(
            f"{result.scheme:>7}: hit rate {result.hit_rate:6.2%}, "
            f"mean download {result.mean_download_ms:6.2f} ms "
            f"({result.requests} requests)"
        )
    return 0


def _cmd_bus(args: argparse.Namespace) -> int:
    from repro.bus import Topic, make_bus, make_full_mesh_bus

    sites = [f"S{i}" for i in range(args.sites)]

    def drive(make):
        bus = make(sites, wan_delay_s=0.025, uplink_bps=8e6,
                   uplink_buffer_bytes=400_000)
        topic = Topic("c1", "e1", "G", "S0", "instances")
        bus.attach("pub", "S0")
        for site in sites[1:]:
            for j in range(args.subscribers):
                name = f"sub-{site}-{j}"
                bus.attach(name, site)
                bus.subscribe(name, topic)
        for i in range(args.publishes):
            bus.network.sim.schedule(
                i / args.rate, bus.publish, "pub", topic, i
            )
        bus.network.run()
        return bus.stats

    proxy = drive(make_bus)
    mesh = drive(make_full_mesh_bus)
    for name, stats in (("bus", proxy), ("broadcast", mesh)):
        print(
            f"{name:>9}: delivered {stats.delivered:6d}, "
            f"drops {stats.wan_drops:5d}, "
            f"mean latency {stats.mean_latency() * 1e3:7.1f} ms"
        )
    if mesh.delivered:
        print(
            f"bus advantage: {mesh.mean_latency() / proxy.mean_latency():.1f}x "
            f"latency, +{100 * (proxy.delivered / mesh.delivered - 1):.0f}% "
            f"delivery"
        )
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    from repro.controller.timing import (
        simulate_chain_route_update,
        simulate_edge_site_addition,
    )

    update = simulate_chain_route_update()
    print(f"chain route update: {update.total_s * 1e3:.0f} ms total")
    for m in update.milestones:
        print(f"  {m.operation:<45} {m.duration_s * 1e3:5.0f} ms")
    addition = simulate_edge_site_addition()
    print(f"\nedge site addition: {addition.summed_durations_s * 1e3:.0f} ms "
          f"(sum of operations)")
    for m in addition.milestones:
        print(f"  {m.operation:<48} {m.duration_s * 1e3:5.0f} ms")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run an instrumented end-to-end experiment and print the report.

    Three phases share one simulator and one registry: a bus-driven
    chain installation (2PC stage timings), a pub/sub load phase that
    overloads site A's WAN uplink (queueing-delay histograms and
    WAN-drop counters), and one run of each solver (wall-clock
    timings).
    """
    import random

    from repro.bus import Topic, make_bus
    from repro.controller import (
        ChainSpecification,
        GlobalSwitchboard,
        LocalSwitchboard,
    )
    from repro.controller.protocol import BusDrivenInstaller
    from repro.core.dp import route_chains_dp
    from repro.core.lp import LpObjective, solve_chain_routing_lp
    from repro.core.model import CloudSite, NetworkModel, VNF
    from repro.dataplane import DataPlane, FiveTuple, Packet
    from repro.edge import EdgeController, EdgeInstance
    from repro.obs import (
        MetricsRegistry,
        collect_bench,
        collect_bus,
        collect_dataplane,
        collect_federation,
        collect_network,
        collect_resilience,
        registry_to_json,
        render_report,
    )
    from repro.simnet.events import Simulator
    from repro.simnet.network import SimNetwork
    from repro.vnf import VnfService

    sites = ["A", "B", "C"]
    sim = Simulator()
    registry = MetricsRegistry.for_simulator(sim)
    net = SimNetwork(sim, metrics=registry)
    bus = make_bus(
        sites,
        wan_delay_s=0.030,
        uplink_bps=args.uplink_bps,
        uplink_buffer_bytes=args.buffer_bytes,
        network=net,
        metrics=registry,
    )

    # Phase 1: install a chain through the bus-driven 2PC protocol.
    model = NetworkModel(
        ["a", "b", "c"],
        {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0},
        [CloudSite(s, s.lower(), 100.0) for s in sites],
        [VNF("fw", 1.0, {"B": 40.0})],
    )
    dp = DataPlane(random.Random(0), metrics=registry)
    gs = GlobalSwitchboard(model, dp, metrics=registry)
    for site in sites:
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    gs.register_vnf_service(VnfService("fw", 1.0, {"B": 40.0}))
    edge = EdgeController("vpn")
    ingress = EdgeInstance("edge.A", "A", dp)
    edge.register_instance(ingress)
    egress = EdgeInstance("edge.C", "C", dp)
    edge.register_instance(egress)
    edge.register_attachment("in", "A")
    edge.register_attachment("out", "C")
    gs.register_edge_service(edge)
    egress.attach_forwarder(gs.local_switchboard("C").forwarders[0].name)
    installer = BusDrivenInstaller(
        gs,
        bus,
        gs_site="A",
        edge_controller_site="A",
        vnf_controller_sites={"fw": "B"},
        metrics=registry,
    )
    timeline = installer.install(
        ChainSpecification(
            "corp", "vpn", "in", "out", ["fw"],
            forward_demand=5.0,
            src_prefix="10.0.0.0/24",
            dst_prefixes=["20.0.0.0/24"],
        )
    )
    net.run()
    if timeline.failed is not None:
        print(f"chain installation failed: {timeline.failed}", file=sys.stderr)
        return 1
    # A few connections through the installed chain: exercises the
    # forwarders' flow tables (misses on first packet, hits after).
    for i in range(4):
        flow = FiveTuple("10.0.0.5", "20.0.0.9", "tcp", 40_000 + i, 80)
        for _ in range(3):
            ingress.ingress(Packet(flow))

    # Phase 2: saturate A's uplink with pub/sub fan-out.  Two WAN
    # copies per publish (sites B and C) at the default rate offer
    # 2 * 8 kbit * rate = 16 Mbps against an 8 Mbps uplink: the queue
    # builds, then the buffer overflows and the proxy starts dropping.
    topic = Topic("load", "C", "L", "A", "instances")
    bus.attach("load.pub", "A")
    for site in ("B", "C"):
        for j in range(args.subscribers):
            name = f"load.sub-{site}-{j}"
            bus.attach(name, site)
            bus.subscribe(name, topic)
    for i in range(args.publishes):
        sim.schedule(i / args.rate, bus.publish, "load.pub", topic, {"seq": i})
    net.run()

    # Phase 3: solver micro-bench -- a few timed passes per scheme,
    # folded into the report as bench.* gauges via collect_bench.
    from repro.bench.stats import SampleStats

    solver_samples: dict[str, list[float]] = {"dp_solver": [], "lp_solver": []}
    for _ in range(args.bench_repeats):
        start = time.perf_counter()
        route_chains_dp(model, metrics=registry)
        solver_samples["dp_solver"].append(time.perf_counter() - start)
        start = time.perf_counter()
        solve_chain_routing_lp(
            model, LpObjective.MAX_THROUGHPUT, metrics=registry
        )
        solver_samples["lp_solver"].append(time.perf_counter() - start)
    collect_bench(
        registry,
        {
            name: SampleStats.from_samples(samples)
            for name, samples in solver_samples.items()
        },
    )

    # Phase 4: federated resilience micro-drill.  A tiny two-region
    # partition-tolerant deployment takes one coordinator crash while
    # live chains arrive at the regional front ends, so the report also
    # carries the federation resilience gauges: failovers, ledger
    # reconciliations, degraded-mode admissions, cross-shard queue
    # depth.
    from repro.federation import FederationChaosConfig
    from repro.federation.chaos import build_federation_deployment

    fed_config = FederationChaosConfig(
        seed=2,
        duration_s=12.0,
        pops=8,
        regions=2,
        chains=12,
        link_flaps=0,
        partition=False,
        region_restart=False,
        lease_duration_s=1.0,
        install_deadline_s=3.0,
    )
    fed = build_federation_deployment(fed_config)
    fed.failover.start(until=fed_config.duration_s)
    fed_rng = random.Random("metrics-fed")
    for chain in fed.live_chains:
        region = fed.primary.shard_map.region_of(fed.model, chain.ingress)
        fed.sim.schedule_at(
            fed_rng.uniform(0.5, 4.0), fed.region_nodes[region].submit, chain
        )
    fed.sim.schedule(2.0, fed.failover.crash_active)
    fed.net.run(until=fed_config.duration_s)
    fed.net.run()
    collect_federation(
        registry,
        fed.failover.active,
        failover=fed.failover,
        nodes=fed.region_nodes.values(),
    )

    collect_network(registry, net)
    collect_bus(registry, bus)
    collect_dataplane(registry, dp)
    collect_resilience(registry, installer)
    if args.json:
        print(registry_to_json(registry))
    else:
        print(render_report(registry, title="repro metrics: bus experiment"))
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    """Monolithic vs. solver-farm comparison on one workload.

    Three farm passes against one monolithic baseline: a cold solve
    (every partition a cache miss), a warm re-solve (every partition a
    hit), and an incremental ``resolve`` after scaling one chain's
    demand (only that chain's partition re-solves).
    """
    from repro.core.lp import LpObjective, solve_chain_routing_lp
    from repro.obs import MetricsRegistry
    from repro.scale import SolverFarm, optimality_gap
    from repro.topology import WorkloadConfig, build_backbone, generate_workload
    from repro.topology.cities import DEFAULT_CITIES

    cities = DEFAULT_CITIES[: args.cities]
    config = WorkloadConfig(
        num_chains=args.chains,
        num_vnfs=args.vnfs,
        coverage=args.coverage,
        total_traffic=args.traffic,
        site_capacity=args.site_capacity,
        cities=cities,
        seed=args.seed,
    )
    model = generate_workload(config, build_backbone(cities))
    print(
        f"workload: {len(model.chains)} chains, "
        f"{model.total_demand():.0f} units offered"
    )

    start = time.perf_counter()
    mono = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
    mono_s = time.perf_counter() - start
    if not mono.ok:
        print(f"monolithic solve failed: {mono.status}", file=sys.stderr)
        return 1

    registry = MetricsRegistry()
    farm = SolverFarm(
        partition_size=args.partition_size,
        max_workers=args.workers,
        metrics=registry,
    )

    def row(name: str, result, seconds: float) -> None:
        thr = result.solution.throughput() if result.solution else 0.0
        extra = ""
        if hasattr(result, "cache_hits"):
            extra = (
                f"  solved {len(result.solved)}/{result.partitions}"
                f"  hits {result.cache_hits}"
                f"  gap {optimality_gap(result, mono):.1%}"
                f"  speedup {mono_s / seconds:.1f}x"
            )
        print(f"{name:<12} {seconds:7.2f}s  carried {thr:8.1f}{extra}")

    row("monolithic", mono, mono_s)
    start = time.perf_counter()
    cold = farm.solve(model)
    row("farm cold", cold, time.perf_counter() - start)
    start = time.perf_counter()
    warm = farm.solve(model)
    row("farm warm", warm, time.perf_counter() - start)

    # Scale one chain's demand and re-solve incrementally.
    changed = sorted(model.chains)[0]
    chain = model.chains[changed]
    model.remove_chain(changed)
    model.add_chain(chain.scaled(1.5))
    start = time.perf_counter()
    incr = farm.resolve(model, [changed])
    row("incremental", incr, time.perf_counter() - start)

    stats = farm.cache.stats
    print(
        f"cache: {stats.hits} hits, {stats.misses} misses, "
        f"{stats.evictions} evictions ({stats.hit_rate:.0%} hit rate); "
        f"exact plan: {cold.exact}"
    )
    return 0


def _cmd_federation(args: argparse.Namespace) -> int:
    """Federated two-level control plane on a generated PoP topology.

    Builds the clustered PoP workload, cuts it into regions, installs
    every chain through the :class:`GlobalCoordinator` (cross-shard
    chains via split + 2PC), then times a cold federated plan and an
    incremental re-plan.  ``--compare-monolithic`` also runs the
    monolithic :class:`SolverFarm` on the same workload and reports
    speedups and the throughput gap; ``--soak N`` runs the seeded
    fault-injection soak instead; ``--chaos-soak`` runs the full
    partition-tolerant deployment (coordinator failover, durable
    ledgers, degraded-mode regions) against a seeded schedule of real
    link, partition, and crash faults.  Exit code 1 on any invariant
    violation.
    """
    import json
    import random

    from repro.core.lp import LpObjective
    from repro.federation import FaultPolicy, GlobalCoordinator, check_all
    from repro.federation import run_soak as run_federation_soak
    from repro.obs import MetricsRegistry, collect_federation, registry_to_dict
    from repro.topology.pops import PopGridConfig, generate_federation_workload

    args.out = _default_out(args.out, "federation", args.seed)
    if args.chaos_soak:
        from repro.federation import FederationChaosConfig, run_federation_chaos

        chaos_config = FederationChaosConfig(
            seed=args.seed,
            duration_s=args.duration,
            pops=args.pops,
            regions=args.regions,
            chains=args.chains,
            locality=args.locality,
            partition_size=args.partition_size,
        )
        report = run_federation_chaos(chaos_config)
        print(report.to_json() if args.json else report.render())
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(report.to_json() + "\n")
        return 0 if report.passed else 1

    config = PopGridConfig(
        num_pops=args.pops,
        num_metros=args.metros if args.metros else args.regions,
        num_chains=args.chains,
        locality=args.locality,
        seed=args.seed,
    )
    start = time.perf_counter()
    model, _metro_of = generate_federation_workload(config)
    print(
        f"workload: {args.pops} PoPs, {len(model.chains)} chains, "
        f"{model.total_demand():.0f} units offered "
        f"({time.perf_counter() - start:.1f}s to generate)"
    )

    registry = MetricsRegistry()
    policy = None
    if args.soak:
        policy = FaultPolicy(
            seed=args.seed,
            reject_rate=args.reject_rate,
            crash_rate=args.crash_rate,
        )
    start = time.perf_counter()
    coordinator = GlobalCoordinator(
        model,
        n_regions=args.regions,
        partition_size=args.partition_size,
        max_workers=args.workers,
        metrics=registry,
        fault_policy=policy,
    )
    build_s = time.perf_counter() - start
    stats = coordinator.stats()
    print(
        f"federation: {stats['regions']} regions, {stats['borders']} border "
        f"links ({build_s:.1f}s to build)"
    )

    if args.soak:
        chains = list(model.chains.values())
        split = max(1, int(len(chains) * 0.7))
        base, pool = chains[:split], chains[split:]
        for chain in chains:
            model.remove_chain(chain.name)
        installed = 0
        for chain in base:
            try:
                coordinator.submit(chain)
                installed += 1
            except Exception:
                coordinator.sweep()
        print(f"soak base: {installed}/{len(base)} chains installed")
        report = run_federation_soak(
            model, coordinator, pool, ops=args.soak, seed=args.seed
        )
        collect_federation(registry, coordinator)
        report["metrics"] = registry_to_dict(registry)
        if args.json:
            print(json.dumps(report, indent=1, sort_keys=True))
        else:
            print(
                f"soak: {report['ops']} ops, counts {report['counts']}, "
                f"final {report['final_status']} "
                f"({report['final_carried']:.0f}/"
                f"{report['final_offered']:.0f} carried)"
            )
            for violation in report["violations"][:10]:
                print(f"  VIOLATION [{violation['op']}] {violation['problem']}")
        if args.out:
            with open(args.out, "w") as handle:
                json.dump(report, handle, indent=1, sort_keys=True)
                handle.write("\n")
        return 0 if report["ok"] else 1

    start = time.perf_counter()
    sync = coordinator.sync_chains()
    install_s = time.perf_counter() - start
    stats = coordinator.stats()
    print(
        f"installed: {len(sync['added'])} chains in {install_s:.1f}s "
        f"({stats['chains_cross']} cross-shard, "
        f"{stats['cross_shard_ratio']:.1%})"
    )

    start = time.perf_counter()
    cold = coordinator.plan_all(LpObjective.MAX_THROUGHPUT)
    cold_s = time.perf_counter() - start
    print(
        f"federated cold:  {cold_s:7.2f}s  carried "
        f"{cold.carried_demand:9.1f}/{cold.offered_demand:.1f}  "
        f"status {cold.status}"
    )

    rng = random.Random(args.seed)
    changed = rng.sample(sorted(model.chains), min(8, len(model.chains)))
    for name in changed:
        chain = model.chains[name]
        model.remove_chain(name)
        model.add_chain(chain.scaled(1.25))
    start = time.perf_counter()
    incr = coordinator.resolve(model, changed, LpObjective.MAX_THROUGHPUT)
    incr_s = time.perf_counter() - start
    print(
        f"federated incr:  {incr_s:7.2f}s  carried "
        f"{incr.carried_demand:9.1f}  regions re-solved "
        f"{list(incr.resolved_regions)}"
    )

    problems = check_all(coordinator, incr)
    print(f"invariants: {len(problems)} violations")
    for problem in problems[:10]:
        print(f"  VIOLATION {problem}")

    report = {
        "pops": args.pops,
        "chains": len(model.chains),
        "regions": args.regions,
        "stats": stats,
        "federated_cold_s": round(cold_s, 3),
        "federated_incr_s": round(incr_s, 3),
        "carried": round(incr.carried_demand, 3),
        "offered": round(incr.offered_demand, 3),
        "violations": problems,
    }

    if args.compare_monolithic:
        from repro.scale import SolverFarm

        farm = SolverFarm(
            partition_size=args.partition_size, max_workers=args.workers
        )
        start = time.perf_counter()
        mono_cold = farm.solve(model, LpObjective.MAX_THROUGHPUT)
        mono_cold_s = time.perf_counter() - start
        mono_carried = (
            mono_cold.solution.throughput() if mono_cold.solution else 0.0
        )
        for name in changed:
            chain = model.chains[name]
            model.remove_chain(name)
            model.add_chain(chain.scaled(1.1))
        start = time.perf_counter()
        farm.resolve(model, changed, LpObjective.MAX_THROUGHPUT)
        mono_incr_s = time.perf_counter() - start
        denom = max(mono_carried, 1e-9)
        gap = abs(incr.carried_demand - mono_carried) / denom
        print(
            f"monolithic cold: {mono_cold_s:7.2f}s  carried "
            f"{mono_carried:9.1f}   (federated speedup "
            f"{mono_cold_s / max(cold_s, 1e-9):.1f}x)"
        )
        print(
            f"monolithic incr: {mono_incr_s:7.2f}s   (federated speedup "
            f"{mono_incr_s / max(incr_s, 1e-9):.1f}x)  carried gap {gap:.1%}"
        )
        report.update(
            monolithic_cold_s=round(mono_cold_s, 3),
            monolithic_incr_s=round(mono_incr_s, 3),
            cold_speedup=round(mono_cold_s / max(cold_s, 1e-9), 2),
            incr_speedup=round(mono_incr_s / max(incr_s, 1e-9), 2),
            carried_gap=round(gap, 4),
        )

    collect_federation(registry, coordinator)
    if args.json:
        report["metrics"] = registry_to_dict(registry)
        print(json.dumps(report, indent=1, sort_keys=True))
    if args.out:
        report.setdefault("metrics", registry_to_dict(registry))
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
    return 0 if not problems else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos soak: play a fault schedule against a deployment
    while invariants are probed.  Exit code 1 if any invariant was
    violated, so a failing seed turns into a failing CI step; rerunning
    with the same ``--seed`` replays the byte-identical schedule.

    ``--control-faults`` switches the soak to the control-plane mix:
    live 2PC installs run through the bus-driven installer while the
    schedule drops control-channel RPCs and crashes the active Global
    Switchboard mid-install, exercising the resilience stack (reliable
    RPC, deadlines, sweeper, lease failover).
    """
    from repro.chaos import SoakConfig, run_soak

    args.out = _default_out(args.out, "chaos", args.seed)
    config = SoakConfig(
        seed=args.seed,
        duration_s=args.duration,
        num_chains=args.chains,
        partition=args.partition,
        control_faults=args.control_faults,
        control_loss=args.control_loss,
    )
    report = run_soak(config)
    output = report.to_json() if args.json else report.render()
    print(output)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json() + "\n")
    return 0 if report.passed else 1


#: Library scenario kinds, duplicated here so building the parser does
#: not import the (heavy) scenarios package; test_cli pins this tuple
#: against ``repro.scenarios.SCENARIO_KINDS``.
FUZZ_SCENARIO_KINDS = (
    "adversarial_matrix",
    "diurnal_wave",
    "evacuation_cascade",
    "flash_crowd",
    "site_churn",
    "zipf_mix",
)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Seeded scenario fuzzer: compose random workload + fault
    schedules, play them against the monolithic and federated stacks
    with invariant probes, and delta-debug any violation to a minimal
    replayable repro.

    Exit codes: 0 all green, 1 violations found (or a ``--plant``
    self-test failing to find/minimize its planted violation), 2
    ``--known-good`` digest mismatch.
    """
    import json

    from repro.scenarios import FuzzConfig, generate, replay_case, run_fuzz

    args.out = _default_out(args.out, "fuzz", args.seed)

    if args.scenario:
        schedule = generate(args.scenario, args.seed,
                            duration_s=args.duration)
        if args.json:
            print(schedule.to_json())
        else:
            counts = ", ".join(
                f"{k}={v}" for k, v in sorted(schedule.counts().items()) if v
            )
            print(
                f"{schedule.kind}: seed={schedule.seed} "
                f"duration={schedule.duration_s:g}s "
                f"ops={len(schedule.ops)} ({counts})"
            )
            print(f"digest {schedule.digest()}")
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(schedule.to_json() + "\n")
        return 0

    if args.replay:
        with open(args.replay) as handle:
            doc = json.load(handle)
        if "composed" in doc and "params" in doc:
            case_doc = doc  # a saved case / minimized repro
        elif isinstance(doc.get("schedule"), dict) and (
            "composed" in doc["schedule"]
        ):
            case_doc = doc["schedule"]  # a case result / minimized block
        elif doc.get("cases"):
            case_doc = doc["cases"][0]["schedule"]  # a whole fuzz report
        else:
            print("fuzz: unrecognized replay document", file=sys.stderr)
            return 2
        result = replay_case(case_doc)
        print(
            f"replay case {result.index}: {'+'.join(result.kinds)} "
            f"digest {result.schedule_digest[:16]}..."
        )
        for stack in result.stacks:
            status = "PASS" if stack.passed else (
                f"FAIL ({len(stack.violations)} violation(s))"
            )
            print(f"  {stack.stack}: {status}")
        return 0 if result.passed else 1

    stacks = (
        ("mono", "federation") if args.stack == "both" else (args.stack,)
    )
    config = FuzzConfig(
        seed=args.seed,
        cases=args.cases,
        budget_s=args.budget,
        duration_s=args.duration,
        stacks=stacks,
        minimize=not args.no_minimize,
        plant=args.plant,
    )
    report = run_fuzz(config)
    print(report.to_json() if args.json else report.render())
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json() + "\n")
    if args.write_known_good:
        with open(args.write_known_good, "w") as handle:
            json.dump(report.known_good_doc(), handle, indent=1,
                      sort_keys=True)
            handle.write("\n")
        print(f"known-good written: {args.write_known_good}")
    if args.known_good:
        with open(args.known_good) as handle:
            expected = json.load(handle)
        actual = report.known_good_doc()
        if expected != actual:
            print("known-good MISMATCH:", file=sys.stderr)
            for key in sorted(set(expected) | set(actual)):
                if expected.get(key) != actual.get(key):
                    print(
                        f"  {key}: expected {expected.get(key)!r} "
                        f"got {actual.get(key)!r}",
                        file=sys.stderr,
                    )
            return 2
        print("known-good: match")
    return 0 if report.passed else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Machine-readable benchmark runner with regression gating.

    Discovers the registered ``benchmarks/bench_*.py`` suites, times
    their measured functions in-process (warmup + repeats), and writes
    one canonical ``BENCH_<suite>.json`` per suite.  ``--compare``
    checks each run against the committed baseline and exits 1 on any
    noise-adjusted regression; ``--update-baselines`` blesses the run
    as the new baseline instead.  Exit codes: 0 pass, 1 regression,
    2 usage error (unknown suite, missing baseline, bad flags).
    """
    from pathlib import Path

    from repro import bench as rb

    if args.compare and args.update_baselines:
        print(
            "--compare and --update-baselines are mutually exclusive",
            file=sys.stderr,
        )
        return 2

    bench_dir = Path(args.bench_dir) if args.bench_dir else None
    try:
        if args.list:
            for name in rb.available_suites(bench_dir):
                print(name)
            return 0
        suites = (
            [s for s in args.suites.split(",") if s] if args.suites else None
        )
        selected = rb.discover(suites, bench_dir)
    except rb.BenchUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_dir = (
        Path(args.baselines) if args.baselines else rb.default_baseline_dir()
    )
    out_dir = Path(args.out) if args.out else Path.cwd()
    capture_metrics = os.environ.get("REPRO_METRICS", "0") not in ("", "0")
    environment = rb.environment_fingerprint()
    sha = rb.git_sha()

    # With --compare, refuse to start a long run that cannot finish:
    # every requested suite needs a committed baseline up front.
    if args.compare:
        missing = [
            name for name in selected
            if rb.load_baseline(baseline_dir, name) is None
        ]
        if missing:
            print(
                f"error: no baseline under {baseline_dir} for: "
                f"{', '.join(missing)} (run with --update-baselines "
                "and commit the result)",
                file=sys.stderr,
            )
            return 2

    comparisons: list = []
    for name, suite in selected.items():
        run = rb.run_suite(
            suite,
            warmup=args.warmup,
            repeats=args.repeats,
            capture_metrics=capture_metrics,
        )
        document = rb.build_document(
            run, suite, environment=environment, sha=sha
        )
        path = rb.write_document(rb.document_path(out_dir, name), document)
        line = (
            f"{name:<28} median {run.stats.median:8.4f}s "
            f"(n={run.stats.n}, stddev {run.stats.stddev:.4f}s) -> {path}"
        )
        if args.update_baselines:
            baseline_file = rb.save_baseline(baseline_dir, document)
            line += f"  [baseline: {baseline_file}]"
        print(line)
        if args.compare:
            baseline = rb.load_baseline(baseline_dir, name)
            comparison = rb.compare_documents(document, baseline)
            comparisons.append(comparison)
            print(f"  {comparison.render()}")

    regressions = [c for c in comparisons if c.regressed]
    if args.compare:
        mode = " (CI tolerances)" if rb.ci_mode_enabled() else ""
        print(
            f"compared {len(comparisons)} suite(s){mode}: "
            f"{len(regressions)} regression(s)"
        )
    return 1 if regressions else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Switchboard reproduction: quick experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topology", help="summarize the synthetic backbone")
    p.add_argument("--cities", type=int, default=25)
    p.set_defaults(func=_cmd_topology)

    p = sub.add_parser("route", help="compare TE schemes on a workload")
    p.add_argument("--chains", type=int, default=40)
    p.add_argument("--vnfs", type=int, default=12)
    p.add_argument("--coverage", type=float, default=0.5)
    p.add_argument("--traffic", type=float, default=6000.0)
    p.add_argument("--site-capacity", type=float, default=7200.0)
    p.add_argument("--cities", type=int, default=15)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--scheme",
        choices=["all", "dp", "lp", "anycast", "compute-aware"],
        default="all",
    )
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser("cache", help="the Table 3 shared-vs-siloed cache")
    p.add_argument("--chains", type=int, default=5)
    p.add_argument("--cache-objects", type=int, default=600)
    p.add_argument("--catalog", type=int, default=6000)
    p.add_argument("--spread", type=int, default=100)
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("bus", help="bus vs broadcast under load")
    p.add_argument("--sites", type=int, default=10)
    p.add_argument("--subscribers", type=int, default=5)
    p.add_argument("--publishes", type=int, default=700)
    p.add_argument("--rate", type=float, default=35.0)
    p.set_defaults(func=_cmd_bus)

    p = sub.add_parser("timing", help="control-plane latency breakdowns")
    p.set_defaults(func=_cmd_timing)

    p = sub.add_parser(
        "metrics", help="instrumented end-to-end run with a full obs report"
    )
    p.add_argument("--publishes", type=int, default=400)
    p.add_argument("--rate", type=float, default=1000.0)
    p.add_argument("--subscribers", type=int, default=3)
    p.add_argument("--uplink-bps", type=float, default=8e6)
    p.add_argument("--buffer-bytes", type=int, default=64_000)
    p.add_argument("--bench-repeats", type=int, default=3,
                   help="timed solver passes for the bench.* gauges")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "scale", help="monolithic vs. solver-farm TE solve comparison"
    )
    p.add_argument("--chains", type=int, default=64)
    p.add_argument("--vnfs", type=int, default=10)
    p.add_argument("--coverage", type=float, default=0.5)
    p.add_argument("--traffic", type=float, default=6000.0)
    p.add_argument("--site-capacity", type=float, default=20000.0)
    p.add_argument("--cities", type=int, default=14)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--partition-size", type=int, default=16)
    p.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width (1 = serial; decomposition alone "
        "already beats the monolithic solve)",
    )
    p.set_defaults(func=_cmd_scale)

    p = sub.add_parser(
        "federation",
        help="federated two-level control plane on a generated PoP topology",
    )
    p.add_argument("--pops", type=int, default=96,
                   help="generated PoPs (use 500 for the paper-scale run)")
    p.add_argument("--chains", type=int, default=384,
                   help="generated chains (use 100000 for full scale)")
    p.add_argument("--regions", type=int, default=4)
    p.add_argument("--metros", type=int, default=0,
                   help="metro clusters in the generator "
                   "(default: same as --regions)")
    p.add_argument("--locality", type=float, default=0.8,
                   help="probability a chain stays inside one metro")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--partition-size", type=int, default=16)
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width inside each regional farm")
    p.add_argument("--compare-monolithic", action="store_true",
                   help="also run the monolithic SolverFarm for "
                   "speedup and gap numbers")
    p.add_argument("--chaos-soak", action="store_true",
                   help="run the partition-tolerant deployment against a "
                        "seeded schedule of real link/partition/crash "
                        "faults (coordinator failover, durable ledgers, "
                        "degraded-mode regions)")
    p.add_argument("--duration", type=float, default=40.0,
                   help="simulated seconds of chaos-soak fault schedule")
    p.add_argument("--soak", type=int, default=0, metavar="OPS",
                   help="run the seeded fault-injection soak for OPS "
                   "operations instead of the timing comparison")
    p.add_argument("--reject-rate", type=float, default=0.15,
                   help="soak: regional prepare rejection probability")
    p.add_argument("--crash-rate", type=float, default=0.1,
                   help="soak: coordinator mid-install crash probability")
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", nargs="?", const="auto",
                   help="also write the JSON report to a file (bare --out "
                   "derives federation-report-seed<seed>.json)")
    p.set_defaults(func=_cmd_federation)

    p = sub.add_parser(
        "chaos", help="seeded fault-injection soak with invariant checking"
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--chains", type=int, default=8)
    p.add_argument("--partition", action="store_true",
                   help="include a network partition in the schedule")
    p.add_argument("--control-faults", action="store_true",
                   help="control-plane mix: live 2PC installs under "
                   "control-message loss and a mid-install GS crash")
    p.add_argument("--control-loss", type=float, default=0.2,
                   help="per-link control-message loss probability "
                   "during control_loss windows (default 0.2)")
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", nargs="?", const="auto",
                   help="also write the JSON report to a file (bare --out "
                   "derives chaos-report-seed<seed>.json)")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "fuzz",
        help="seeded scenario fuzzer with schedule minimization",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--cases", type=int, default=3,
                   help="composed cases to run (each derives from "
                   "--seed and its index)")
    p.add_argument("--budget", type=float, default=None, metavar="S",
                   help="wall-clock budget in seconds; no new case "
                   "starts once spent (nightly mode)")
    p.add_argument("--duration", type=float, default=16.0,
                   help="simulated seconds per composed schedule")
    p.add_argument("--stack", choices=("mono", "federation", "both"),
                   default="both")
    p.add_argument("--scenario", choices=FUZZ_SCENARIO_KINDS,
                   help="print one library scenario schedule and exit")
    p.add_argument("--replay", metavar="FILE",
                   help="replay a saved case / minimized repro / report "
                   "instead of fuzzing")
    p.add_argument("--plant", action="store_true",
                   help="self-test: plant a violation the probes must "
                   "catch and the minimizer must isolate")
    p.add_argument("--no-minimize", action="store_true",
                   help="skip delta-debugging violating schedules")
    p.add_argument("--known-good", metavar="FILE",
                   help="compare the run's digests against a committed "
                   "known-good file; exit 2 on mismatch")
    p.add_argument("--write-known-good", metavar="FILE",
                   help="write this run's digest skeleton for the "
                   "replay gate")
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", nargs="?", const="auto",
                   help="also write the JSON report to a file (bare "
                   "--out derives fuzz-report-seed<seed>.json)")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "bench",
        help="machine-readable benchmark runner with regression gating",
    )
    p.add_argument(
        "--suites",
        help="comma-separated suite names (default: every suite; "
        "see --list)",
    )
    p.add_argument("--list", action="store_true",
                   help="list available suites and exit")
    p.add_argument("--compare", action="store_true",
                   help="compare against committed baselines; exit 1 on "
                   "regression")
    p.add_argument("--update-baselines", action="store_true",
                   help="bless this run as the new baselines")
    p.add_argument("--out", help="directory for BENCH_<suite>.json "
                   "documents (default: current directory)")
    p.add_argument("--baselines", help="baseline store directory "
                   "(default: benchmarks/baselines)")
    p.add_argument("--bench-dir", help="benchmarks directory override")
    p.add_argument("--repeats", type=int,
                   help="timed repeats per suite (default: per-suite)")
    p.add_argument("--warmup", type=int,
                   help="discarded warmup iterations (default: per-suite)")
    p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
