"""Chain workload generation for the Section 7.3 simulations.

Reproduces the paper's simulation setup:

- cloud sites of homogeneous capacity colocated with backbone nodes;
- a catalog of VNF services, each deployed at a random fraction of sites
  (the *coverage* parameter);
- at each site, capacity divided equally among the VNF instances there;
- each VNF modelled by its compute cost per byte (*CPU/byte*);
- chains with randomly chosen ingress/egress, 3-5 VNFs drawn from the
  catalog and ordered by a canonical VNF order (firewalls before NATs
  etc.), and traffic proportional to the traffic at the ingress site;
- total traffic split 4:1 between Switchboard chains and background.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.model import Chain, CloudSite, NetworkModel, VNF
from repro.topology.backbone import Backbone, build_backbone
from repro.topology.cities import City, DEFAULT_CITIES
from repro.topology.traffic import (
    TrafficMatrix,
    apply_background,
    gravity_traffic_matrix,
    split_switchboard_background,
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a generated workload.

    The paper's headline simulation uses ``num_vnfs=100`` and
    ``num_chains=10000`` on the full AT&T backbone; the defaults here are
    sized for the LP to remain tractable on a laptop while preserving
    every trend (the benches note the scale-down).  ``total_traffic`` is
    the whole-network demand (Switchboard + background) in link-bandwidth
    units; ``site_capacity`` is ``m_s`` in compute-load units, where one
    unit of traffic through a CPU/byte=1 VNF consumes 2 load units (one
    receive + one send, per Equation 4).
    """

    num_vnfs: int = 20
    coverage: float = 0.5
    cpu_per_byte: float = 1.0
    num_chains: int = 100
    min_chain_length: int = 3
    max_chain_length: int = 5
    total_traffic: float = 500.0
    switchboard_share: float = 0.8  # the paper's 4:1 split
    reverse_ratio: float = 0.25
    site_capacity: float = 150.0
    mlu_limit: float = 1.0
    seed: int = 42
    cities: Sequence[City] = field(default=DEFAULT_CITIES)

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1]: {self.coverage}")
        if self.min_chain_length > self.max_chain_length:
            raise ValueError("min_chain_length > max_chain_length")
        if self.max_chain_length > self.num_vnfs:
            raise ValueError("chains cannot be longer than the VNF catalog")
        if self.num_chains < 1:
            raise ValueError("need at least one chain")


def place_vnfs(
    config: WorkloadConfig,
    site_names: Sequence[str],
    rng: random.Random,
) -> list[VNF]:
    """Create the VNF catalog with coverage-based random placement.

    Each VNF lands at ``max(1, round(coverage * num_sites))`` random
    sites; per-site VNF capacity is the site capacity divided equally
    among the VNF instances placed there (the paper's rule).
    """
    num_sites = max(1, round(config.coverage * len(site_names)))
    placements: dict[str, list[str]] = {}
    instances_per_site: dict[str, int] = {s: 0 for s in site_names}
    for i in range(config.num_vnfs):
        name = f"vnf{i:03d}"
        chosen = rng.sample(list(site_names), num_sites)
        placements[name] = chosen
        for site in chosen:
            instances_per_site[site] += 1

    vnfs = []
    for name, sites in placements.items():
        capacity = {
            site: config.site_capacity / instances_per_site[site]
            for site in sites
        }
        vnfs.append(VNF(name, config.cpu_per_byte, capacity))
    return vnfs


def generate_chains(
    config: WorkloadConfig,
    nodes: Sequence[str],
    vnf_names: Sequence[str],
    matrix: TrafficMatrix,
    rng: random.Random,
) -> list[Chain]:
    """Generate the chain workload.

    Chain VNF lists are random subsets of the catalog sorted by catalog
    position -- the paper's "pre-determined order of VNFs" that makes all
    chains consistent with typical VNF sequencing.
    """
    order = {name: i for i, name in enumerate(vnf_names)}
    switchboard_total = config.total_traffic * config.switchboard_share

    picks: list[tuple[str, str, list[str]]] = []
    weights: list[float] = []
    for _ in range(config.num_chains):
        ingress, egress = rng.sample(list(nodes), 2)
        length = rng.randint(config.min_chain_length, config.max_chain_length)
        vnfs = sorted(rng.sample(list(vnf_names), length), key=order.__getitem__)
        picks.append((ingress, egress, vnfs))
        weights.append(matrix.row_sum(ingress))

    total_weight = sum(weights) or 1.0
    # Forward + reverse demand together sum to the Switchboard share.
    demand_norm = switchboard_total / (total_weight * (1.0 + config.reverse_ratio))

    chains = []
    for i, ((ingress, egress, vnfs), weight) in enumerate(zip(picks, weights)):
        forward = weight * demand_norm
        chains.append(
            Chain(
                f"chain{i:05d}",
                ingress,
                egress,
                vnfs,
                forward_traffic=forward,
                reverse_traffic=forward * config.reverse_ratio,
            )
        )
    return chains


def generate_workload(
    config: WorkloadConfig | None = None,
    backbone: Backbone | None = None,
) -> NetworkModel:
    """Build the complete NetworkModel for a Section 7.3-style simulation."""
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)
    if backbone is None:
        backbone = build_backbone(config.cities)

    matrix = gravity_traffic_matrix(backbone.cities, config.total_traffic)
    switchboard_matrix, background_matrix = split_switchboard_background(
        matrix, config.switchboard_share
    )
    links = apply_background(backbone, background_matrix)

    sites = [
        CloudSite(f"S-{node}", node, config.site_capacity)
        for node in backbone.nodes
    ]
    site_names = [s.name for s in sites]
    vnfs = place_vnfs(config, site_names, rng)
    chains = generate_chains(
        config, backbone.nodes, [v.name for v in vnfs], switchboard_matrix, rng
    )

    return NetworkModel(
        nodes=backbone.nodes,
        latency=backbone.latency,
        sites=sites,
        vnfs=vnfs,
        chains=chains,
        links=links,
        routing=backbone.routing,
        mlu_limit=config.mlu_limit,
    )
