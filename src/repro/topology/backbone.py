"""Synthetic tier-1 backbone graph.

The backbone connects each PoP to its ``k`` nearest neighbours (plus a
few long-haul shortcuts between the largest metros, as real tier-1
backbones have), assigns heterogeneous link capacities, derives pairwise
node latencies from shortest fibre paths, and computes the ECMP
shortest-path routing fractions ``r_{n1 n2 e}`` consumed by the
Equation 6 network-cost constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Sequence

import networkx as nx

from repro.core.model import Link
from repro.topology.cities import City, DEFAULT_CITIES, fibre_delay_ms


@dataclass
class Backbone:
    """A built backbone: everything the NetworkModel's network section needs."""

    cities: tuple[City, ...]
    graph: nx.Graph
    #: (n1, n2) -> one-way delay in ms over the backbone's shortest path.
    latency: dict[tuple[str, str], float]
    #: Directed physical links.
    links: list[Link] = field(default_factory=list)
    #: (n1, n2) -> {link name: fraction} ECMP routing fractions.
    routing: dict[tuple[str, str], dict[str, float]] = field(default_factory=dict)

    @property
    def nodes(self) -> list[str]:
        return [c.name for c in self.cities]

    def link(self, name: str) -> Link:
        for link in self.links:
            if link.name == name:
                return link
        raise KeyError(name)

    def with_background(self, background: dict[str, float]) -> "Backbone":
        """Return a copy whose links carry the given background traffic."""
        links = [
            Link(link.name, link.src, link.dst, link.bandwidth, background.get(link.name, 0.0))
            for link in self.links
        ]
        return Backbone(self.cities, self.graph, self.latency, links, self.routing)


def build_backbone(
    cities: Sequence[City] = DEFAULT_CITIES,
    neighbours: int = 3,
    core_degree_threshold: int = 4,
    core_capacity: float = 400.0,
    edge_capacity: float = 100.0,
    long_haul_pairs: int = 4,
    ecmp=None,
) -> Backbone:
    """Build the synthetic backbone.

    Parameters
    ----------
    neighbours:
        Each city links to this many nearest neighbours.
    long_haul_pairs:
        Number of extra links between the largest metros (NYC-LAX style
        express routes) to keep coast-to-coast paths short.
    core_capacity / edge_capacity:
        Link bandwidths (abstract Gbps); links whose endpoints both have
        degree >= ``core_degree_threshold`` get core capacity.
    ecmp:
        Optional replacement for the default ECMP fraction computation
        (``graph -> routing dict``).  The default enumerates all
        shortest paths per pair, which is quadratic in paths and
        intractable beyond a few dozen PoPs;
        :func:`repro.topology.pops.ecmp_routing` is the equivalent
        path-counting implementation used for generated large
        topologies.
    """
    cities = tuple(cities)
    if len(cities) < 2:
        raise ValueError("backbone needs at least two cities")
    by_name = {c.name: c for c in cities}
    if len(by_name) != len(cities):
        raise ValueError("duplicate city names")

    graph = nx.Graph()
    for city in cities:
        graph.add_node(city.name)

    # k-nearest-neighbour mesh.
    for city in cities:
        others = sorted(
            (c for c in cities if c.name != city.name),
            key=partial(fibre_delay_ms, city),
        )
        for other in others[:neighbours]:
            graph.add_edge(
                city.name, other.name, delay=fibre_delay_ms(city, other)
            )

    # Long-haul shortcuts between the biggest metros.
    big = sorted(cities, key=lambda c: c.population_m, reverse=True)
    added = 0
    for i, a in enumerate(big):
        if added >= long_haul_pairs:
            break
        for b in big[i + 1:]:
            if added >= long_haul_pairs:
                break
            if not graph.has_edge(a.name, b.name) and fibre_delay_ms(a, b) > 8.0:
                graph.add_edge(a.name, b.name, delay=fibre_delay_ms(a, b))
                added += 1

    # Connect any stray components through their closest city pair.
    components = [list(c) for c in nx.connected_components(graph)]
    while len(components) > 1:
        first, rest = components[0], [n for c in components[1:] for n in c]
        best = min(
            ((a, b) for a in first for b in rest),
            key=lambda ab: fibre_delay_ms(by_name[ab[0]], by_name[ab[1]]),
        )
        graph.add_edge(
            best[0], best[1], delay=fibre_delay_ms(by_name[best[0]], by_name[best[1]])
        )
        components = [list(c) for c in nx.connected_components(graph)]

    # Directed links with heterogeneous capacities.
    links: list[Link] = []
    for a, b in graph.edges():
        is_core = (
            graph.degree[a] >= core_degree_threshold
            and graph.degree[b] >= core_degree_threshold
        )
        capacity = core_capacity if is_core else edge_capacity
        links.append(Link(f"{a}-{b}", a, b, capacity))
        links.append(Link(f"{b}-{a}", b, a, capacity))

    latency = _pairwise_latency(graph)
    routing = (ecmp or _ecmp_routing)(graph)
    return Backbone(cities, graph, latency, links, routing)


def _pairwise_latency(graph: nx.Graph) -> dict[tuple[str, str], float]:
    latency: dict[tuple[str, str], float] = {}
    lengths = dict(nx.all_pairs_dijkstra_path_length(graph, weight="delay"))
    for n1, targets in lengths.items():
        for n2, delay in targets.items():
            latency[(n1, n2)] = float(delay)
    return latency


def _ecmp_routing(graph: nx.Graph) -> dict[tuple[str, str], dict[str, float]]:
    """ECMP fractions: traffic between a node pair splits uniformly over
    all equal-cost shortest paths; a link's fraction is the share of
    paths using it (directed link names ``src-dst``)."""
    routing: dict[tuple[str, str], dict[str, float]] = {}
    for n1 in graph.nodes:
        for n2 in graph.nodes:
            if n1 == n2:
                continue
            paths = list(
                nx.all_shortest_paths(graph, n1, n2, weight="delay")
            )
            share = 1.0 / len(paths)
            fractions: dict[str, float] = {}
            for path in paths:
                for a, b in zip(path, path[1:]):
                    name = f"{a}-{b}"
                    fractions[name] = fractions.get(name, 0.0) + share
            routing[(n1, n2)] = fractions
    return routing
