"""Synthetic tier-1 backbone and workloads for the Section 7.3 simulations.

The paper's traffic-engineering evaluation uses the (proprietary) AT&T
backbone topology plus a March-2015 traffic-matrix snapshot.  This
package substitutes a synthetic continental-US backbone built from real
city locations and populations:

- :mod:`repro.topology.cities` -- the PoP city data (location,
  population) used as graph vertices and gravity-model masses.
- :mod:`repro.topology.backbone` -- the backbone graph: k-nearest-
  neighbour mesh with fibre-delay latencies, heterogeneous link
  capacities, and ECMP shortest-path routing fractions ``r_{n1 n2 e}``.
- :mod:`repro.topology.traffic` -- gravity-model traffic matrices and
  the 4:1 Switchboard:background split.
- :mod:`repro.topology.workload` -- the chain workload generator
  (VNF catalog with coverage-based placement, equal capacity division at
  sites, chains of 3-5 VNFs in canonical order, ingress-proportional
  demand).
"""

from repro.topology.backbone import Backbone, build_backbone
from repro.topology.cities import City, DEFAULT_CITIES
from repro.topology.timeseries import (
    TimeVaryingTrafficMatrix,
    diurnal_factor,
)
from repro.topology.traffic import TrafficMatrix, gravity_traffic_matrix
from repro.topology.workload import WorkloadConfig, generate_workload

__all__ = [
    "Backbone",
    "City",
    "DEFAULT_CITIES",
    "TimeVaryingTrafficMatrix",
    "TrafficMatrix",
    "WorkloadConfig",
    "build_backbone",
    "diurnal_factor",
    "generate_workload",
    "gravity_traffic_matrix",
]
