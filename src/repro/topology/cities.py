"""PoP city data for the synthetic tier-1 backbone.

Twenty-five continental-US metro areas commonly hosting tier-1 PoPs.
Coordinates are approximate city centres; populations are metro-area
figures (millions, rounded) used as gravity-model masses.  The absolute
values only shape the *skew* of the synthetic traffic matrix -- the
reproduction does not depend on them being current.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class City:
    """A backbone PoP location."""

    name: str
    lat: float
    lon: float
    population_m: float


DEFAULT_CITIES: tuple[City, ...] = (
    City("NYC", 40.71, -74.01, 19.8),
    City("LAX", 34.05, -118.24, 13.0),
    City("CHI", 41.88, -87.63, 9.6),
    City("DFW", 32.78, -96.80, 7.6),
    City("HOU", 29.76, -95.37, 7.1),
    City("WDC", 38.91, -77.04, 6.3),
    City("PHL", 39.95, -75.17, 6.2),
    City("MIA", 25.76, -80.19, 6.1),
    City("ATL", 33.75, -84.39, 6.1),
    City("BOS", 42.36, -71.06, 4.9),
    City("PHX", 33.45, -112.07, 4.9),
    City("SFO", 37.77, -122.42, 4.7),
    City("DET", 42.33, -83.05, 4.3),
    City("SEA", 47.61, -122.33, 4.0),
    City("MSP", 44.98, -93.27, 3.7),
    City("SAN", 32.72, -117.16, 3.3),
    City("TPA", 27.95, -82.46, 3.2),
    City("DEN", 39.74, -104.99, 3.0),
    City("STL", 38.63, -90.20, 2.8),
    City("CLT", 35.23, -80.84, 2.7),
    City("ORL", 28.54, -81.38, 2.7),
    City("SAT", 29.42, -98.49, 2.6),
    City("PDX", 45.52, -122.68, 2.5),
    City("SLC", 40.76, -111.89, 1.3),
    City("KCY", 39.10, -94.58, 2.2),
)


_EARTH_RADIUS_KM = 6371.0
#: Effective propagation speed in fibre, km per millisecond.
_FIBRE_KM_PER_MS = 200.0
#: Fibre paths are longer than great circles (routing/conduit detours).
_PATH_INFLATION = 1.3


def great_circle_km(a: City, b: City) -> float:
    """Great-circle distance between two cities in kilometres."""
    lat1, lon1, lat2, lon2 = map(
        math.radians, (a.lat, a.lon, b.lat, b.lon)
    )
    h = (
        math.sin((lat2 - lat1) / 2) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin((lon2 - lon1) / 2) ** 2
    )
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def fibre_delay_ms(a: City, b: City) -> float:
    """One-way propagation delay between two cities over fibre, in ms."""
    return great_circle_km(a, b) * _PATH_INFLATION / _FIBRE_KM_PER_MS
