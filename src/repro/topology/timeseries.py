"""Time-varying traffic matrices (the paper's first future-work item).

Section 7.3: "we plan to extend our network model to include
time-varying traffic matrices and design routing algorithms for it."

Backbone traffic follows a diurnal cycle in each node's *local* time:
demand peaks in the evening and bottoms out before dawn.  This module
provides the standard sinusoidal diurnal profile, per-city timezone
offsets derived from longitude, and a :class:`TimeVaryingTrafficMatrix`
that yields the gravity matrix modulated by each endpoint's local hour.
The re-optimization loop in :mod:`repro.controller.reoptimize` consumes
the resulting per-hour chain demand factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.topology.cities import City
from repro.topology.traffic import TrafficMatrix


def diurnal_factor(
    local_hour: float, peak_hour: float = 20.0, trough_ratio: float = 0.3
) -> float:
    """Demand multiplier at a local hour.

    A raised cosine peaking at ``peak_hour`` (multiplier 1.0) and
    bottoming out twelve hours later at ``trough_ratio``.
    """
    if not 0.0 < trough_ratio <= 1.0:
        raise ValueError(f"trough_ratio out of range: {trough_ratio}")
    phase = 2 * math.pi * (local_hour - peak_hour) / 24.0
    # cos(phase) is 1 at the peak and -1 at the trough.
    mid = (1.0 + trough_ratio) / 2.0
    amplitude = (1.0 - trough_ratio) / 2.0
    return mid + amplitude * math.cos(phase)


def timezone_offset_hours(city: City) -> float:
    """Approximate UTC offset from longitude (15 degrees per hour)."""
    return city.lon / 15.0


@dataclass
class TimeVaryingTrafficMatrix:
    """A base gravity matrix modulated by per-endpoint local time.

    The demand between two nodes at UTC hour ``h`` scales with the
    geometric mean of the two endpoints' diurnal factors -- traffic needs
    both ends awake.
    """

    base: TrafficMatrix
    cities: Sequence[City]
    peak_hour: float = 20.0
    trough_ratio: float = 0.3

    def __post_init__(self) -> None:
        self._offsets = {c.name: timezone_offset_hours(c) for c in self.cities}
        missing = set(self.base.nodes) - set(self._offsets)
        if missing:
            raise ValueError(f"no city data for nodes: {sorted(missing)}")

    def factor_at(self, node: str, utc_hour: float) -> float:
        """The diurnal factor of one node at a UTC hour."""
        local = (utc_hour + self._offsets[node]) % 24.0
        return diurnal_factor(local, self.peak_hour, self.trough_ratio)

    def matrix_at(self, utc_hour: float) -> TrafficMatrix:
        """The full matrix at a UTC hour."""
        demand = {}
        for (src, dst), volume in self.base.demand.items():
            scale = math.sqrt(
                self.factor_at(src, utc_hour) * self.factor_at(dst, utc_hour)
            )
            demand[(src, dst)] = volume * scale
        return TrafficMatrix(list(self.base.nodes), demand)

    def chain_demand_factors(
        self, ingress_nodes: dict[str, str], utc_hour: float
    ) -> dict[str, float]:
        """Per-chain demand multipliers at a UTC hour.

        The paper scales a chain's traffic with the traffic at its
        ingress site, so the factor is the ingress node's diurnal factor.
        """
        return {
            chain: self.factor_at(node, utc_hour)
            for chain, node in ingress_nodes.items()
        }

    def peak_to_trough_ratio(self, node: str) -> float:
        """Max/min demand factor over a day at one node (sanity metric)."""
        factors = [self.factor_at(node, h) for h in range(24)]
        return max(factors) / min(factors)
