"""Gravity-model traffic matrices.

The paper derives chain traffic volumes from a tier-1 backbone traffic
matrix snapshot and splits total traffic 4:1 between Switchboard chains
and background (transit) traffic.  We synthesize the matrix with the
standard gravity model: ``T[i][j] proportional to mass_i * mass_j``,
where the masses are metro populations.  The resulting matrix has the
heavy-tailed row sums the evaluation's "traffic proportional to the
traffic at the ingress site" rule depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.model import Link
from repro.topology.backbone import Backbone
from repro.topology.cities import City


@dataclass
class TrafficMatrix:
    """A demand matrix over named nodes (same units as link bandwidth)."""

    nodes: list[str]
    demand: dict[tuple[str, str], float]

    def row_sum(self, node: str) -> float:
        """Total traffic originating at ``node`` (the ingress weight)."""
        return sum(
            volume for (src, _dst), volume in self.demand.items() if src == node
        )

    def total(self) -> float:
        return sum(self.demand.values())

    def scaled(self, factor: float) -> "TrafficMatrix":
        return TrafficMatrix(
            list(self.nodes),
            {pair: v * factor for pair, v in self.demand.items()},
        )


def gravity_traffic_matrix(
    cities: Sequence[City], total_volume: float
) -> TrafficMatrix:
    """Build a gravity-model matrix normalized to ``total_volume``."""
    if total_volume < 0:
        raise ValueError(f"negative total volume {total_volume}")
    masses = {c.name: c.population_m for c in cities}
    raw: dict[tuple[str, str], float] = {}
    for a in cities:
        for b in cities:
            if a.name == b.name:
                continue
            raw[(a.name, b.name)] = masses[a.name] * masses[b.name]
    norm = sum(raw.values())
    demand = {pair: total_volume * v / norm for pair, v in raw.items()}
    return TrafficMatrix([c.name for c in cities], demand)


def split_switchboard_background(
    matrix: TrafficMatrix, switchboard_share: float = 0.8
) -> tuple[TrafficMatrix, TrafficMatrix]:
    """Split a matrix into Switchboard and background components.

    The paper divides traffic 4:1 (Switchboard:background), i.e. a 0.8
    Switchboard share.
    """
    if not 0.0 <= switchboard_share <= 1.0:
        raise ValueError(f"share out of range: {switchboard_share}")
    return (
        matrix.scaled(switchboard_share),
        matrix.scaled(1.0 - switchboard_share),
    )


def route_background(
    backbone: Backbone, background: TrafficMatrix
) -> dict[str, float]:
    """Route a background matrix over the backbone's ECMP fractions,
    returning per-link background volumes ``g_e``."""
    loads: dict[str, float] = {}
    for (n1, n2), volume in background.demand.items():
        for link_name, frac in backbone.routing.get((n1, n2), {}).items():
            loads[link_name] = loads.get(link_name, 0.0) + volume * frac
    return loads


def apply_background(
    backbone: Backbone,
    background: TrafficMatrix,
    clip_fraction: float | None = 0.6,
) -> list[Link]:
    """Backbone links with ``g_e`` filled in from a background matrix.

    ``clip_fraction`` caps each link's background at that fraction of its
    bandwidth -- a real operator's transit traffic is itself engineered
    to fit the network, whereas a raw gravity matrix is not.  Pass None
    to disable clipping.
    """
    loads = route_background(backbone, background)
    links = []
    for link in backbone.links:
        g = loads.get(link.name, 0.0)
        if clip_fraction is not None:
            g = min(g, clip_fraction * link.bandwidth)
        links.append(Link(link.name, link.src, link.dst, link.bandwidth, g))
    return links
