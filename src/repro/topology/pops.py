"""Generated large PoP topologies for the federation experiments.

The hand-curated 25-city backbone tops out far below the O(10k)-site
regime the federated control plane targets, so this module *generates*
continental-scale PoP sets: a configurable number of metro clusters
spread over the continental-US bounding box, each holding an equal share
of PoPs scattered around its centre.  The cluster structure is the
point -- it gives `repro.scale.shard_map` latency-coherent regions to
recover, makes most gravity-weighted demand intra-metro (the
``locality`` knob), and leaves a thin tail of cross-metro chains for the
:class:`repro.federation.GlobalCoordinator` to split at borders.

Two pieces are independently reusable:

- :func:`ecmp_routing` -- the path-counting equivalent of
  ``repro.topology.backbone._ecmp_routing``.  Instead of enumerating
  every shortest path per pair (quadratic in the path count, hours at
  500 PoPs), it computes per-source shortest-path DAGs and derives each
  link's fraction from path counts (``sigma[u] * tau[v][t] / sigma[t]``,
  the Brandes-style counting identity), which is ``O(n * m * n)`` in
  vectorized numpy and runs in seconds at 500 nodes.
- :func:`generate_federation_workload` -- the full 500-PoP / 100k-chain
  style :class:`~repro.core.model.NetworkModel` builder with
  locality-biased chains.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.model import Chain, CloudSite, NetworkModel
from repro.topology.backbone import Backbone, build_backbone
from repro.topology.cities import City, fibre_delay_ms
from repro.topology.traffic import (
    apply_background,
    gravity_traffic_matrix,
    split_switchboard_background,
)
from repro.topology.workload import WorkloadConfig, place_vnfs

#: Continental-US bounding box the metro centres are spread over.
_LAT_RANGE = (27.0, 47.5)
_LON_RANGE = (-122.5, -72.0)


def ecmp_routing(graph: nx.Graph, weight: str = "delay", link_name=None):
    """ECMP shortest-path fractions via path counting.

    Produces the same ``(n1, n2) -> {link_name: fraction}`` mapping as
    the enumeration in ``backbone._ecmp_routing`` (uniform split over
    all equal-cost shortest paths, directed link names ``src-dst``) but
    never materializes a path: for each source the shortest-path DAG is
    taken from :func:`networkx.dijkstra_predecessor_and_distance` (so
    equal-cost ties match networkx's own arithmetic), ``sigma[v]``
    counts paths source->v, ``tau[v][t]`` counts DAG paths v->t, and a
    DAG arc ``u->v`` carries ``sigma[u] * tau[v][t] / sigma[t]`` of the
    (source, t) traffic.

    ``link_name`` maps a directed arc ``(u, v)`` to the link's name
    (default ``f"{u}-{v}"``, the backbone convention); pass a callback
    when the graph's links are named differently.
    """
    if link_name is None:
        def link_name(u: str, v: str) -> str:
            return f"{u}-{v}"
    routing: dict[tuple[str, str], dict[str, float]] = {}
    for s in graph.nodes:
        pred, dist = nx.dijkstra_predecessor_and_distance(
            graph, s, weight=weight
        )
        order = sorted(dist, key=dist.get)  # increasing distance from s
        pos = {v: i for i, v in enumerate(order)}
        n = len(order)

        sigma = np.zeros(n)
        sigma[pos[s]] = 1.0
        succ: dict[str, list[str]] = {v: [] for v in order}
        for v in order:
            for u in pred[v]:
                sigma[pos[v]] += sigma[pos[u]]
                succ[u].append(v)

        # tau[i, j]: number of DAG paths from order[i] to order[j]
        # (including the empty path i == j).  Filled in decreasing
        # distance so successors are complete before their predecessors.
        tau = np.zeros((n, n))
        for v in reversed(order):
            row = tau[pos[v]]
            row[pos[v]] = 1.0
            for w in succ[v]:
                row += tau[pos[w]]

        for v in order:
            pv = pos[v]
            reach = np.nonzero(tau[pv])[0]
            for u in pred[v]:
                name = link_name(u, v)
                share = sigma[pos[u]] / sigma[reach]  # per-target frac
                fracs = share * tau[pv][reach]
                for j, frac in zip(reach, fracs):
                    t = order[j]
                    if t == s:
                        continue
                    pair = routing.setdefault((s, t), {})
                    pair[name] = pair.get(name, 0.0) + float(frac)
    return routing


@dataclass(frozen=True)
class PopGridConfig:
    """Parameters of a generated clustered PoP topology + workload.

    ``locality`` is the probability that a chain's ingress and egress
    fall in the same metro cluster; the remainder are cross-metro and
    become the federation's cross-shard workload.  The remaining knobs
    mirror :class:`~repro.topology.workload.WorkloadConfig` (the paper's
    Section 7.3 setup) at generated scale.
    """

    num_pops: int = 60
    num_metros: int = 4
    num_chains: int = 240
    num_vnfs: int = 20
    coverage: float = 0.5
    locality: float = 0.8
    min_chain_length: int = 3
    max_chain_length: int = 5
    total_traffic: float = 4000.0
    switchboard_share: float = 0.8
    reverse_ratio: float = 0.25
    site_capacity: float = 4000.0
    mlu_limit: float = 1.0
    neighbours: int = 3
    long_haul_pairs: int = 6
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_metros < 1 or self.num_pops < self.num_metros:
            raise ValueError("need at least one PoP per metro")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError(f"locality must be in [0, 1]: {self.locality}")


def generate_pop_cities(
    config: PopGridConfig,
) -> tuple[tuple[City, ...], dict[str, int]]:
    """Generate the clustered PoP set.

    Metro centres are picked greedily farthest-first from a seeded
    candidate pool (so they spread over the bounding box); PoPs are
    dealt round-robin to metros and scattered normally around their
    centre with heavy-tailed populations.  Returns the cities plus the
    ground-truth ``PoP name -> metro index`` map (used by the workload
    generator's locality rule and by tests; the federation itself
    derives its shard map from latencies alone).
    """
    rng = random.Random(config.seed)
    candidates = [
        (rng.uniform(*_LAT_RANGE), rng.uniform(*_LON_RANGE))
        for _ in range(max(24, 4 * config.num_metros))
    ]
    centres = [candidates[0]]
    while len(centres) < config.num_metros:
        centres.append(
            max(
                candidates,
                key=lambda c: min(
                    (c[0] - o[0]) ** 2 + (c[1] - o[1]) ** 2 for o in centres
                ),
            )
        )

    cities: list[City] = []
    metro_of: dict[str, int] = {}
    for i in range(config.num_pops):
        metro = i % config.num_metros
        lat, lon = centres[metro]
        name = f"P{i:04d}"
        cities.append(
            City(
                name,
                lat + rng.gauss(0.0, 1.1),
                lon + rng.gauss(0.0, 1.4),
                min(20.0, 0.3 + rng.paretovariate(1.2)),
            )
        )
        metro_of[name] = metro
    return tuple(cities), metro_of


def build_pop_backbone(
    cities: tuple[City, ...], config: PopGridConfig
) -> Backbone:
    """The standard backbone construction with path-counting ECMP."""
    return build_backbone(
        cities,
        neighbours=config.neighbours,
        long_haul_pairs=config.long_haul_pairs,
        ecmp=ecmp_routing,
    )


def _generate_local_chains(
    config: PopGridConfig,
    cities: tuple[City, ...],
    metro_of: dict[str, int],
    vnf_names: list[str],
    row_sums: dict[str, float],
    rng: random.Random,
) -> list[Chain]:
    """Locality-biased chains with gravity-weighted demand (the
    generate_chains rule plus the intra-metro endpoint bias)."""
    by_metro: dict[int, list[str]] = {}
    for city in cities:
        by_metro.setdefault(metro_of[city.name], []).append(city.name)
    nodes = [c.name for c in cities]
    order = {name: i for i, name in enumerate(vnf_names)}
    switchboard_total = config.total_traffic * config.switchboard_share

    picks: list[tuple[str, str, list[str]]] = []
    weights: list[float] = []
    for _ in range(config.num_chains):
        if rng.random() < config.locality or config.num_metros == 1:
            metro = rng.randrange(config.num_metros)
            pool = by_metro[metro]
            ingress, egress = (
                rng.sample(pool, 2) if len(pool) >= 2 else rng.sample(nodes, 2)
            )
        else:
            ingress, egress = rng.sample(nodes, 2)
            while metro_of[ingress] == metro_of[egress]:
                ingress, egress = rng.sample(nodes, 2)
        length = rng.randint(config.min_chain_length, config.max_chain_length)
        vnfs = sorted(rng.sample(vnf_names, length), key=order.__getitem__)
        picks.append((ingress, egress, vnfs))
        weights.append(row_sums[ingress])

    total_weight = sum(weights) or 1.0
    demand_norm = switchboard_total / (
        total_weight * (1.0 + config.reverse_ratio)
    )
    chains = []
    for i, ((ingress, egress, vnfs), weight) in enumerate(zip(picks, weights)):
        forward = weight * demand_norm
        chains.append(
            Chain(
                f"chain{i:06d}",
                ingress,
                egress,
                vnfs,
                forward_traffic=forward,
                reverse_traffic=forward * config.reverse_ratio,
            )
        )
    return chains


def generate_federation_workload(
    config: PopGridConfig | None = None,
    backbone: Backbone | None = None,
) -> tuple[NetworkModel, dict[str, int]]:
    """Build the complete generated-scale model.

    Returns ``(model, metro_of)`` -- the model plus the ground-truth
    metro assignment used for locality (informational; federation
    derives shards from the model alone).
    """
    config = config or PopGridConfig()
    rng = random.Random(config.seed)
    cities, metro_of = generate_pop_cities(config)
    if backbone is None:
        backbone = build_pop_backbone(cities, config)

    matrix = gravity_traffic_matrix(cities, config.total_traffic)
    switchboard_matrix, background_matrix = split_switchboard_background(
        matrix, config.switchboard_share
    )
    links = apply_background(backbone, background_matrix)
    # Row sums once (TrafficMatrix.row_sum is O(n^2) per call).
    row_sums: dict[str, float] = {c.name: 0.0 for c in cities}
    for (src, _dst), volume in switchboard_matrix.demand.items():
        row_sums[src] += volume

    sites = [
        CloudSite(f"S-{node}", node, config.site_capacity)
        for node in backbone.nodes
    ]
    workload_cfg = WorkloadConfig(
        num_vnfs=config.num_vnfs,
        coverage=config.coverage,
        num_chains=config.num_chains,
        site_capacity=config.site_capacity,
        seed=config.seed,
    )
    vnfs = place_vnfs(workload_cfg, [s.name for s in sites], rng)
    chains = _generate_local_chains(
        config, cities, metro_of, [v.name for v in vnfs], row_sums, rng
    )
    model = NetworkModel(
        nodes=backbone.nodes,
        latency=backbone.latency,
        sites=sites,
        vnfs=vnfs,
        chains=chains,
        links=links,
        routing=backbone.routing,
        mlu_limit=config.mlu_limit,
    )
    return model, metro_of


__all__ = [
    "PopGridConfig",
    "build_pop_backbone",
    "ecmp_routing",
    "generate_federation_workload",
    "generate_pop_cities",
]
