"""Reproduction of *Switchboard: A Middleware for Wide-Area Service Chaining*.

Middleware '19, Sharma et al.  The package is organized as one subpackage
per subsystem described in the paper:

- :mod:`repro.core` -- Global Switchboard traffic engineering (network
  model, SB-LP, SB-DP, baselines, capacity planning).
- :mod:`repro.simnet` -- discrete-event simulation substrate used by the
  control- and data-plane experiments.
- :mod:`repro.topology` -- synthetic tier-1 backbone and workload
  generators for the Section 7.3 simulations.
- :mod:`repro.dataplane` -- Switchboard forwarders: flow tables, labels,
  hierarchical load balancing, and the OVS/DPDK performance models.
- :mod:`repro.bus` -- the global publish/subscribe message bus and the
  full-mesh broadcast baseline.
- :mod:`repro.edge` / :mod:`repro.vnf` -- edge and VNF platform services.
- :mod:`repro.controller` -- Global/Local Switchboard controllers and the
  chain-installation protocol (two-phase commit).
"""

__version__ = "1.0.0"

from repro.core.model import (
    Chain,
    CloudSite,
    Link,
    NetworkModel,
    VNF,
)

__all__ = [
    "Chain",
    "CloudSite",
    "Link",
    "NetworkModel",
    "VNF",
    "__version__",
]
