"""repro.federation: sharded two-level switchboard hierarchy.

A federated control plane for O(10k) sites and 100k+ chains: the
substrate is cut into latency-coherent shards (``shard``), each owned
by a :class:`RegionalSwitchboard` running the full columnar solver
stack over its region alone (``regional``), with a thin
:class:`GlobalCoordinator` (``coordinator``) that only handles chains
crossing the cut -- splitting them at border sites, installing the
segments with epoch-fenced two-phase commit against per-border
capacity ledgers, and stitching the committed segments back into
end-to-end paths.  ``invariants`` holds the safety probes and ``soak``
the seeded fault-injection harness.

The partition-tolerant deployment lives in three further modules:
``ha`` (durable chain checkpoints, the install WAL, border-ledger
checkpoints, and lease-based coordinator failover), ``nodes`` (the
coordinator and regional processes speaking the 2PC and
reconciliation protocol over the reliable RPC transport), and
``chaos`` (the seeded federated chaos soak driving real link, host,
and partition faults against that stack).
"""

from repro.federation.chaos import (
    FederationChaosConfig,
    FederationChaosReport,
    build_federation_deployment,
    generate_federation_scenario,
    run_federation_chaos,
)
from repro.federation.coordinator import (
    CoordinatorCrash,
    CrossChainRecord,
    FederatedPlan,
    GlobalCoordinator,
)
from repro.federation.ha import FederationFailover, FederationStore
from repro.federation.invariants import (
    check_all,
    check_atomicity,
    check_capacity_safety,
    check_ledger_consistency,
    check_no_lost_requests,
    check_quiescence,
    check_single_active,
    check_stitching,
    federation_probes,
)
from repro.federation.nodes import CoordinatorNode, RegionalNode
from repro.federation.regional import (
    BorderLedger,
    RegionalSwitchboard,
    SegmentSpec,
    trivial_segment,
)
from repro.federation.shard import (
    BorderLink,
    FederationError,
    ShardMap,
    SubstrateShard,
    build_shards,
)
from repro.federation.soak import FaultPolicy, run_soak

__all__ = [
    "BorderLedger",
    "BorderLink",
    "CoordinatorCrash",
    "CoordinatorNode",
    "CrossChainRecord",
    "FaultPolicy",
    "FederatedPlan",
    "FederationChaosConfig",
    "FederationChaosReport",
    "FederationError",
    "FederationFailover",
    "FederationStore",
    "GlobalCoordinator",
    "RegionalNode",
    "RegionalSwitchboard",
    "SegmentSpec",
    "ShardMap",
    "SubstrateShard",
    "build_federation_deployment",
    "build_shards",
    "check_all",
    "check_atomicity",
    "check_capacity_safety",
    "check_ledger_consistency",
    "check_no_lost_requests",
    "check_quiescence",
    "check_single_active",
    "check_stitching",
    "federation_probes",
    "generate_federation_scenario",
    "run_federation_chaos",
    "run_soak",
    "trivial_segment",
]
