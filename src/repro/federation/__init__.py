"""repro.federation: sharded two-level switchboard hierarchy.

A federated control plane for O(10k) sites and 100k+ chains: the
substrate is cut into latency-coherent shards (``shard``), each owned
by a :class:`RegionalSwitchboard` running the full columnar solver
stack over its region alone (``regional``), with a thin
:class:`GlobalCoordinator` (``coordinator``) that only handles chains
crossing the cut -- splitting them at border sites, installing the
segments with epoch-fenced two-phase commit against per-border
capacity ledgers, and stitching the committed segments back into
end-to-end paths.  ``invariants`` holds the safety probes and ``soak``
the seeded fault-injection harness.
"""

from repro.federation.coordinator import (
    CoordinatorCrash,
    CrossChainRecord,
    FederatedPlan,
    GlobalCoordinator,
)
from repro.federation.invariants import (
    check_all,
    check_atomicity,
    check_capacity_safety,
    check_quiescence,
    check_stitching,
)
from repro.federation.regional import (
    BorderLedger,
    RegionalSwitchboard,
    SegmentSpec,
    trivial_segment,
)
from repro.federation.shard import (
    BorderLink,
    FederationError,
    ShardMap,
    SubstrateShard,
    build_shards,
)
from repro.federation.soak import FaultPolicy, run_soak

__all__ = [
    "BorderLedger",
    "BorderLink",
    "CoordinatorCrash",
    "CrossChainRecord",
    "FaultPolicy",
    "FederatedPlan",
    "FederationError",
    "GlobalCoordinator",
    "RegionalSwitchboard",
    "SegmentSpec",
    "ShardMap",
    "SubstrateShard",
    "build_shards",
    "check_all",
    "check_atomicity",
    "check_capacity_safety",
    "check_quiescence",
    "check_stitching",
    "run_soak",
    "trivial_segment",
]
