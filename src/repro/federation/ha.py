"""Durable state and failover for the federated coordinator.

The sync :class:`~repro.federation.GlobalCoordinator` keeps its record
of installed chains in memory; a crash loses it even though the
regional switchboards (the ground truth) survive.  This module gives
the *deployed* coordinator (``federation.nodes.CoordinatorNode``) the
PR 4 durability recipe, specialized to the federation:

- :class:`FederationStore` -- a typed facade over the quorum
  :class:`~repro.controller.replication.ReplicatedStore` holding three
  kinds of record:

  * **chain checkpoints** (``/fed/intra/``, ``/fed/cross/``): every
    installed chain, written at the 2PC decide point, before any
    commit message leaves the coordinator;
  * **an install WAL** (``/fed/wal/``): one entry per in-flight
    cross-shard install, flipped from ``preparing`` to ``committing``
    at the decide point -- the commit point of the protocol.  A
    standby that takes over aborts every ``preparing`` entry (its 2PC
    outcome is unknown; the regions' epoch fences make the abort safe)
    and re-drives every ``committing`` entry (the durable record
    proves the capacity is owned);
  * **border-ledger checkpoints** (``/fed/ledgers/``): the per-region
    committed ledger image derived from the cross-chain records, so a
    takeover can reconcile each region's
    :class:`~repro.federation.regional.BorderLedger` against what the
    store says should be reserved.

- :class:`FederationFailover` -- the lease-based election loop
  (mirroring :class:`~repro.resilience.failover.FailoverManager`):
  while the active coordinator's host is up it renews the leader
  lease; when it dies, the standby waits out the lease, acquires it,
  and activates with recovery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.model import Chain
from repro.federation.coordinator import CrossChainRecord
from repro.federation.regional import SegmentSpec
from repro.controller.replication import ReplicatedStore, ReplicationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.invariants import LeaseMonitor
    from repro.federation.nodes import CoordinatorNode
    from repro.obs.registry import MetricsRegistry
    from repro.simnet.network import SimNetwork

_INTRA_PREFIX = "/fed/intra/"
_CROSS_PREFIX = "/fed/cross/"
_WAL_PREFIX = "/fed/wal/"
_LEDGER_PREFIX = "/fed/ledgers/"
_ATTEMPT_KEY = "/fed/attempt"


# ---------------------------------------------------------------------------
# Plain-data (de)serialization: Chain / SegmentSpec <-> store documents
# ---------------------------------------------------------------------------


def chain_doc(chain: Chain) -> dict:
    return {
        "name": chain.name,
        "ingress": chain.ingress,
        "egress": chain.egress,
        "vnfs": list(chain.vnfs),
        "forward": list(chain.forward_traffic),
        "reverse": list(chain.reverse_traffic),
    }


def chain_from_doc(doc: dict) -> Chain:
    return Chain(
        doc["name"],
        doc["ingress"],
        doc["egress"],
        doc["vnfs"],
        tuple(doc["forward"]),
        tuple(doc["reverse"]),
    )


def segment_doc(seg: SegmentSpec) -> dict:
    return {
        "origin": seg.origin,
        "index": seg.index,
        "region": seg.region,
        "chain": chain_doc(seg.chain),
        "border_demands": [list(bd) for bd in seg.border_demands],
    }


def segment_from_doc(doc: dict) -> SegmentSpec:
    return SegmentSpec(
        origin=doc["origin"],
        index=doc["index"],
        region=doc["region"],
        chain=chain_from_doc(doc["chain"]),
        border_demands=tuple(
            (link, amount) for link, amount in doc["border_demands"]
        ),
    )


class FederationStore:
    """Typed durable-state facade for the deployed coordinator.

    Every write is quorum-replicated through the underlying store; a
    write that loses its quorum raises
    :class:`~repro.controller.replication.ReplicationError` out of the
    caller (the chaos deployments keep the store replicas on the core
    site, so partitions between coordinator and regions never cost the
    quorum -- exactly the MUSIC deployment the paper sketches)."""

    def __init__(self, store: ReplicatedStore):
        self.store = store

    # -- chain checkpoints -------------------------------------------------

    def checkpoint_intra(self, name: str, region: int, chain: Chain) -> None:
        self.store.put(
            _INTRA_PREFIX + name,
            {"region": region, "chain": chain_doc(chain)},
        )

    def checkpoint_cross(self, record: CrossChainRecord) -> None:
        self.store.put(
            _CROSS_PREFIX + record.chain.name,
            {
                "attempt": record.attempt,
                "chain": chain_doc(record.chain),
                "segments": [segment_doc(seg) for seg in record.segments],
            },
        )

    def remove_chain(self, name: str) -> None:
        self.store.delete(_INTRA_PREFIX + name)
        self.store.delete(_CROSS_PREFIX + name)

    def restore(self) -> tuple[dict[str, tuple[int, Chain]],
                               dict[str, CrossChainRecord]]:
        """Rebuild every checkpointed chain record (standby takeover)."""
        intra: dict[str, tuple[int, Chain]] = {}
        for key in self.store.keys(_INTRA_PREFIX):
            doc = self.store.get(key)
            if doc is None:
                continue
            name = key[len(_INTRA_PREFIX):]
            intra[name] = (doc["region"], chain_from_doc(doc["chain"]))
        cross: dict[str, CrossChainRecord] = {}
        for key in self.store.keys(_CROSS_PREFIX):
            doc = self.store.get(key)
            if doc is None:
                continue
            name = key[len(_CROSS_PREFIX):]
            cross[name] = CrossChainRecord(
                chain_from_doc(doc["chain"]),
                tuple(segment_from_doc(s) for s in doc["segments"]),
                doc["attempt"],
            )
        return intra, cross

    # -- install WAL -------------------------------------------------------

    def wal_begin(
        self,
        name: str,
        origin: int,
        attempt: int,
        segments: tuple[SegmentSpec, ...],
    ) -> None:
        """Record a 2PC round before its first prepare leaves."""
        self.note_attempt(attempt)
        self.store.put(
            _WAL_PREFIX + name,
            {
                "phase": "preparing",
                "origin": origin,
                "attempt": attempt,
                "segments": [segment_doc(seg) for seg in segments],
            },
        )

    def note_attempt(self, attempt: int) -> None:
        """Track the attempt-counter high-water mark, so a takeover
        resumes above every epoch the old coordinator fenced with."""
        doc = self.store.get(_ATTEMPT_KEY)
        if doc is None or doc["attempt"] < attempt:
            self.store.put(_ATTEMPT_KEY, {"attempt": attempt})

    def last_attempt(self) -> int:
        doc = self.store.get(_ATTEMPT_KEY)
        return 0 if doc is None else doc["attempt"]

    def wal_decide(self, name: str) -> None:
        """Flip an install to ``committing`` -- the 2PC commit point."""
        doc = self.store.get(_WAL_PREFIX + name)
        if doc is not None:
            self.store.put(_WAL_PREFIX + name, dict(doc, phase="committing"))

    def wal_clear(self, name: str) -> None:
        self.store.delete(_WAL_PREFIX + name)

    def pending_wal(self) -> dict[str, dict]:
        """Every in-flight install the previous coordinator left behind:
        name -> {phase, origin, attempt, segments}."""
        entries: dict[str, dict] = {}
        for key in self.store.keys(_WAL_PREFIX):
            doc = self.store.get(key)
            if doc is None:
                continue
            entries[key[len(_WAL_PREFIX):]] = {
                "phase": doc["phase"],
                "origin": doc["origin"],
                "attempt": doc["attempt"],
                "segments": [
                    segment_from_doc(s) for s in doc["segments"]
                ],
            }
        return entries

    # -- border-ledger checkpoints ----------------------------------------

    def checkpoint_ledgers(
        self, cross: dict[str, CrossChainRecord]
    ) -> None:
        """Persist the committed border-ledger image implied by the
        cross-chain records (called whenever they change)."""
        per_region: dict[int, dict[str, dict[str, float]]] = {}
        for record in cross.values():
            for seg in record.segments:
                for link_name, amount in seg.border_demands:
                    per_region.setdefault(seg.region, {}).setdefault(
                        link_name, {}
                    )[seg.chain.name] = amount
        self.store.put(
            _LEDGER_PREFIX + "committed",
            {str(r): links for r, links in sorted(per_region.items())},
        )

    def ledger_checkpoints(self) -> dict[int, dict[str, dict[str, float]]]:
        """region -> link -> segment key -> committed amount."""
        doc = self.store.get(_LEDGER_PREFIX + "committed")
        if doc is None:
            return {}
        return {int(r): links for r, links in doc.items()}


class FederationFailover:
    """Keeps exactly one coordinator node active, via the leader lease.

    The federation analogue of
    :class:`~repro.resilience.failover.FailoverManager`: candidates are
    :class:`~repro.federation.nodes.CoordinatorNode` instances in
    priority order; the tick renews the active node's lease while its
    host is up, and elects + activates (with recovery) the first live
    standby once the dead leader's lease expires.
    """

    def __init__(
        self,
        nodes: "dict[str, CoordinatorNode]",
        store: ReplicatedStore,
        net: "SimNetwork",
        monitor: "LeaseMonitor | None" = None,
        lease_duration_s: float = 2.0,
        check_interval_s: float = 0.5,
        metrics: "MetricsRegistry | None" = None,
    ):
        if not nodes:
            raise ValueError("need at least one coordinator candidate")
        self.nodes = dict(nodes)
        self.order = list(nodes)
        self.store = store
        self.net = net
        self.monitor = monitor
        self.lease_duration_s = lease_duration_s
        self.check_interval_s = check_interval_s
        self.metrics = metrics
        self.takeovers = 0
        self.takeover_times: list[float] = []
        self.dead: set[str] = set()
        self.active_name = self.order[0]
        self.nodes[self.active_name].activate(recover=False)
        if metrics is not None:
            metrics.counter("federation.failovers")

    @property
    def active(self) -> "CoordinatorNode":
        return self.nodes[self.active_name]

    def mark_dead(self, name: str) -> None:
        self.dead.add(name)
        self.nodes[name].deactivate()

    def revive(self, name: str) -> None:
        self.dead.discard(name)

    def crash_active(self) -> str:
        """Chaos helper: kill the active coordinator process + host."""
        name = self.active_name
        self.mark_dead(name)
        if self.net.host_is_up(self.nodes[name].host):
            self.net.crash_host(self.nodes[name].host)
        return name

    # -- the election/renewal loop ----------------------------------------

    def start(self, until: float) -> None:
        self._tick(until)

    def _tick(self, until: float) -> None:
        self.check()
        sim = self.net.sim
        if sim.now + self.check_interval_s <= until:
            sim.schedule(self.check_interval_s, self._tick, until)

    def check(self) -> None:
        now = self.net.sim.now
        active = self.nodes[self.active_name]
        if self.active_name not in self.dead and self.net.host_is_up(
            active.host
        ):
            self._acquire(self.active_name, now)
            return
        if active.active:
            active.deactivate()
        standby = next(
            (
                name
                for name in self.order
                if name not in self.dead
                and self.net.host_is_up(self.nodes[name].host)
            ),
            None,
        )
        if standby is None:
            return  # nobody left to lead
        if self._leader(now) is not None:
            return  # the dead leader's lease has not expired yet
        if self._acquire(standby, now):
            self.take_over(standby)

    def _acquire(self, owner: str, now: float) -> bool:
        if self.monitor is not None:
            return self.monitor.acquire(owner, now, self.lease_duration_s)
        try:
            return self.store.acquire_lease(owner, now, self.lease_duration_s)
        except ReplicationError:
            return False

    def _leader(self, now: float) -> str | None:
        if self.monitor is not None:
            return self.monitor.leader(now)
        try:
            return self.store.leader(now)
        except ReplicationError:
            return None

    def take_over(self, name: str) -> None:
        """Activate a standby: restore checkpoints, settle the WAL,
        reconcile every region."""
        self.takeovers += 1
        self.takeover_times.append(self.net.sim.now)
        if self.metrics is not None:
            self.metrics.counter("federation.failovers").inc()
        self.active_name = name
        self.nodes[name].activate(recover=True)


__all__ = [
    "FederationFailover",
    "FederationStore",
    "chain_doc",
    "chain_from_doc",
    "segment_doc",
    "segment_from_doc",
]
