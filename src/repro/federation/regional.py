"""The regional switchboard: one shard's planner and 2PC participant.

A ``RegionalSwitchboard`` owns everything inside its shard: the
regional :class:`~repro.core.model.NetworkModel`, a
:class:`~repro.scale.SolverFarm` over it (the PR 6 columnar solver
stack -- partitioned, cached, incremental), and the *ledgers* of the
border links it owns (a border link belongs to its source-side region).

Intra-shard chains are admitted directly (:meth:`admit`) -- the
regional LP is their single planner, exactly as the monolithic
Switchboard was for the whole network.

Cross-shard chain *segments* arrive through the 2PC participant
surface, which mirrors the epoch-fenced protocol of
``controller.protocol`` / ``vnf.service``:

- :meth:`prepare` validates the segment (VNFs deployable, endpoints
  reachable, aggregate compute headroom) and reserves capacity on
  every owned border link the coordinator's crossing plan touches.
  Idempotent; rejects cleanly without partial state.
- :meth:`commit` / :meth:`abort` settle the reservation; both filter
  stale attempts through the per-segment epoch.
- :meth:`teardown` removes all segment state and leaves a tombstone
  epoch (``1 << 30``), permanently fencing late prepares or commits
  from an aborted install -- the same trick
  ``BusDrivenInstaller.send_teardown`` uses for VNF participants.

The border-capacity contract: ``sum(prepared) + sum(committed)`` on a
ledger never exceeds the link's headroom; the regional LP never sees
border links at all, so ledger bounds and per-region LP feasibility
compose into end-to-end capacity safety.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.lp import LpObjective
from repro.core.model import Chain, ModelError, NetworkModel
from repro.federation.shard import BorderLink, FederationError
from repro.scale.cache import SolutionCache
from repro.scale.farm import FarmResult, SolverFarm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

_EPS = 1e-9
#: Tombstone epoch: fences every later message for a torn-down segment.
_TOMBSTONE = 1 << 30


def trivial_segment(chain: Chain) -> bool:
    """A degenerate transit segment: no VNFs and a single node.

    It consumes no intra-region capacity (the crossing demand is
    accounted on the border ledgers), so it never enters the regional
    LP; 2PC still tracks it for uniform commit/abort semantics."""
    return not chain.vnfs and chain.ingress == chain.egress


class BorderLedger:
    """2PC capacity ledger for one owned border link.

    The in-region analogue of ``VnfService``'s reservation ledger:
    idempotent prepare/commit/abort/teardown keyed by segment name,
    with the committed ledger authoritative for release.
    """

    def __init__(self, link_name: str, capacity: float):
        self.link_name = link_name
        self.capacity = capacity
        self.prepared: dict[str, float] = {}
        self.committed: dict[str, float] = {}

    def reserved(self) -> float:
        return sum(self.prepared.values()) + sum(self.committed.values())

    def available(self) -> float:
        return self.capacity - self.reserved()

    def prepare(self, segment: str, amount: float) -> bool:
        if segment in self.committed:
            return False
        existing = self.prepared.get(segment, 0.0)
        if amount - existing > self.available() + _EPS:
            return False
        self.prepared[segment] = amount
        return True

    def commit(self, segment: str) -> bool:
        if segment in self.committed:
            return True
        if segment not in self.prepared:
            return False
        self.committed[segment] = self.prepared.pop(segment)
        return True

    def abort(self, segment: str) -> None:
        self.prepared.pop(segment, None)

    def teardown(self, segment: str) -> None:
        self.prepared.pop(segment, None)
        self.committed.pop(segment, None)

    def fits_update(self, segment: str, amount: float) -> bool:
        """Would :meth:`update_committed` succeed?  (Pre-check so a
        multi-segment demand refresh can validate before mutating.)"""
        if segment not in self.committed:
            return False
        return amount - self.committed[segment] <= self.available() + _EPS

    def update_committed(self, segment: str, amount: float) -> bool:
        """Resize a committed reservation (demand-only re-optimization).

        Fails without side effects when the increase does not fit."""
        if not self.fits_update(segment, amount):
            return False
        self.committed[segment] = amount
        return True


@dataclass(frozen=True)
class SegmentSpec:
    """One region's slice of a cross-shard chain, as sent in prepare.

    ``border_demands`` lists the reservations this region's *owned*
    ledgers must take for the crossings that exit this segment.
    """

    origin: str
    index: int
    region: int
    chain: Chain
    border_demands: tuple[tuple[str, float], ...] = ()


class RegionalSwitchboard:
    """Planner, installer, and reoptimizer for one substrate shard."""

    def __init__(
        self,
        region: int,
        model: NetworkModel,
        owned_borders: list[BorderLink],
        partition_size: int | None = 16,
        max_workers: int = 1,
        cache: SolutionCache | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.region = region
        self.model = model
        self.metrics = metrics
        self.farm = SolverFarm(
            partition_size=partition_size,
            max_workers=max_workers,
            cache=cache,
            metrics=metrics,
        )
        self.ledgers: dict[str, BorderLedger] = {
            b.name: BorderLedger(b.name, b.capacity) for b in owned_borders
        }
        #: Highest attempt seen per segment name (tombstone on teardown).
        self._epochs: dict[str, int] = {}
        self._prepared: dict[str, SegmentSpec] = {}
        self._committed: dict[str, SegmentSpec] = {}
        self._intra: set[str] = set()
        #: Aggregate compute admission bookkeeping per VNF.
        self._vnf_admitted: dict[str, float] = {}
        self._chain_loads: dict[str, dict[str, float]] = {}
        #: Bumped on every regional-model mutation; the coordinator
        #: only reuses a cached plan taken at the same generation.
        self.generation = 0

    # -- intra-shard chains ----------------------------------------------

    def admit(self, chain: Chain) -> None:
        """Admit an intra-shard chain (the regional LP is its planner)."""
        self.model.add_chain(chain)
        self._intra.add(chain.name)
        self._track_loads(chain)
        self.generation += 1

    def evict(self, name: str) -> None:
        if name not in self._intra:
            raise FederationError(
                f"region {self.region}: {name!r} is not an intra chain"
            )
        self.model.remove_chain(name)
        self._intra.discard(name)
        self._untrack_loads(name)
        self.generation += 1

    def update_demand(self, chain: Chain) -> None:
        """Refresh an admitted chain's demands (structure unchanged)."""
        if chain.name not in self.model.chains:
            raise FederationError(
                f"region {self.region}: unknown chain {chain.name!r}"
            )
        self.model.remove_chain(chain.name)
        self.model.add_chain(chain)
        self._untrack_loads(chain.name)
        self._track_loads(chain)
        self.generation += 1

    # -- 2PC participant surface -----------------------------------------

    def prepare(self, seg: SegmentSpec, attempt: int) -> bool:
        """Phase 1: validate and reserve.  Idempotent per attempt;
        stale attempts (older than the segment's epoch) are fenced."""
        key = seg.chain.name
        epoch = self._epochs.get(key, 0)
        if attempt < epoch:
            return False
        self._epochs[key] = attempt
        if key in self._committed:
            return False
        held = self._prepared.get(key)
        if held is not None:
            if held == seg:
                return True
            # A *newer* round re-prepares with a different spec (e.g. a
            # retry whose abort never reached us before the partition
            # healed).  The fencing above guarantees the old round can
            # never commit, so release its reservation and fall through
            # to re-validate the new spec.
            self._release_prepared(key)
        if not self._admissible(seg):
            return False
        taken: list[str] = []
        for link_name, amount in seg.border_demands:
            ledger = self.ledgers.get(link_name)
            if ledger is None or not ledger.prepare(key, amount):
                for name in taken:
                    self.ledgers[name].abort(key)
                return False
            taken.append(link_name)
        if not trivial_segment(seg.chain):
            self.model.add_chain(seg.chain)
            self._track_loads(seg.chain)
            self.generation += 1
        self._prepared[key] = seg
        return True

    def commit(self, key: str, attempt: int) -> bool:
        """Phase 2: make a prepared segment durable."""
        if attempt < self._epochs.get(key, 0):
            return False
        if key in self._committed:
            return True
        seg = self._prepared.pop(key, None)
        if seg is None:
            return False
        for link_name, _amount in seg.border_demands:
            self.ledgers[link_name].commit(key)
        self._committed[key] = seg
        return True

    def abort(self, key: str, attempt: int) -> bool:
        """Roll back a prepared (uncommitted) segment."""
        if attempt < self._epochs.get(key, 0):
            return False
        return self._release_prepared(key)

    def _release_prepared(self, key: str) -> bool:
        """Drop a prepared segment's reservation and model state."""
        seg = self._prepared.pop(key, None)
        if seg is None:
            return False
        for link_name, _amount in seg.border_demands:
            self.ledgers[link_name].abort(key)
        if key in self.model.chains:
            self.model.remove_chain(key)
            self.generation += 1
        self._untrack_loads(key)
        return True

    def teardown(self, key: str) -> None:
        """Drop *all* state for a segment and fence it permanently."""
        self._epochs[key] = _TOMBSTONE
        self._prepared.pop(key, None)
        self._committed.pop(key, None)
        for ledger in self.ledgers.values():
            ledger.teardown(key)
        if key in self.model.chains:
            self.model.remove_chain(key)
            self.generation += 1
        self._untrack_loads(key)

    def update_segment(self, seg: SegmentSpec) -> None:
        """Refresh a committed segment's demands (re-optimization)."""
        key = seg.chain.name
        if key not in self._committed:
            raise FederationError(
                f"region {self.region}: segment {key!r} is not committed"
            )
        for link_name, amount in seg.border_demands:
            if not self.ledgers[link_name].update_committed(key, amount):
                raise FederationError(
                    f"region {self.region}: border {link_name!r} cannot "
                    f"fit the new demand of {key!r}"
                )
        if key in self.model.chains:
            self.model.remove_chain(key)
        self._untrack_loads(key)
        if not trivial_segment(seg.chain):
            self.model.add_chain(seg.chain)
            self._track_loads(seg.chain)
        self.generation += 1
        self._committed[key] = seg

    # -- reconciliation surface (failover / restart recovery) --------------

    def adopt_segment(self, seg: SegmentSpec, attempt: int) -> None:
        """Authoritatively (re-)install a *committed* segment.

        Used by the reconciliation protocol: the coordinator's durable
        checkpoint says this segment is committed, so make the local
        state match regardless of what this process remembers (it may
        have restarted and lost everything, or hold a stale prepared
        round).  Unconditional, unlike :meth:`prepare`/:meth:`commit` --
        reconciliation is the authority, not a 2PC round."""
        key = seg.chain.name
        self._epochs[key] = max(self._epochs.get(key, 0), attempt)
        self._release_prepared(key)
        if key in self._committed:
            held = self._committed[key]
            if held == seg:
                return
            # Demand/spec drift: rebuild from the authoritative copy.
            for ledger in self.ledgers.values():
                ledger.teardown(key)
            if key in self.model.chains:
                self.model.remove_chain(key)
            self._untrack_loads(key)
            del self._committed[key]
        for link_name, amount in seg.border_demands:
            ledger = self.ledgers.get(link_name)
            if ledger is None:
                raise FederationError(
                    f"region {self.region}: adopt of {key!r} names "
                    f"unknown border {link_name!r}"
                )
            ledger.prepared.pop(key, None)
            ledger.committed[key] = amount
        if not trivial_segment(seg.chain) and key not in self.model.chains:
            self.model.add_chain(seg.chain)
            self._track_loads(seg.chain)
        self._committed[key] = seg
        self.generation += 1

    def adopt_intra(self, chain: Chain) -> None:
        """Re-admit an intra chain from a checkpoint (idempotent)."""
        if chain.name in self._intra:
            return
        self.admit(chain)

    def reset(self) -> None:
        """Forget *everything* -- a regional process restart.

        Ledger capacities survive (they are substrate facts) but every
        reservation, admitted chain, and epoch is volatile state that a
        restarted process no longer remembers.  The reconciliation
        protocol rebuilds committed segments and intra chains from the
        coordinator's durable checkpoints afterwards."""
        for name in list(self.model.chains):
            self.model.remove_chain(name)
        self._prepared.clear()
        self._committed.clear()
        self._intra.clear()
        self._epochs.clear()
        self._vnf_admitted.clear()
        self._chain_loads.clear()
        for ledger in self.ledgers.values():
            ledger.prepared.clear()
            ledger.committed.clear()
        self.generation += 1

    def sweep(self) -> list[str]:
        """Backstop GC: release every prepared-but-uncommitted segment.

        The coordinator calls this at quiescence (no install in
        flight), mirroring ``resilience.sweeper``: anything still in
        phase 1 was abandoned by a failed coordinator and must not pin
        border capacity or model state forever.  Returns the released
        segment names."""
        released = sorted(self._prepared)
        for key in released:
            self.teardown(key)
        return released

    # -- planning ---------------------------------------------------------

    def plan(
        self, objective: LpObjective = LpObjective.MAX_THROUGHPUT
    ) -> FarmResult:
        """Cold/warm regional plan over every admitted chain."""
        if not self.model.chains:
            return self._empty_plan()
        start = time.perf_counter()
        result = self.farm.solve(self.model, objective)
        if self.metrics is not None:
            self.metrics.histogram(
                "federation.region_solve_s", region=self.region
            ).observe(time.perf_counter() - start)
        return result

    def reoptimize(
        self,
        changed: list[str],
        objective: LpObjective = LpObjective.MAX_THROUGHPUT,
    ) -> FarmResult:
        """Incremental re-plan after demand changes (farm ``resolve``)."""
        if not self.model.chains:
            return self._empty_plan()
        start = time.perf_counter()
        result = self.farm.resolve(self.model, changed, objective)
        if self.metrics is not None:
            self.metrics.histogram(
                "federation.region_solve_s", region=self.region
            ).observe(time.perf_counter() - start)
        return result

    def _empty_plan(self) -> FarmResult:
        """A region with nothing admitted plans trivially (a federation
        at low fill routinely has empty regions; the farm itself
        refuses to partition an empty chain set)."""
        return FarmResult(
            status="optimal",
            objective=0.0,
            solution=None,
            partitions=0,
            solved=(),
            cache_hits=0,
            wall_seconds=0.0,
            exact=True,
        )

    # -- bookkeeping -------------------------------------------------------

    def prepared_segments(self) -> list[str]:
        return sorted(self._prepared)

    def committed_segments(self) -> list[str]:
        return sorted(self._committed)

    def intra_chains(self) -> list[str]:
        return sorted(self._intra)

    def epoch_of(self, key: str) -> int:
        """Fencing epoch recorded for a segment key (0 if never seen).
        Reconciliation uses it to leave state from rounds *newer* than
        its snapshot alone."""
        return self._epochs.get(key, 0)

    def _admissible(self, seg: SegmentSpec) -> bool:
        """Structural + aggregate-compute admission for a segment."""
        chain = seg.chain
        for node in (chain.ingress, chain.egress):
            if node not in self.model._node_set:
                return False
        try:
            self.model.latency(chain.ingress, chain.egress)
        except ModelError:
            return False  # endpoints not reachable inside the shard
        loads = self._loads_of(chain)
        for vnf_name, load in loads.items():
            vnf = self.model.vnfs.get(vnf_name)
            if vnf is None or not vnf.site_capacity:
                return False
            total = sum(vnf.site_capacity.values())
            if self._vnf_admitted.get(vnf_name, 0.0) + load > total + _EPS:
                return False
        return True

    def _loads_of(self, chain: Chain) -> dict[str, float]:
        loads: dict[str, float] = {}
        for z in range(1, chain.num_stages):
            vnf_name = chain.vnf_at(z)
            vnf = self.model.vnfs.get(vnf_name)
            load_per_unit = vnf.load_per_unit if vnf is not None else 1.0
            loads[vnf_name] = loads.get(vnf_name, 0.0) + load_per_unit * (
                chain.stage_traffic(z) + chain.stage_traffic(z + 1)
            )
        return loads

    def _track_loads(self, chain: Chain) -> None:
        loads = self._loads_of(chain)
        self._chain_loads[chain.name] = loads
        for vnf_name, load in loads.items():
            self._vnf_admitted[vnf_name] = (
                self._vnf_admitted.get(vnf_name, 0.0) + load
            )

    def _untrack_loads(self, name: str) -> None:
        loads = self._chain_loads.pop(name, None)
        if not loads:
            return
        for vnf_name, load in loads.items():
            remaining = self._vnf_admitted.get(vnf_name, 0.0) - load
            if remaining <= _EPS:
                self._vnf_admitted.pop(vnf_name, None)
            else:
                self._vnf_admitted[vnf_name] = remaining


__all__ = [
    "BorderLedger",
    "RegionalSwitchboard",
    "SegmentSpec",
    "trivial_segment",
]
