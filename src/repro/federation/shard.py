"""Substrate sharding: regions, borders, and regional sub-models.

The federation's first move is to cut the substrate into ``n`` disjoint
shards using :func:`repro.scale.shard_map` (deterministic,
latency-coherent, connected regions).  Everything else follows from the
cut:

- every node, site, and *internal* link (both endpoints in one shard)
  belongs to exactly one :class:`SubstrateShard`, owned and planned by
  one ``RegionalSwitchboard``;
- every link crossing the cut becomes a :class:`BorderLink` with
  explicit bookkeeping: who owns it (the source-side region, which runs
  its capacity ledger), what the federation may load onto it (the link
  headroom under the MLU budget), and how it ranks among the parallel
  borders between the same region pair (latency, then name -- the
  deterministic retry order for cross-shard installs);
- :meth:`ShardMap.regional_model` derives each region's self-contained
  :class:`~repro.core.model.NetworkModel`: regional nodes/sites, the
  VNF catalog restricted to regional deployments, internal links, and
  *recomputed* intra-shard latencies and ECMP fractions over the
  regional subgraph only.  Recomputation matters: a global shortest
  path between two regional nodes may dip outside the shard, and a
  regional planner must not account capacity it does not own.

The capacity contract at borders: regional LPs never see border links,
so intra-shard plans cannot load them; only the coordinator's 2PC
ledger (``regional.BorderLedger``) places cross-shard demand on a
border, and it never admits more than the link's headroom.  Capacity
safety of the stitched system is therefore the conjunction of
per-region LP feasibility and per-border ledger bounds -- checked by
``federation.invariants``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import networkx as nx

from repro.core.model import NetworkModel, VNF
from repro.scale.partition import shard_map


class FederationError(Exception):
    """Raised on malformed federation requests or failed installs."""


@dataclass(frozen=True)
class BorderLink:
    """A physical link crossing the shard cut (directed, src-side owned)."""

    name: str
    src: str
    dst: str
    src_region: int
    dst_region: int
    #: One-way delay between the endpoint nodes (the crossing cost).
    latency: float
    #: Headroom under the MLU budget the coordinator may reserve.
    capacity: float


@dataclass(frozen=True)
class SubstrateShard:
    """One region's disjoint slice of the substrate."""

    region: int
    nodes: tuple[str, ...]
    sites: tuple[str, ...]
    internal_links: tuple[str, ...]
    #: Border links this region owns (their source node is inside).
    owned_borders: tuple[str, ...]


@dataclass
class ShardMap:
    """The full cut: shards, borders, and region-level adjacency."""

    shards: tuple[SubstrateShard, ...]
    borders: dict[str, BorderLink]
    node_region: dict[str, int]
    _region_paths: dict[tuple[int, int], tuple[int, ...]] = field(
        default_factory=dict, repr=False
    )

    @property
    def n_regions(self) -> int:
        return len(self.shards)

    def region_of(self, model: NetworkModel, endpoint: str) -> int:
        """Region of a node or site name."""
        node = model.endpoint_node(endpoint)
        region = self.node_region.get(node)
        if region is None:
            raise FederationError(f"unknown endpoint {endpoint!r}")
        return region

    def borders_between(self, src_region: int, dst_region: int) -> list[BorderLink]:
        """Border links from one region into another, best-first
        (latency, then name -- the deterministic retry order)."""
        found = [
            b
            for b in self.borders.values()
            if b.src_region == src_region and b.dst_region == dst_region
        ]
        found.sort(key=lambda b: (b.latency, b.name))
        return found

    def region_adjacency(self) -> dict[int, set[int]]:
        adj: dict[int, set[int]] = {s.region: set() for s in self.shards}
        for border in self.borders.values():
            adj[border.src_region].add(border.dst_region)
        return adj

    def region_path(self, src_region: int, dst_region: int) -> tuple[int, ...]:
        """Cheapest region sequence from src to dst over the border
        graph (weight: best border latency per hop; deterministic
        tie-breaks).  Includes both endpoints; raises when no border
        path exists."""
        key = (src_region, dst_region)
        cached = self._region_paths.get(key)
        if cached is not None:
            return cached
        if src_region == dst_region:
            path = (src_region,)
            self._region_paths[key] = path
            return path
        best_edge: dict[tuple[int, int], float] = {}
        for border in self.borders.values():
            edge = (border.src_region, border.dst_region)
            cost = best_edge.get(edge)
            if cost is None or border.latency < cost:
                best_edge[edge] = border.latency
        dist: dict[int, float] = {src_region: 0.0}
        prev: dict[int, int] = {}
        heap = [(0.0, src_region)]
        while heap:
            d, region = heapq.heappop(heap)
            if d > dist.get(region, float("inf")):
                continue
            if region == dst_region:
                break
            for (a, b), cost in sorted(best_edge.items()):
                if a != region:
                    continue
                nd = d + cost
                if nd < dist.get(b, float("inf")) - 1e-12:
                    dist[b] = nd
                    prev[b] = a
                    heapq.heappush(heap, (nd, b))
        if dst_region not in dist:
            raise FederationError(
                f"no border path from region {src_region} to {dst_region}"
            )
        path_list = [dst_region]
        while path_list[-1] != src_region:
            path_list.append(prev[path_list[-1]])
        path = tuple(reversed(path_list))
        self._region_paths[key] = path
        return path

    def regional_model(
        self, model: NetworkModel, region: int
    ) -> NetworkModel:
        """The region's self-contained sub-model (no chains).

        Latency and ECMP routing are recomputed over the regional
        subgraph so the regional planner only ever accounts capacity it
        owns; VNFs keep only their regional deployment sites (a VNF
        with none is dropped from the regional catalog).
        """
        from repro.topology.pops import ecmp_routing

        shard = self.shards[region]
        node_set = set(shard.nodes)
        sites = [
            s for s in model.sites.values() if s.node in node_set
        ]
        site_names = {s.name for s in sites}
        vnfs = []
        for vnf in model.vnfs.values():
            regional_caps = {
                site: cap
                for site, cap in vnf.site_capacity.items()
                if site in site_names
            }
            if regional_caps:
                vnfs.append(VNF(vnf.name, vnf.load_per_unit, regional_caps))
        links = [model.links[name] for name in shard.internal_links]

        graph = nx.Graph()
        graph.add_nodes_from(shard.nodes)
        link_names: dict[tuple[str, str], str] = {}
        for link in sorted(links, key=lambda x: x.name):
            link_names.setdefault((link.src, link.dst), link.name)
            graph.add_edge(
                link.src, link.dst, delay=model.latency(link.src, link.dst)
            )
        latency: dict[tuple[str, str], float] = {}
        for n1, targets in nx.all_pairs_dijkstra_path_length(
            graph, weight="delay"
        ):
            for n2, delay in targets.items():
                latency[(n1, n2)] = float(delay)
        def arc_name(u: str, v: str) -> str:
            name = link_names.get((u, v)) or link_names.get((v, u))
            if name is None:  # pragma: no cover - defensive
                raise FederationError(
                    f"region {region}: no link for arc {u!r}->{v!r}"
                )
            return name

        routing: dict[tuple[str, str], dict[str, float]] = {}
        if links:
            routing = ecmp_routing(graph, link_name=arc_name)
        return NetworkModel(
            nodes=shard.nodes,
            latency=latency,
            sites=sites,
            vnfs=vnfs,
            chains=(),
            links=links,
            routing=routing,
            mlu_limit=model.mlu_limit,
        )


def build_shards(model: NetworkModel, n_regions: int) -> ShardMap:
    """Cut the model's substrate into ``n_regions`` shards.

    Deterministic end to end: the node assignment comes from
    :func:`repro.scale.shard_map` (byte-stable), region ids follow its
    stable ordering, and every derived collection is name-sorted.
    """
    regions = shard_map(model, n_regions)
    node_region: dict[str, int] = {}
    for region, nodes in enumerate(regions):
        for node in nodes:
            node_region[node] = region

    internal: dict[int, list[str]] = {r: [] for r in range(len(regions))}
    borders: dict[str, BorderLink] = {}
    owned: dict[int, list[str]] = {r: [] for r in range(len(regions))}
    for name in sorted(model.links):
        link = model.links[name]
        src_region = node_region[link.src]
        dst_region = node_region[link.dst]
        if src_region == dst_region:
            internal[src_region].append(name)
        else:
            borders[name] = BorderLink(
                name=name,
                src=link.src,
                dst=link.dst,
                src_region=src_region,
                dst_region=dst_region,
                latency=model.latency(link.src, link.dst),
                capacity=model.link_headroom(link),
            )
            owned[src_region].append(name)

    sites_by_region: dict[int, list[str]] = {r: [] for r in range(len(regions))}
    for site_name in sorted(model.sites):
        site = model.sites[site_name]
        sites_by_region[node_region[site.node]].append(site_name)

    shards = tuple(
        SubstrateShard(
            region=r,
            nodes=nodes,
            sites=tuple(sites_by_region[r]),
            internal_links=tuple(internal[r]),
            owned_borders=tuple(owned[r]),
        )
        for r, nodes in enumerate(regions)
    )
    return ShardMap(shards=shards, borders=borders, node_region=node_region)


__all__ = [
    "BorderLink",
    "FederationError",
    "ShardMap",
    "SubstrateShard",
    "build_shards",
]
