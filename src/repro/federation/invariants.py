"""Invariant probes for the federated control plane.

These are the checks the chaos soak (and the tests) run after every
operation; each returns a list of human-readable problem strings
(empty == invariant holds).

- :func:`check_capacity_safety` -- the composition argument from
  ``federation.shard``: per-region LP feasibility (the regional
  solution's own :meth:`~repro.core.routes.RoutingSolution.violations`)
  plus the border contract (no ledger reserved beyond its link's
  headroom).
- :func:`check_atomicity` -- 2PC all-or-nothing: every installed
  cross-shard chain has *all* of its segments committed in their
  regions, and no region holds a committed segment whose origin chain
  the coordinator does not consider installed (no partial installs in
  either direction).
- :func:`check_quiescence` -- with no install in flight, no region
  holds prepared-but-uncommitted residue (a crashed coordinator's
  leftovers must be gone after :meth:`GlobalCoordinator.sweep`).
- :func:`check_stitching` -- stitched cross-shard paths are
  continuous (segment egress == border source, border destination ==
  next segment ingress, regions match) and conserve demand (each
  crossing reserves exactly the stage demand at the cut).
- :func:`check_ledger_consistency` -- every border-ledger entry is
  backed by a live segment with a matching reservation amount, and
  vice versa (the durable-checkpoint/reconciliation analogue of
  atomicity, at the ledger granularity).
- :func:`check_single_active` -- at most one coordinator believes it
  is active on a live host (lease safety at the federation layer).
- :func:`check_no_lost_requests` -- every chain submitted to a
  regional node is either still queued or has a recorded outcome;
  nothing silently vanishes across partitions and failovers.

:func:`federation_probes` packages all of them as the zero-argument
probes the chaos :class:`~repro.chaos.invariants.InvariantChecker`
(and ``federation/soak.py``) consume, with ``in_flight`` /
``skip_regions`` exclusions so mid-2PC state and partitioned or
restarting regions are not flagged as violations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.coordinator import FederatedPlan, GlobalCoordinator
    from repro.simnet.network import SimNetwork

_EPS = 1e-6


def _origin_of(segment_key: str) -> str:
    """Origin chain name of a segment key (``"c3@s1"`` -> ``"c3"``)."""
    return segment_key.split("@", 1)[0]


def check_capacity_safety(
    coordinator: "GlobalCoordinator", plan: "FederatedPlan | None" = None
) -> list[str]:
    problems = list(coordinator.border_violations())
    if plan is not None:
        for region in sorted(plan.per_region):
            solution = plan.per_region[region].solution
            if solution is None:
                continue
            problems.extend(
                f"region {region}: {p}" for p in solution.violations()
            )
    return problems


def check_atomicity(
    coordinator: "GlobalCoordinator",
    in_flight: Iterable[str] = (),
    skip_regions: Iterable[int] = (),
) -> list[str]:
    problems: list[str] = []
    in_flight = set(in_flight)
    skip_regions = set(skip_regions)
    committed_by_region = {
        region: set(regional.committed_segments())
        for region, regional in coordinator.regionals.items()
        if region not in skip_regions
    }
    seen: dict[int, set[str]] = {r: set() for r in committed_by_region}
    for name, record in coordinator._cross.items():
        if name in in_flight:
            continue
        for seg in record.segments:
            key = seg.chain.name
            if seg.region not in committed_by_region:
                continue  # partitioned/restarting region: unverifiable
            if key not in committed_by_region[seg.region]:
                problems.append(
                    f"chain {name!r}: segment {key!r} not committed in "
                    f"region {seg.region} (partial install)"
                )
            else:
                seen[seg.region].add(key)
    for region, committed in committed_by_region.items():
        for key in sorted(committed - seen[region]):
            if _origin_of(key) in in_flight:
                continue
            problems.append(
                f"region {region}: committed segment {key!r} belongs to no "
                f"installed chain (orphan commit)"
            )
    return problems


def check_quiescence(
    coordinator: "GlobalCoordinator",
    in_flight: Iterable[str] = (),
    skip_regions: Iterable[int] = (),
) -> list[str]:
    problems: list[str] = []
    in_flight = set(in_flight)
    skip_regions = set(skip_regions)
    for region, regional in sorted(coordinator.regionals.items()):
        if region in skip_regions:
            continue
        for key in regional.prepared_segments():
            if _origin_of(key) in in_flight:
                continue
            problems.append(
                f"region {region}: prepared residue {key!r} at quiescence"
            )
        for name, ledger in sorted(regional.ledgers.items()):
            for key in sorted(ledger.prepared):
                if _origin_of(key) in in_flight:
                    continue
                problems.append(
                    f"border {name!r}: prepared reservation {key!r} "
                    f"at quiescence"
                )
    return problems


def check_ledger_consistency(
    coordinator: "GlobalCoordinator",
    in_flight: Iterable[str] = (),
    skip_regions: Iterable[int] = (),
) -> list[str]:
    """Border ledgers match the segments they account for.

    Every committed ledger entry is backed by a committed segment whose
    ``border_demands`` names that ledger with the same amount, and
    every committed segment's demand is present in the ledger; prepared
    entries likewise back prepared segments.  This is the check that
    catches reconciliation bugs: a ledger entry surviving its segment
    (leak) or a segment whose reservation went missing (unsafe)."""
    problems: list[str] = []
    in_flight = set(in_flight)
    skip_regions = set(skip_regions)
    for region, regional in sorted(coordinator.regionals.items()):
        if region in skip_regions:
            continue
        for kind, specs in (
            ("committed", regional._committed),
            ("prepared", regional._prepared),
        ):
            expected: dict[tuple[str, str], float] = {}
            for key, seg in specs.items():
                for link_name, amount in seg.border_demands:
                    expected[(link_name, key)] = amount
            actual: dict[tuple[str, str], float] = {}
            for link_name, ledger in regional.ledgers.items():
                entries = getattr(ledger, kind)
                for key, amount in entries.items():
                    actual[(link_name, key)] = amount
            for (link_name, key), amount in sorted(expected.items()):
                if _origin_of(key) in in_flight:
                    continue
                got = actual.pop((link_name, key), None)
                if got is None:
                    problems.append(
                        f"region {region}: {kind} segment {key!r} has no "
                        f"ledger entry on {link_name!r}"
                    )
                elif abs(got - amount) > _EPS:
                    problems.append(
                        f"region {region}: ledger {link_name!r} holds "
                        f"{got:.6g} for {kind} {key!r}, segment says "
                        f"{amount:.6g}"
                    )
            for (link_name, key) in sorted(actual):
                if _origin_of(key) in in_flight:
                    continue
                problems.append(
                    f"region {region}: ledger {link_name!r} {kind} entry "
                    f"{key!r} backs no {kind} segment (leak)"
                )
    return problems


def check_single_active(nodes: Iterable, net: "SimNetwork") -> list[str]:
    """At most one coordinator is active on a live host."""
    active = [
        node.name
        for node in nodes
        if node.active and net.host_is_up(node.host)
    ]
    if len(active) > 1:
        return [f"multiple active coordinators: {sorted(active)}"]
    return []


def check_no_lost_requests(
    region_nodes: Iterable,
    coordinator_of: "Callable[[], GlobalCoordinator | None] | None" = None,
    final: bool = False,
) -> list[str]:
    """Every submitted chain is queued or has an outcome; at the end of
    a run the queues are drained and installed outcomes are real."""
    problems: list[str] = []
    coordinator = coordinator_of() if coordinator_of is not None else None
    installed = set(coordinator.installed()) if coordinator is not None else None
    for node in region_nodes:
        queued = set(node.queued())
        for name in sorted(node.submitted):
            if name not in queued and name not in node.outcomes:
                problems.append(
                    f"region node {node.region}: submitted chain {name!r} "
                    f"neither queued nor resolved (lost request)"
                )
        if final:
            for name in sorted(queued):
                problems.append(
                    f"region node {node.region}: chain {name!r} still "
                    f"queued after drain"
                )
            if installed is not None:
                for name, outcome in sorted(node.outcomes.items()):
                    if outcome == "installed" and name not in installed:
                        problems.append(
                            f"region node {node.region}: chain {name!r} "
                            f"reported installed but coordinator does not "
                            f"carry it"
                        )
    return problems


def check_stitching(coordinator: "GlobalCoordinator") -> list[str]:
    problems: list[str] = []
    for name in sorted(coordinator._cross):
        record = coordinator._cross[name]
        chain = record.chain
        hops = coordinator.end_to_end_route(name)
        segments = [h for h in hops if h["kind"] == "segment"]
        if segments[0]["ingress"] != chain.ingress:
            problems.append(f"chain {name!r}: stitched ingress mismatch")
        if segments[-1]["egress"] != chain.egress:
            problems.append(f"chain {name!r}: stitched egress mismatch")
        stitched_vnfs = [v for s in segments for v in s["vnfs"]]
        if tuple(stitched_vnfs) != chain.vnfs:
            problems.append(
                f"chain {name!r}: stitched VNF order "
                f"{tuple(stitched_vnfs)} != {chain.vnfs}"
            )
        for i in range(len(hops) - 1):
            a, b = hops[i], hops[i + 1]
            if a["kind"] == "segment" and b["kind"] == "border":
                if a["egress"] != b["src"] or a["region"] != b["src_region"]:
                    problems.append(
                        f"chain {name!r}: segment {a['name']!r} does not "
                        f"hand off at border {b['name']!r}"
                    )
            if a["kind"] == "border" and b["kind"] == "segment":
                if b["ingress"] != a["dst"] or b["region"] != a["dst_region"]:
                    problems.append(
                        f"chain {name!r}: border {a['name']!r} does not "
                        f"land on segment {b['name']!r}"
                    )
        # Demand conservation at the cuts: each crossing carries the
        # original chain's stage demand at the cut stage.
        stage_ptr = 1
        border_iter = iter(h for h in hops if h["kind"] == "border")
        for seg_hop in segments[:-1]:
            stage_ptr += len(seg_hop["vnfs"])
            border = next(border_iter)
            expected = chain.stage_traffic(stage_ptr)
            if abs(border["demand"] - expected) > _EPS:
                problems.append(
                    f"chain {name!r}: border {border['name']!r} reserves "
                    f"{border['demand']:.6g}, stage demand is {expected:.6g}"
                )
    return problems


def check_all(
    coordinator: "GlobalCoordinator",
    plan: "FederatedPlan | None" = None,
    quiescent: bool = True,
) -> list[str]:
    problems = check_capacity_safety(coordinator, plan)
    problems += check_atomicity(coordinator)
    problems += check_stitching(coordinator)
    problems += check_ledger_consistency(coordinator)
    if quiescent:
        problems += check_quiescence(coordinator)
    return problems


def federation_probes(
    coordinator_of: "Callable[[], GlobalCoordinator | None]",
    *,
    plan_of: "Callable[[], FederatedPlan | None] | None" = None,
    in_flight: Callable[[], set[str]] | None = None,
    skip_regions: Callable[[], set[int]] | None = None,
    quiescent: bool = False,
    nodes: Iterable | None = None,
    net: "SimNetwork | None" = None,
    region_nodes: Iterable | None = None,
    final: bool = False,
) -> dict[str, Callable[[], list[str]]]:
    """The unified probe registry over the federated control plane.

    Returns ``{name: probe}`` where each probe takes no arguments and
    returns problem strings -- the contract of
    :class:`repro.chaos.invariants.InvariantChecker` probes, so the
    same registry plugs into the chaos soak runner, the federation
    chaos engine, and the scripted ``federation/soak.py`` loop.

    ``coordinator_of`` resolves the *active* coordinator at probe time
    (``None`` during a failover window skips coordinator-side checks);
    ``in_flight`` / ``skip_regions`` resolve the exclusion sets
    (chains mid-2PC, regions partitioned from the coordinator or
    awaiting resync) so legitimate transients are not violations.
    """
    def _flight() -> set[str]:
        return in_flight() if in_flight is not None else set()

    def _skips() -> set[int]:
        return skip_regions() if skip_regions is not None else set()

    def capacity() -> list[str]:
        coordinator = coordinator_of()
        if coordinator is None:
            return []
        plan = plan_of() if plan_of is not None else None
        return check_capacity_safety(coordinator, plan)

    def atomicity() -> list[str]:
        coordinator = coordinator_of()
        if coordinator is None:
            return []
        return check_atomicity(coordinator, _flight(), _skips())

    def stitching() -> list[str]:
        coordinator = coordinator_of()
        if coordinator is None:
            return []
        return check_stitching(coordinator)

    def ledgers() -> list[str]:
        coordinator = coordinator_of()
        if coordinator is None:
            return []
        return check_ledger_consistency(coordinator, _flight(), _skips())

    probes: dict[str, Callable[[], list[str]]] = {
        "fed_capacity_safety": capacity,
        "fed_atomicity": atomicity,
        "fed_stitching": stitching,
        "fed_ledger_consistency": ledgers,
    }
    if quiescent:
        def quiet() -> list[str]:
            coordinator = coordinator_of()
            if coordinator is None:
                return []
            return check_quiescence(coordinator, _flight(), _skips())

        probes["fed_quiescence"] = quiet
    if nodes is not None and net is not None:
        node_list = list(nodes)
        probes["fed_single_active"] = (
            lambda: check_single_active(node_list, net)
        )
    if region_nodes is not None:
        region_list = list(region_nodes)
        probes["fed_no_lost_requests"] = lambda: check_no_lost_requests(
            region_list, coordinator_of, final=final
        )
    return probes


__all__ = [
    "check_all",
    "check_atomicity",
    "check_capacity_safety",
    "check_ledger_consistency",
    "check_no_lost_requests",
    "check_quiescence",
    "check_single_active",
    "check_stitching",
    "federation_probes",
]
