"""Invariant probes for the federated control plane.

These are the checks the chaos soak (and the tests) run after every
operation; each returns a list of human-readable problem strings
(empty == invariant holds).

- :func:`check_capacity_safety` -- the composition argument from
  ``federation.shard``: per-region LP feasibility (the regional
  solution's own :meth:`~repro.core.routes.RoutingSolution.violations`)
  plus the border contract (no ledger reserved beyond its link's
  headroom).
- :func:`check_atomicity` -- 2PC all-or-nothing: every installed
  cross-shard chain has *all* of its segments committed in their
  regions, and no region holds a committed segment whose origin chain
  the coordinator does not consider installed (no partial installs in
  either direction).
- :func:`check_quiescence` -- with no install in flight, no region
  holds prepared-but-uncommitted residue (a crashed coordinator's
  leftovers must be gone after :meth:`GlobalCoordinator.sweep`).
- :func:`check_stitching` -- stitched cross-shard paths are
  continuous (segment egress == border source, border destination ==
  next segment ingress, regions match) and conserve demand (each
  crossing reserves exactly the stage demand at the cut).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.coordinator import FederatedPlan, GlobalCoordinator

_EPS = 1e-6


def check_capacity_safety(
    coordinator: "GlobalCoordinator", plan: "FederatedPlan | None" = None
) -> list[str]:
    problems = list(coordinator.border_violations())
    if plan is not None:
        for region in sorted(plan.per_region):
            solution = plan.per_region[region].solution
            if solution is None:
                continue
            problems.extend(
                f"region {region}: {p}" for p in solution.violations()
            )
    return problems


def check_atomicity(coordinator: "GlobalCoordinator") -> list[str]:
    problems: list[str] = []
    committed_by_region = {
        region: set(regional.committed_segments())
        for region, regional in coordinator.regionals.items()
    }
    seen: dict[int, set[str]] = {r: set() for r in committed_by_region}
    for name, record in coordinator._cross.items():
        for seg in record.segments:
            key = seg.chain.name
            if key not in committed_by_region[seg.region]:
                problems.append(
                    f"chain {name!r}: segment {key!r} not committed in "
                    f"region {seg.region} (partial install)"
                )
            else:
                seen[seg.region].add(key)
    for region, committed in committed_by_region.items():
        for key in sorted(committed - seen[region]):
            problems.append(
                f"region {region}: committed segment {key!r} belongs to no "
                f"installed chain (orphan commit)"
            )
    return problems


def check_quiescence(coordinator: "GlobalCoordinator") -> list[str]:
    problems: list[str] = []
    for region, regional in sorted(coordinator.regionals.items()):
        for key in regional.prepared_segments():
            problems.append(
                f"region {region}: prepared residue {key!r} at quiescence"
            )
        for name, ledger in sorted(regional.ledgers.items()):
            for key in sorted(ledger.prepared):
                problems.append(
                    f"border {name!r}: prepared reservation {key!r} "
                    f"at quiescence"
                )
    return problems


def check_stitching(coordinator: "GlobalCoordinator") -> list[str]:
    problems: list[str] = []
    for name in sorted(coordinator._cross):
        record = coordinator._cross[name]
        chain = record.chain
        hops = coordinator.end_to_end_route(name)
        segments = [h for h in hops if h["kind"] == "segment"]
        if segments[0]["ingress"] != chain.ingress:
            problems.append(f"chain {name!r}: stitched ingress mismatch")
        if segments[-1]["egress"] != chain.egress:
            problems.append(f"chain {name!r}: stitched egress mismatch")
        stitched_vnfs = [v for s in segments for v in s["vnfs"]]
        if tuple(stitched_vnfs) != chain.vnfs:
            problems.append(
                f"chain {name!r}: stitched VNF order "
                f"{tuple(stitched_vnfs)} != {chain.vnfs}"
            )
        for i in range(len(hops) - 1):
            a, b = hops[i], hops[i + 1]
            if a["kind"] == "segment" and b["kind"] == "border":
                if a["egress"] != b["src"] or a["region"] != b["src_region"]:
                    problems.append(
                        f"chain {name!r}: segment {a['name']!r} does not "
                        f"hand off at border {b['name']!r}"
                    )
            if a["kind"] == "border" and b["kind"] == "segment":
                if b["ingress"] != a["dst"] or b["region"] != a["dst_region"]:
                    problems.append(
                        f"chain {name!r}: border {a['name']!r} does not "
                        f"land on segment {b['name']!r}"
                    )
        # Demand conservation at the cuts: each crossing carries the
        # original chain's stage demand at the cut stage.
        stage_ptr = 1
        border_iter = iter(h for h in hops if h["kind"] == "border")
        for seg_hop in segments[:-1]:
            stage_ptr += len(seg_hop["vnfs"])
            border = next(border_iter)
            expected = chain.stage_traffic(stage_ptr)
            if abs(border["demand"] - expected) > _EPS:
                problems.append(
                    f"chain {name!r}: border {border['name']!r} reserves "
                    f"{border['demand']:.6g}, stage demand is {expected:.6g}"
                )
    return problems


def check_all(
    coordinator: "GlobalCoordinator",
    plan: "FederatedPlan | None" = None,
    quiescent: bool = True,
) -> list[str]:
    problems = check_capacity_safety(coordinator, plan)
    problems += check_atomicity(coordinator)
    problems += check_stitching(coordinator)
    if quiescent:
        problems += check_quiescence(coordinator)
    return problems


__all__ = [
    "check_all",
    "check_atomicity",
    "check_capacity_safety",
    "check_quiescence",
    "check_stitching",
]
