"""The federated chaos soak: real faults against the deployed stack.

``federation/soak.py`` injects faults by *scripted hook* (a policy
object telling the sync coordinator to reject or crash); this module
injects them into the *network*.  It deploys the full partition-tolerant
federation onto one simulated network -- a primary + standby
:class:`~repro.federation.nodes.CoordinatorNode` over the quorum store
and leader lease (:class:`~repro.federation.ha.FederationFailover`),
one :class:`~repro.federation.nodes.RegionalNode` per shard -- then
plays a seeded :class:`~repro.chaos.scenario.Scenario` of link flaps,
a coordinator<->region partition, a regional process restart, and a
coordinator crash against it while the unified
:func:`~repro.federation.invariants.federation_probes` registry runs on
the :class:`~repro.chaos.invariants.InvariantChecker` cadence.

Everything derives from one integer seed -- the PoP-grid workload, the
submission times, the fault schedule, the RPC jitter, and the retry
backoffs -- so ``run_federation_chaos(config)`` twice with the same
config produces byte-identical :meth:`FederationChaosReport.to_json`
output (asserted by the tests and the CI smoke step).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.chaos.invariants import (
    InvariantChecker,
    LeaseMonitor,
    Violation,
    lease_safety,
    link_conservation,
    network_quiescence,
)
from repro.chaos.scenario import FaultEvent, Scenario
from repro.controller.replication import ReplicatedStore
from repro.core.model import Chain, NetworkModel
from repro.federation.ha import FederationFailover, FederationStore
from repro.federation.invariants import federation_probes
from repro.federation.nodes import CoordinatorNode, RegionalNode
from repro.obs import MetricsRegistry
from repro.resilience.rpc import BackoffPolicy, RpcConfig, RpcLayer
from repro.simnet.events import Simulator
from repro.simnet.network import LinkSpec, SimNetwork
from repro.topology.pops import PopGridConfig, generate_federation_workload

#: Coordinator hosts, in failover priority order, on the core site.
COORDINATOR_HOSTS = ("fed.primary", "fed.standby")


@dataclass(frozen=True)
class FederationChaosConfig:
    """Knobs of one federated chaos run; everything derives from
    ``seed``.

    The workload is a generated clustered PoP grid
    (:func:`~repro.topology.pops.generate_federation_workload`);
    ``base_fraction`` of its chains are installed synchronously before
    the clock starts (the standing population the faults disturb), the
    rest arrive live at the regional nodes mid-run.  ``locality``
    controls how many submissions are cross-shard.
    """

    seed: int = 1
    duration_s: float = 40.0
    pops: int = 18
    regions: int = 3
    chains: int = 36
    locality: float = 0.6
    base_fraction: float = 0.5
    partition_size: int | None = 8
    # Fault mix.
    link_flaps: int = 2
    flap_down_s: float = 3.0
    partition: bool = True
    partition_s: float = 8.0
    coordinator_crash: bool = True
    region_restart: bool = True
    region_down_s: float = 2.0
    # Control-plane timing.
    lease_duration_s: float = 2.0
    check_interval_s: float = 0.5
    probe_interval_s: float = 1.0
    install_deadline_s: float = 6.0


@dataclass
class FederationDeployment:
    """Handles the engine, the probes, and the tests need."""

    sim: Simulator
    net: SimNetwork
    registry: MetricsRegistry
    model: NetworkModel
    store: ReplicatedStore
    monitor: LeaseMonitor
    rpc: RpcLayer
    fed_store: FederationStore
    primary: CoordinatorNode
    standby: CoordinatorNode
    failover: FederationFailover
    region_nodes: dict[int, RegionalNode]
    base_chains: list[Chain] = field(default_factory=list)
    live_chains: list[Chain] = field(default_factory=list)
    base_installed: int = 0

    @property
    def coordinators(self) -> tuple[CoordinatorNode, CoordinatorNode]:
        return (self.primary, self.standby)

    def active_coordinator(self) -> CoordinatorNode | None:
        """The acting coordinator, or ``None`` mid-failover."""
        node = self.failover.active
        if node.active and node.is_up():
            return node
        return None

    def skip_regions(self) -> set[int]:
        """Regions whose ground truth is legitimately stale: host down
        or restarted-and-not-yet-resynced."""
        return {
            region
            for region, node in self.region_nodes.items()
            if not self.net.host_is_up(node.host) or node.needs_resync
        }

    def in_flight(self) -> set[str]:
        flight: set[str] = set()
        for node in self.coordinators:
            flight |= node.in_flight()
        return flight


def build_federation_deployment(
    config: FederationChaosConfig,
) -> FederationDeployment:
    """One seeded federated deployment with its base population
    installed (sim clock still at zero)."""
    model, _metro_of = generate_federation_workload(
        PopGridConfig(
            num_pops=config.pops,
            num_metros=config.regions,
            num_chains=config.chains,
            locality=config.locality,
            seed=config.seed,
        )
    )
    chains = [model.chains[name] for name in sorted(model.chains)]
    for chain in chains:
        model.remove_chain(chain.name)

    sim = Simulator()
    registry = MetricsRegistry.for_simulator(sim)
    net = SimNetwork(sim, metrics=registry)
    net.set_fault_rng(random.Random(f"fed-loss-{config.seed}"))

    for host in COORDINATOR_HOSTS:
        net.add_host(host, site="core")
    region_hosts = {r: f"region.{r}" for r in range(config.regions)}
    for region, host in region_hosts.items():
        net.add_host(host, site=f"region-{region}")
    net.connect(*COORDINATOR_HOSTS, LinkSpec(delay_s=0.005))
    for host in region_hosts.values():
        for coord in COORDINATOR_HOSTS:
            net.connect(coord, host, LinkSpec(delay_s=0.02))

    # The quorum store's replicas live on the core site (the MUSIC
    # deployment): coordinator<->region partitions never cost quorum.
    store = ReplicatedStore([f"fedstore.{i}" for i in range(3)])
    monitor = LeaseMonitor(store)
    fed_store = FederationStore(store)
    rpc = RpcLayer(net, RpcConfig(), metrics=registry, seed=config.seed)

    primary = CoordinatorNode(
        COORDINATOR_HOSTS[0],
        COORDINATOR_HOSTS[0],
        rpc,
        fed_store,
        model,
        region_hosts,
        n_regions=config.regions,
        partition_size=config.partition_size,
        metrics=registry,
        retry_backoff=BackoffPolicy(seed=config.seed, name="fed-install"),
        install_deadline_s=config.install_deadline_s,
    )
    standby = CoordinatorNode(
        COORDINATOR_HOSTS[1],
        COORDINATOR_HOSTS[1],
        rpc,
        fed_store,
        model,
        region_hosts,
        shard_map=primary.shard_map,
        regionals=primary.regionals,
        partition_size=config.partition_size,
        metrics=registry,
        retry_backoff=BackoffPolicy(
            seed=config.seed, name="fed-install-standby"
        ),
        install_deadline_s=config.install_deadline_s,
    )
    failover = FederationFailover(
        {node.name: node for node in (primary, standby)},
        store,
        net,
        monitor=monitor,
        lease_duration_s=config.lease_duration_s,
        check_interval_s=config.check_interval_s,
        metrics=registry,
    )

    region_nodes = {
        region: RegionalNode(
            region,
            host,
            rpc,
            primary.regionals[region],
            model,
            primary.shard_map,
            list(COORDINATOR_HOSTS),
            retry_until=config.duration_s,
            seed=config.seed,
            metrics=registry,
        )
        for region, host in region_hosts.items()
    }

    deployment = FederationDeployment(
        sim=sim,
        net=net,
        registry=registry,
        model=model,
        store=store,
        monitor=monitor,
        rpc=rpc,
        fed_store=fed_store,
        primary=primary,
        standby=standby,
        failover=failover,
        region_nodes=region_nodes,
    )

    # Base population: installed synchronously (in-process protocol)
    # before the clock starts, durably checkpointed via the record
    # hooks -- exactly the state a takeover must be able to rebuild.
    split = max(1, int(len(chains) * config.base_fraction))
    deployment.base_chains = chains[:split]
    deployment.live_chains = chains[split:]
    for chain in deployment.base_chains:
        try:
            primary.submit(chain)
            deployment.base_installed += 1
        except Exception:
            continue  # infeasible under the border budget: skip
    return deployment


def generate_federation_scenario(
    config: FederationChaosConfig,
) -> Scenario:
    """The seeded fault schedule for one run.

    Link flaps hit coordinator<->region control links; the partition
    isolates one region's host from everything else (its intra traffic
    is unaffected -- the regional switchboard is local state); the
    region restart crashes a regional host and restarts its control
    process (volatile state loss); the coordinator crash kills the
    active coordinator for good (only failover brings the role back).
    Events never target the same chain twice by construction -- the
    schedule is pure network/process faults, so the tombstone-on-
    teardown semantics of removed chains is never in play.
    """
    rng = random.Random(f"fed-chaos-{config.seed}")
    duration = config.duration_s
    lo, hi = 0.1 * duration, 0.9 * duration
    region_hosts = [f"region.{r}" for r in range(config.regions)]
    pairs = [
        (coord, host)
        for coord in COORDINATOR_HOSTS
        for host in region_hosts
    ]
    events: list[FaultEvent] = []

    def window(length: float) -> tuple[float, float]:
        start = rng.uniform(lo, max(lo, hi - length))
        return start, min(start + length, hi)

    for _ in range(config.link_flaps):
        pair = rng.choice(pairs)
        start, end = window(config.flap_down_s)
        events.append(FaultEvent(start, "link_down", tuple(pair)))
        events.append(FaultEvent(end, "link_up", tuple(pair)))

    if config.partition:
        isolated = rng.choice(region_hosts)
        rest = tuple(
            sorted(
                h for h in (*COORDINATOR_HOSTS, *region_hosts)
                if h != isolated
            )
        )
        start, end = window(config.partition_s)
        events.append(
            FaultEvent(start, "partition", ((isolated,), rest))
        )
        events.append(FaultEvent(end, "heal_partition"))

    if config.coordinator_crash:
        at = rng.uniform(0.25 * duration, 0.45 * duration)
        events.append(FaultEvent(at, "gs_crash", (COORDINATOR_HOSTS[0],)))

    if config.region_restart:
        host = rng.choice(region_hosts)
        start, end = window(config.region_down_s)
        events.append(FaultEvent(start, "crash_host", (host,)))
        events.append(FaultEvent(end, "restart_host", (host,)))

    return Scenario(seed=config.seed, duration_s=duration, events=events)


class FederationChaosEngine:
    """Maps scenario events onto the deployed federation's fault
    primitives and heal-time reconciliation."""

    def __init__(
        self, deployment: FederationDeployment, config: FederationChaosConfig
    ):
        self.d = deployment
        self.config = config
        self.applied: list[tuple[float, str]] = []
        self.coordinator_crashes = 0
        self.region_restarts = 0
        self.crash_at: float | None = None

    def schedule(self, scenario: Scenario) -> None:
        for event in scenario.events:
            self.d.sim.schedule_at(event.at, self._apply, event)

    def _apply(self, event: FaultEvent) -> None:
        getattr(self, f"_on_{event.kind}")(event)
        self.applied.append((round(self.d.sim.now, 9), event.kind))

    def _on_link_down(self, event: FaultEvent) -> None:
        self.d.net.fail_link(*event.target)

    def _on_link_up(self, event: FaultEvent) -> None:
        self.d.net.restore_link(*event.target)

    def _on_partition(self, event: FaultEvent) -> None:
        self.d.net.partition([list(group) for group in event.target])

    def _on_heal_partition(self, event: FaultEvent) -> None:
        self.d.net.heal_partition()
        # Heal-time reconciliation: the acting coordinator re-syncs
        # every region against the durable record (releasing orphaned
        # prepares, settling unacked commits, collecting degraded-mode
        # intra admissions); the reconcile replies kick the regions'
        # cross-shard queues.
        active = self.d.active_coordinator()
        if active is not None:
            active.reconcile_all()

    def _on_gs_crash(self, event: FaultEvent) -> None:
        self.coordinator_crashes += 1
        self.crash_at = self.d.sim.now
        self.d.failover.crash_active()

    def _on_crash_host(self, event: FaultEvent) -> None:
        self.d.net.crash_host(event.target[0])

    def _on_restart_host(self, event: FaultEvent) -> None:
        host = event.target[0]
        self.d.net.restart_host(host)
        for node in self.d.region_nodes.values():
            if node.host == host:
                self.region_restarts += 1
                node.restart()


def _start_live_workload(
    d: FederationDeployment, config: FederationChaosConfig
) -> None:
    """Live submissions arrive at the ingress region's node in
    [0.05, 0.55] x duration -- early enough that every install resolves
    (or queues behind a fault and drains on heal) within the run."""
    rng = random.Random(f"fed-live-{config.seed}")
    lo, hi = 0.05 * config.duration_s, 0.55 * config.duration_s
    for chain in d.live_chains:
        region = d.primary.shard_map.region_of(d.model, chain.ingress)
        d.sim.schedule_at(
            rng.uniform(lo, hi), d.region_nodes[region].submit, chain
        )


@dataclass
class FederationChaosReport:
    """Outcome of one federated chaos run; deterministic per seed."""

    seed: int
    duration_s: float
    scenario_digest: str
    regions: int
    event_counts: dict[str, int]
    events_applied: list[tuple[float, str]]
    violations: list[Violation]
    base_installed: int
    live_submitted: int
    outcomes: dict[str, int]
    installed_total: int
    queued_peak: int
    queued_final: int
    degraded_admissions: int
    coordinator_crashes: int
    takeovers: int
    recovery_s: float | None
    aborted_recoveries: int
    recovered_commits: int
    reconciliations: int
    region_restarts: int
    probes_run: int
    rpc_sent: int = 0
    rpc_retries: int = 0
    rpc_timeouts: int = 0
    rpc_duplicates: int = 0

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_doc(self) -> dict:
        """Deterministic document: simulation-derived values only."""
        return {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "scenario_digest": self.scenario_digest,
            "regions": self.regions,
            "event_counts": self.event_counts,
            "events_applied": [
                {"at": at, "kind": kind} for at, kind in self.events_applied
            ],
            "violations": [
                {"at": round(v.at, 9), "invariant": v.invariant,
                 "detail": v.detail}
                for v in self.violations
            ],
            "base_installed": self.base_installed,
            "live_submitted": self.live_submitted,
            "outcomes": self.outcomes,
            "installed_total": self.installed_total,
            "queued": {"peak": self.queued_peak, "final": self.queued_final},
            "degraded_admissions": self.degraded_admissions,
            "failover": {
                "coordinator_crashes": self.coordinator_crashes,
                "takeovers": self.takeovers,
                "recovery_s": (
                    round(self.recovery_s, 9)
                    if self.recovery_s is not None
                    else None
                ),
                "aborted_recoveries": self.aborted_recoveries,
                "recovered_commits": self.recovered_commits,
            },
            "reconciliations": self.reconciliations,
            "region_restarts": self.region_restarts,
            "probes_run": self.probes_run,
            "rpc": {
                "sent": self.rpc_sent,
                "retries": self.rpc_retries,
                "timeouts": self.rpc_timeouts,
                "duplicates": self.rpc_duplicates,
            },
            "passed": self.passed,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), separators=(",", ":"),
                          sort_keys=True)

    def render(self) -> str:
        lines = [
            f"federated chaos soak: seed={self.seed} "
            f"duration={self.duration_s:g}s regions={self.regions}",
            f"schedule digest: {self.scenario_digest[:16]}... "
            f"({sum(self.event_counts.values())} events)",
            "events: " + ", ".join(
                f"{kind}={n}"
                for kind, n in sorted(self.event_counts.items())
            ),
            f"workload: {self.base_installed} base installed, "
            f"{self.live_submitted} live submitted -> outcomes "
            + ", ".join(
                f"{k}={v}" for k, v in sorted(self.outcomes.items())
            ),
            f"cross-shard queue: peak {self.queued_peak}, "
            f"final {self.queued_final}",
            f"degraded-mode intra admissions: {self.degraded_admissions}",
        ]
        if self.coordinator_crashes:
            recovery = (
                f"{self.recovery_s:.3f}s"
                if self.recovery_s is not None
                else "n/a"
            )
            lines.append(
                f"failover: {self.coordinator_crashes} crash(es), "
                f"{self.takeovers} takeover(s), recovery {recovery}; "
                f"WAL settle: {self.aborted_recoveries} aborted, "
                f"{self.recovered_commits} re-driven"
            )
        lines.append(
            f"reconciliations: {self.reconciliations}, "
            f"region restarts: {self.region_restarts}"
        )
        lines.append(
            f"rpc: {self.rpc_sent} sent / {self.rpc_retries} retries / "
            f"{self.rpc_timeouts} timeouts / "
            f"{self.rpc_duplicates} dups suppressed"
        )
        lines.append(f"invariant probes run: {self.probes_run}")
        if self.passed:
            lines.append("PASS: zero invariant violations")
        else:
            lines.append(f"FAIL: {len(self.violations)} violation(s)")
            for violation in self.violations[:20]:
                lines.append(f"  {violation}")
        return "\n".join(lines)


def run_federation_chaos(
    config: FederationChaosConfig | None = None,
    scenario: Scenario | None = None,
) -> FederationChaosReport:
    """Run one seeded federated chaos soak end to end.

    Passing an explicit ``scenario`` replays that exact schedule;
    otherwise it is generated from ``config.seed``.
    """
    config = config or FederationChaosConfig()
    d = build_federation_deployment(config)
    if scenario is None:
        scenario = generate_federation_scenario(config)

    engine = FederationChaosEngine(d, config)
    engine.schedule(scenario)
    d.failover.start(config.duration_s)
    _start_live_workload(d, config)

    checker = InvariantChecker(d.sim, interval_s=config.probe_interval_s)
    checker.add("link_conservation", link_conservation(d.net))
    checker.add("lease_safety", lease_safety(d.monitor))
    probes = federation_probes(
        d.active_coordinator,
        in_flight=d.in_flight,
        skip_regions=d.skip_regions,
        nodes=d.coordinators,
        net=d.net,
        region_nodes=list(d.region_nodes.values()),
    )
    for name, probe in probes.items():
        checker.add(name, probe)
    checker.start(config.duration_s)

    d.net.run(until=config.duration_s)
    d.net.run()  # drain in-flight deliveries, retries, and deadlines

    # Final settle: the acting coordinator reconciles once more (all
    # faults healed except the crashed primary, which stays down) and
    # the regions re-drive whatever is still queued; then drain again.
    active = d.active_coordinator()
    if active is not None:
        active.reconcile_all()
    for node in d.region_nodes.values():
        if node.needs_resync:
            node._request_resync()
        for name in node.queued():
            node._forward(name)
    d.net.run()

    # Final probes: everything, now also quiescence, drained queues,
    # and no lingering network traffic.
    final_probes = federation_probes(
        d.active_coordinator,
        in_flight=d.in_flight,
        skip_regions=d.skip_regions,
        quiescent=True,
        nodes=d.coordinators,
        net=d.net,
        region_nodes=list(d.region_nodes.values()),
        final=True,
    )
    for name, probe in final_probes.items():
        for detail in probe():
            checker.violations.append(
                Violation(d.sim.now, f"final:{name}", detail)
            )
    for detail in network_quiescence(d.net)():
        checker.violations.append(
            Violation(d.sim.now, "network_quiescence", detail)
        )

    outcomes: dict[str, int] = {}
    for node in d.region_nodes.values():
        for outcome in node.outcomes.values():
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
    recovery_s = None
    if engine.crash_at is not None:
        after = [
            t for t in d.failover.takeover_times if t >= engine.crash_at
        ]
        if after:
            recovery_s = after[0] - engine.crash_at
    active = d.active_coordinator()

    return FederationChaosReport(
        seed=config.seed,
        duration_s=config.duration_s,
        scenario_digest=scenario.digest(),
        regions=config.regions,
        event_counts=scenario.counts(),
        events_applied=engine.applied,
        violations=list(checker.violations),
        base_installed=d.base_installed,
        live_submitted=len(d.live_chains),
        outcomes=dict(sorted(outcomes.items())),
        installed_total=(
            len(active.installed()) if active is not None else 0
        ),
        queued_peak=sum(
            node.queued_peak for node in d.region_nodes.values()
        ),
        queued_final=sum(
            len(node.queued()) for node in d.region_nodes.values()
        ),
        degraded_admissions=sum(
            node.degraded_admissions for node in d.region_nodes.values()
        ),
        coordinator_crashes=engine.coordinator_crashes,
        takeovers=d.failover.takeovers,
        recovery_s=recovery_s,
        aborted_recoveries=sum(
            node.aborted_recoveries for node in d.coordinators
        ),
        recovered_commits=sum(
            node.recovered_commits for node in d.coordinators
        ),
        reconciliations=sum(
            node.reconciliations for node in d.coordinators
        ),
        region_restarts=engine.region_restarts,
        probes_run=checker.probes_run,
        rpc_sent=d.rpc.sent,
        rpc_retries=d.rpc.retries,
        rpc_timeouts=d.rpc.timeouts,
        rpc_duplicates=d.rpc.duplicates_suppressed,
    )


__all__ = [
    "FederationChaosConfig",
    "FederationChaosEngine",
    "FederationChaosReport",
    "FederationDeployment",
    "build_federation_deployment",
    "generate_federation_scenario",
    "run_federation_chaos",
]
