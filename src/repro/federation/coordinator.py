"""The thin global coordinator of the federated switchboard.

The coordinator owns *only* what cannot be decided inside one shard:

- **Classification** -- a submitted chain whose endpoints share a
  region and whose VNFs are all deployed there is handed to that
  :class:`~repro.federation.regional.RegionalSwitchboard` untouched
  (the common case by construction: workloads are locality-biased).
- **Splitting** -- a cross-shard chain is cut at border sites into
  per-region segments: a small DP assigns each VNF to a region that
  deploys it while minimising border crossings along the region graph,
  the region sequence is expanded via :meth:`ShardMap.region_path`,
  and each consecutive region pair gets a concrete
  :class:`~repro.federation.shard.BorderLink` (best-first, rotating on
  retry).  Segment demands are exact slices of the original per-stage
  demands, and each crossing reserves the full stage demand on its
  border ledger -- the stitched end-to-end path can never load a
  border beyond the reservation.
- **Atomic install** -- segments are installed with the epoch-fenced
  two-phase commit of ``controller.protocol``: prepare every involved
  region in order; any rejection aborts *all* prepared regions and the
  next attempt re-splits with the next border choice; only a full set
  of prepares commits.  A coordinator crash mid-prepare leaves fenced
  residue that :meth:`GlobalCoordinator.sweep` reclaims, exactly like
  ``resilience.sweeper``.
- **Stitching** -- :meth:`end_to_end_route` reassembles the committed
  segments and crossings into the end-to-end path;
  ``federation.invariants`` checks continuity and demand conservation.

Planning stays regional: :meth:`plan_all` runs each region's solver
farm independently (embarrassingly parallel across regions; each farm
is itself partitioned and cached) and merges the results into a
:class:`FederatedPlan`.  The coordinator also duck-types the
``GlobalSwitchboard`` solver strategy (``solve`` / ``resolve``), so
``GlobalSwitchboard(model, solver=coordinator)`` transparently plans
through the federation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.lp import LpObjective
from repro.core.model import Chain, NetworkModel
from repro.federation.regional import (
    RegionalSwitchboard,
    SegmentSpec,
    trivial_segment,
)
from repro.federation.shard import BorderLink, FederationError, build_shards
from repro.resilience.rpc import BackoffPolicy
from repro.scale.farm import FarmResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

_EPS = 1e-9


class CoordinatorCrash(Exception):
    """Injected coordinator failure mid-install (fault testing)."""


@dataclass
class CrossChainRecord:
    """A committed cross-shard chain: its segments and crossings."""

    chain: Chain
    segments: tuple[SegmentSpec, ...]
    attempt: int


@dataclass
class FederatedPlan:
    """Merged outcome of per-region solves.

    Duck-types the ``status`` / ``objective`` / ``ok`` surface of
    :class:`~repro.core.lp.LpResult`; there is deliberately no merged
    ``RoutingSolution`` (regions route over disjoint sub-models), so
    federated accounting lives in ``carried_demand`` (cross-shard
    chains counted once, bottlenecked by their weakest segment) and
    ``violations`` (per-region LP invariants plus border ledger
    bounds).
    """

    status: str
    objective: float | None
    per_region: dict[int, FarmResult]
    wall_seconds: float
    carried_demand: float
    offered_demand: float
    violations: list[str] = field(default_factory=list)
    #: Regions actually re-solved on this call (resolve path).
    resolved_regions: tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "optimal"

    @property
    def solution(self) -> None:
        return None

    @property
    def solve_seconds(self) -> float:
        return self.wall_seconds


class GlobalCoordinator:
    """Two-level control plane: regional switchboards + thin global tier."""

    def __init__(
        self,
        model: NetworkModel,
        n_regions: int = 4,
        partition_size: int | None = 16,
        max_workers: int = 1,
        max_attempts: int = 3,
        metrics: "MetricsRegistry | None" = None,
        fault_policy=None,
        shard_map=None,
        regionals: dict[int, RegionalSwitchboard] | None = None,
        retry_backoff: "BackoffPolicy | None" = None,
    ):
        self.model = model
        self.metrics = metrics
        self.max_attempts = max_attempts
        self.fault_policy = fault_policy
        # A standby coordinator shares the primary's shard map and
        # regional switchboards (the regions are the ground truth; only
        # the coordinator's *memory* of installed chains is per-node and
        # lost on a crash) -- pass both in to build a peer.
        self.shard_map = (
            shard_map if shard_map is not None else build_shards(
                model, n_regions
            )
        )
        if regionals is not None:
            self.regionals = regionals
        else:
            self.regionals = {}
            for shard in self.shard_map.shards:
                regional_model = self.shard_map.regional_model(
                    model, shard.region
                )
                self.regionals[shard.region] = RegionalSwitchboard(
                    region=shard.region,
                    model=regional_model,
                    owned_borders=[
                        self.shard_map.borders[b]
                        for b in shard.owned_borders
                    ],
                    partition_size=partition_size,
                    max_workers=max_workers,
                    metrics=metrics,
                )
        #: Install-retry pacing: one deterministic backoff implementation
        #: shared with the RPC retransmit timer (resilience.rpc).  The
        #: synchronous install path retries in-line; the deployed
        #: CoordinatorNode paces its async retry rounds with this.
        if retry_backoff is not None:
            self.retry_backoff = retry_backoff
        elif fault_policy is not None and getattr(
            fault_policy, "retry_backoff", None
        ) is not None:
            self.retry_backoff = fault_policy.retry_backoff
        else:
            self.retry_backoff = BackoffPolicy(name="fed-install")
        #: Installed intra chains: name -> owning region.
        self._intra: dict[str, int] = {}
        #: Installed cross-shard chains: name -> record.
        self._cross: dict[str, CrossChainRecord] = {}
        self._attempt = 0
        #: region -> (regional generation at solve time, result); reuse
        #: is only safe while the region's model is unchanged since.
        self._last_plans: dict[int, tuple[int, FarmResult]] = {}
        self._gauge("federation.regions", self.shard_map.n_regions)
        self._gauge("federation.coordinator.queue_depth", 0)

    # -- install / remove -------------------------------------------------

    def submit(self, chain: Chain) -> int | CrossChainRecord:
        """Install one chain; returns the owning region (intra) or the
        cross-shard record.  The chain is registered in the federated
        model; a failed cross-shard install deregisters it again."""
        name = chain.name
        if name in self._intra or name in self._cross:
            raise FederationError(f"chain {name!r} is already installed")
        added = name not in self.model.chains
        if added:
            self.model.add_chain(chain)
        region = self._classify(chain)
        if region is not None:
            self.regionals[region].admit(chain)
            self._record_intra(name, region, chain)
            self._inc("federation.chains.intra")
            self._update_ratio()
            return region
        try:
            record = self._install_cross(chain)
        except (FederationError, CoordinatorCrash):
            if added and name in self.model.chains:
                self.model.remove_chain(name)
            raise
        self._inc("federation.chains.cross")
        self._update_ratio()
        return record

    def submit_all(self, chains: Iterable[Chain]) -> list[int | CrossChainRecord]:
        """Drain a batch through :meth:`submit`, tracking queue depth."""
        queue = list(chains)
        results: list[int | CrossChainRecord] = []
        for i, chain in enumerate(queue):
            self._gauge("federation.coordinator.queue_depth", len(queue) - i)
            results.append(self.submit(chain))
        self._gauge("federation.coordinator.queue_depth", 0)
        return results

    def remove(self, name: str) -> None:
        """Tear down an installed chain (intra or cross-shard)."""
        if name in self._intra:
            region = self._intra.pop(name)
            self.regionals[region].evict(name)
        elif name in self._cross:
            record = self._cross.pop(name)
            for seg in record.segments:
                self.regionals[seg.region].teardown(seg.chain.name)
        else:
            raise FederationError(f"chain {name!r} is not installed")
        if name in self.model.chains:
            self.model.remove_chain(name)
        self._unrecord(name)
        self._update_ratio()

    # -- durable-record hooks (overridden by the deployed node) ------------

    def _record_intra(self, name: str, region: int, chain: Chain) -> None:
        self._intra[name] = region

    def _record_cross(self, record: CrossChainRecord) -> None:
        self._cross[record.chain.name] = record

    def _unrecord(self, name: str) -> None:
        """Called after a chain is removed (checkpoint cleanup hook)."""

    def installed(self) -> list[str]:
        return sorted(set(self._intra) | set(self._cross))

    def is_cross(self, name: str) -> bool:
        return name in self._cross

    def sweep(self) -> list[tuple[int, str]]:
        """Backstop GC: reclaim prepared-but-uncommitted segment residue
        abandoned by a crashed coordinator.  Call at quiescence."""
        released: list[tuple[int, str]] = []
        for region in sorted(self.regionals):
            for key in self.regionals[region].sweep():
                released.append((region, key))
        self._inc("federation.sweeps")
        if released:
            if self.metrics is not None:
                self.metrics.counter("federation.orphans_released").inc(
                    len(released)
                )
        return released

    # -- planning ---------------------------------------------------------

    def plan_all(
        self, objective: LpObjective = LpObjective.MAX_THROUGHPUT
    ) -> FederatedPlan:
        """Cold/warm plan: every region's farm solves independently."""
        start = time.perf_counter()
        per_region = {
            region: self.regionals[region].plan(objective)
            for region in sorted(self.regionals)
        }
        self._last_plans = {
            region: (self.regionals[region].generation, result)
            for region, result in per_region.items()
        }
        return self._merge(
            per_region,
            objective,
            time.perf_counter() - start,
            resolved=tuple(sorted(per_region)),
        )

    def solve(
        self,
        model: NetworkModel,
        objective: LpObjective = LpObjective.MAX_THROUGHPUT,
    ) -> FederatedPlan:
        """``GlobalSwitchboard`` solver-strategy entry point.

        Syncs the federation against the (shared) full model -- new
        chains are installed, gone chains torn down, demand changes
        pushed into regional copies -- then plans every region."""
        self.sync_chains()
        return self.plan_all(objective)

    def resolve(
        self,
        model: NetworkModel,
        changed_chains: Iterable[str],
        objective: LpObjective = LpObjective.MAX_THROUGHPUT,
    ) -> FederatedPlan:
        """Incremental federated re-plan after demand changes.

        Only regions hosting a changed chain (or a segment of one)
        re-solve -- and inside each, only the touched partitions, via
        the farm's own incremental path.  Untouched regions reuse their
        last result."""
        start = time.perf_counter()
        by_region: dict[int, set[str]] = {}
        for name in set(changed_chains):
            chain = self.model.chains.get(name)
            if chain is None:
                raise FederationError(f"unknown chain {name!r}")
            if name in self._intra:
                region = self._intra[name]
                self.regionals[region].update_demand(chain)
                by_region.setdefault(region, set()).add(name)
            elif name in self._cross:
                for seg in self._refresh_segments(name, chain):
                    if not trivial_segment(seg.chain):
                        by_region.setdefault(seg.region, set()).add(
                            seg.chain.name
                        )
            else:
                raise FederationError(f"chain {name!r} is not installed")
        per_region: dict[int, FarmResult] = {}
        for region in sorted(self.regionals):
            regional = self.regionals[region]
            changed = by_region.get(region)
            cached = self._last_plans.get(region)
            if changed:
                per_region[region] = regional.reoptimize(
                    sorted(changed), objective
                )
            elif cached is not None and cached[0] == regional.generation:
                per_region[region] = cached[1]
            else:
                # Model mutated since the cached plan (install/remove):
                # an empty incremental pass re-merges from the farm's
                # own solution cache, solving only actual misses.
                per_region[region] = regional.reoptimize([], objective)
        self._last_plans = {
            region: (self.regionals[region].generation, result)
            for region, result in per_region.items()
        }
        return self._merge(
            per_region,
            objective,
            time.perf_counter() - start,
            resolved=tuple(sorted(by_region)),
        )

    # -- stitching / introspection ----------------------------------------

    def end_to_end_route(self, name: str) -> tuple[dict, ...]:
        """The stitched path: segments interleaved with border crossings."""
        if name in self._intra:
            return (
                {
                    "kind": "segment",
                    "region": self._intra[name],
                    "name": name,
                },
            )
        record = self._cross.get(name)
        if record is None:
            raise FederationError(f"chain {name!r} is not installed")
        hops: list[dict] = []
        for seg in record.segments:
            hops.append(
                {
                    "kind": "segment",
                    "region": seg.region,
                    "name": seg.chain.name,
                    "ingress": seg.chain.ingress,
                    "egress": seg.chain.egress,
                    "vnfs": seg.chain.vnfs,
                }
            )
            for link_name, demand in seg.border_demands:
                border = self.shard_map.borders[link_name]
                hops.append(
                    {
                        "kind": "border",
                        "name": link_name,
                        "src": border.src,
                        "dst": border.dst,
                        "src_region": border.src_region,
                        "dst_region": border.dst_region,
                        "demand": demand,
                    }
                )
        return tuple(hops)

    def border_utilization(self) -> dict[str, float]:
        """Reserved share of each border link's headroom."""
        utilization: dict[str, float] = {}
        for regional in self.regionals.values():
            for name, ledger in regional.ledgers.items():
                if ledger.capacity <= 0:
                    utilization[name] = float(
                        "inf" if ledger.reserved() > _EPS else 0.0
                    )
                else:
                    utilization[name] = ledger.reserved() / ledger.capacity
        return utilization

    def stats(self) -> dict:
        total = len(self._intra) + len(self._cross)
        return {
            "regions": self.shard_map.n_regions,
            "borders": len(self.shard_map.borders),
            "chains_intra": len(self._intra),
            "chains_cross": len(self._cross),
            "cross_shard_ratio": (len(self._cross) / total) if total else 0.0,
            "region_chains": {
                region: len(self.regionals[region].model.chains)
                for region in sorted(self.regionals)
            },
        }

    def sync_chains(self) -> dict[str, list[str]]:
        """Reconcile installed state against the shared full model."""
        want = set(self.model.chains)
        have = set(self._intra) | set(self._cross)
        removed = sorted(have - want)
        for name in removed:
            self.remove(name)
        added = sorted(want - have)
        for name in added:
            self.submit(self.model.chains[name])
        updated: list[str] = []
        for name in sorted(want & have):
            chain = self.model.chains[name]
            if name in self._intra:
                region = self._intra[name]
                if self.regionals[region].model.chains.get(name) is not chain:
                    self.regionals[region].update_demand(chain)
                    updated.append(name)
            else:
                if self._cross[name].chain is not chain:
                    self._refresh_segments(name, chain)
                    updated.append(name)
        return {"added": added, "removed": removed, "updated": updated}

    # -- internals ---------------------------------------------------------

    def _classify(self, chain: Chain) -> int | None:
        """Owning region when the chain is intra-shard, else ``None``."""
        ingress_region = self.shard_map.region_of(self.model, chain.ingress)
        egress_region = self.shard_map.region_of(self.model, chain.egress)
        if ingress_region != egress_region:
            return None
        regional = self.regionals[ingress_region]
        if all(vnf in regional.model.vnfs for vnf in chain.vnfs):
            return ingress_region
        return None

    def _assign_vnf_regions(self, chain: Chain) -> list[int]:
        """DP: per-VNF region assignment minimising border crossings
        along ingress-region -> r_1 -> ... -> r_L -> egress-region."""
        smap = self.shard_map
        ingress_region = smap.region_of(self.model, chain.ingress)
        egress_region = smap.region_of(self.model, chain.egress)
        candidates: list[list[int]] = []
        for vnf in chain.vnfs:
            options = sorted(
                region
                for region, regional in self.regionals.items()
                if vnf in regional.model.vnfs
            )
            if not options:
                raise FederationError(
                    f"chain {chain.name!r}: VNF {vnf!r} is deployed nowhere"
                )
            candidates.append(options)

        def crossings(a: int, b: int) -> int:
            return len(smap.region_path(a, b)) - 1

        # dp[r] = (cost, assignment-so-far ending in region r)
        dp: dict[int, tuple[int, tuple[int, ...]]] = {
            ingress_region: (0, ())
        }
        for options in candidates:
            nxt: dict[int, tuple[int, tuple[int, ...]]] = {}
            for region in options:
                best: tuple[int, tuple[int, ...]] | None = None
                for prev, (cost, path) in sorted(dp.items()):
                    total = cost + crossings(prev, region)
                    if best is None or total < best[0]:
                        best = (total, path + (region,))
                if best is not None:
                    nxt[region] = best
            if not nxt:
                raise FederationError(
                    f"chain {chain.name!r}: no reachable region for a VNF"
                )
            dp = nxt
        best: tuple[int, tuple[int, ...]] | None = None
        for region, (cost, path) in sorted(dp.items()):
            total = cost + crossings(region, egress_region)
            if best is None or total < best[0]:
                best = (total, path)
        assert best is not None
        return list(best[1])

    def _split(self, chain: Chain, choice: int) -> list[SegmentSpec]:
        """Cut a cross-shard chain into per-region segments.

        ``choice`` rotates the border pick between adjacent regions --
        the deterministic retry lever after a border-capacity
        rejection."""
        smap = self.shard_map
        ingress_region = smap.region_of(self.model, chain.ingress)
        egress_region = smap.region_of(self.model, chain.egress)
        assigned = self._assign_vnf_regions(chain)

        sequence: list[int] = [ingress_region]
        for region in [*assigned, egress_region]:
            sequence.extend(smap.region_path(sequence[-1], region)[1:])

        segment_vnfs: list[list[str]] = [[] for _ in sequence]
        pointer = 0
        for vnf, region in zip(chain.vnfs, assigned):
            while sequence[pointer] != region:
                pointer += 1
            segment_vnfs[pointer].append(vnf)

        crossings: list[BorderLink] = []
        for k in range(len(sequence) - 1):
            options = smap.borders_between(sequence[k], sequence[k + 1])
            if not options:  # pragma: no cover - region_path guarantees
                raise FederationError(
                    f"no border from region {sequence[k]} to {sequence[k + 1]}"
                )
            crossings.append(options[choice % len(options)])

        segments: list[SegmentSpec] = []
        stage_ptr = 1
        for k, region in enumerate(sequence):
            vnfs = segment_vnfs[k]
            forward = chain.forward_traffic[stage_ptr - 1 : stage_ptr + len(vnfs)]
            reverse = chain.reverse_traffic[stage_ptr - 1 : stage_ptr + len(vnfs)]
            ingress = chain.ingress if k == 0 else crossings[k - 1].dst
            egress = chain.egress if k == len(sequence) - 1 else crossings[k].src
            stage_ptr += len(vnfs)
            border_demands: tuple[tuple[str, float], ...] = ()
            if k < len(sequence) - 1:
                border_demands = (
                    (crossings[k].name, chain.stage_traffic(stage_ptr)),
                )
            segments.append(
                SegmentSpec(
                    origin=chain.name,
                    index=k,
                    region=region,
                    chain=Chain(
                        f"{chain.name}@s{k}",
                        ingress,
                        egress,
                        vnfs,
                        forward,
                        reverse,
                    ),
                    border_demands=border_demands,
                )
            )
        if stage_ptr != chain.num_stages:  # pragma: no cover - invariant
            raise FederationError(
                f"chain {chain.name!r}: stage accounting drift in split"
            )
        return segments

    def _install_cross(self, chain: Chain) -> CrossChainRecord:
        """Epoch-fenced 2PC across every region the split touches."""
        for attempt_no in range(self.max_attempts):
            self._attempt += 1
            attempt = self._attempt
            segments = self._split(chain, choice=attempt_no)
            prepared: list[SegmentSpec] = []
            rejected = False
            for seg in segments:
                self._inc("federation.2pc.prepares")
                ok = not self._fault_reject(
                    chain.name, seg.region, attempt_no
                ) and self.regionals[seg.region].prepare(seg, attempt)
                if not ok:
                    self._inc("federation.2pc.rejections")
                    rejected = True
                    break
                prepared.append(seg)
                crash_after = self._fault_crash(chain.name, attempt_no)
                if crash_after is not None and len(prepared) >= crash_after:
                    # Crash mid-install: prepared residue stays behind
                    # (fenced by its attempt epoch) until sweep().
                    raise CoordinatorCrash(chain.name)
            if not rejected:
                for seg in segments:
                    self.regionals[seg.region].commit(seg.chain.name, attempt)
                self._inc("federation.2pc.commits")
                record = CrossChainRecord(chain, tuple(segments), attempt)
                self._record_cross(record)
                return record
            for seg in prepared:
                self.regionals[seg.region].abort(seg.chain.name, attempt)
            self._inc("federation.2pc.aborts")
        raise FederationError(
            f"install of {chain.name!r} exhausted {self.max_attempts} attempts"
        )

    def _refresh_segments(
        self, name: str, chain: Chain
    ) -> tuple[SegmentSpec, ...]:
        """Push new demands into a committed chain's segments (structure
        and border choices are kept; only demand slices change)."""
        record = self._cross[name]
        stage_ptr = 1
        refreshed: list[SegmentSpec] = []
        for seg in record.segments:
            n_vnfs = len(seg.chain.vnfs)
            forward = chain.forward_traffic[stage_ptr - 1 : stage_ptr + n_vnfs]
            reverse = chain.reverse_traffic[stage_ptr - 1 : stage_ptr + n_vnfs]
            stage_ptr += n_vnfs
            border_demands = tuple(
                (link_name, chain.stage_traffic(stage_ptr))
                for link_name, _old in seg.border_demands
            )
            refreshed.append(
                SegmentSpec(
                    origin=name,
                    index=seg.index,
                    region=seg.region,
                    chain=Chain(
                        seg.chain.name,
                        seg.chain.ingress,
                        seg.chain.egress,
                        seg.chain.vnfs,
                        forward,
                        reverse,
                    ),
                    border_demands=border_demands,
                )
            )
        # Validate every border resize up front so the refresh is atomic
        # across segments (no partial demand push on failure).
        for seg in refreshed:
            for link_name, amount in seg.border_demands:
                ledger = self.regionals[seg.region].ledgers[link_name]
                if not ledger.fits_update(seg.chain.name, amount):
                    raise FederationError(
                        f"chain {name!r}: border {link_name!r} cannot fit "
                        f"the new demand of {seg.chain.name!r}"
                    )
        for seg in refreshed:
            self.regionals[seg.region].update_segment(seg)
        record.chain = chain
        record.segments = tuple(refreshed)
        return record.segments

    def _merge(
        self,
        per_region: dict[int, FarmResult],
        objective: LpObjective,
        wall_seconds: float,
        resolved: tuple[int, ...],
    ) -> FederatedPlan:
        status = "optimal"
        for result in per_region.values():
            if not result.ok:
                status = result.status
                break
        objectives = [
            r.objective for r in per_region.values() if r.objective is not None
        ]
        if not objectives:
            merged_objective = None
        elif objective is LpObjective.MIN_MLU:
            merged_objective = max(objectives)
        else:
            merged_objective = sum(objectives)

        carried = 0.0
        offered = 0.0
        for name, region in self._intra.items():
            chain = self.model.chains[name]
            demand = chain.stage_traffic(1)
            offered += demand
            solution = per_region[region].solution
            if solution is not None:
                carried += solution.routed_fraction(name) * demand
        for name, record in self._cross.items():
            demand = record.chain.stage_traffic(1)
            offered += demand
            fraction = 1.0
            for seg in record.segments:
                if trivial_segment(seg.chain):
                    continue
                solution = per_region[seg.region].solution
                if solution is None:
                    fraction = 0.0
                    break
                fraction = min(
                    fraction, solution.routed_fraction(seg.chain.name)
                )
            carried += fraction * demand

        violations: list[str] = []
        for region in sorted(per_region):
            solution = per_region[region].solution
            if solution is not None:
                violations.extend(
                    f"region {region}: {problem}"
                    for problem in solution.violations()
                )
        violations.extend(self.border_violations())
        return FederatedPlan(
            status=status,
            objective=merged_objective,
            per_region=per_region,
            wall_seconds=wall_seconds,
            carried_demand=carried,
            offered_demand=offered,
            violations=violations,
            resolved_regions=resolved,
        )

    def border_violations(self, tol: float = 1e-6) -> list[str]:
        """Border-capacity contract: reservations within link headroom."""
        problems: list[str] = []
        for region in sorted(self.regionals):
            for name, ledger in sorted(self.regionals[region].ledgers.items()):
                reserved = ledger.reserved()
                if reserved > ledger.capacity + tol:
                    problems.append(
                        f"border {name!r} (region {region}) over-reserved: "
                        f"{reserved:.6g} > {ledger.capacity:.6g}"
                    )
        return problems

    def _fault_reject(self, chain: str, region: int, attempt_no: int) -> bool:
        policy = self.fault_policy
        return bool(
            policy is not None
            and policy.reject_prepare(chain, region, attempt_no)
        )

    def _fault_crash(self, chain: str, attempt_no: int) -> int | None:
        policy = self.fault_policy
        if policy is None:
            return None
        return policy.crash_after_prepares(chain, attempt_no)

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _gauge(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    def _update_ratio(self) -> None:
        total = len(self._intra) + len(self._cross)
        self._gauge(
            "federation.cross_shard_ratio",
            (len(self._cross) / total) if total else 0.0,
        )


__all__ = [
    "CoordinatorCrash",
    "CrossChainRecord",
    "FederatedPlan",
    "GlobalCoordinator",
]
