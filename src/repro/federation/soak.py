"""Seeded fault-injection soak for the federated control plane.

A lightweight `repro.chaos`-style soak specialised to the federation:
a seeded operation mix (cross-shard submits, removals, demand changes
with incremental re-plans) runs against a live
:class:`~repro.federation.GlobalCoordinator` while a
:class:`FaultPolicy` injects regional prepare rejections and
coordinator crashes mid-install.  After every operation the invariant
probes from ``federation.invariants`` run -- border capacity safety,
2PC all-or-nothing atomicity, stitching continuity, and (after each
sweep) quiescence.  The soak is fully deterministic per seed and
returns a machine-readable report, so the CI smoke step and
``python -m repro federation --soak`` share one code path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.lp import LpObjective
from repro.core.model import Chain, NetworkModel
from repro.federation.coordinator import (
    CoordinatorCrash,
    GlobalCoordinator,
)
from repro.federation.invariants import federation_probes
from repro.federation.shard import FederationError
from repro.resilience.rpc import BackoffPolicy


@dataclass
class FaultPolicy:
    """Seeded fault injection hooks consumed by the coordinator.

    ``reject_rate`` is the probability a regional prepare is refused
    outright (a regional switchboard saying no); ``crash_rate`` the
    probability a coordinator crashes mid-install, after a random
    number of successful prepares (leaving fenced residue for
    :meth:`~repro.federation.GlobalCoordinator.sweep`).  Faults only
    fire on the first attempt of an install so retries can converge.

    The policy also carries the ``retry_backoff``
    :class:`~repro.resilience.rpc.BackoffPolicy` the coordinator paces
    its install retries with, so scripted soaks and the RPC transport
    share one seeded backoff implementation.
    """

    seed: int = 0
    reject_rate: float = 0.0
    crash_rate: float = 0.0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._crash_plan: dict[str, int] = {}
        self.retry_backoff = BackoffPolicy(seed=self.seed, name="fed-install")

    def reject_prepare(self, chain: str, region: int, attempt_no: int) -> bool:
        if attempt_no > 0:
            return False
        return self._rng.random() < self.reject_rate

    def crash_after_prepares(self, chain: str, attempt_no: int) -> int | None:
        if attempt_no > 0:
            return None
        if chain not in self._crash_plan:
            if self._rng.random() < self.crash_rate:
                self._crash_plan[chain] = 1 + self._rng.randrange(3)
            else:
                self._crash_plan[chain] = 0
        planned = self._crash_plan[chain]
        return planned if planned > 0 else None


def run_soak(
    model: NetworkModel,
    coordinator: GlobalCoordinator,
    pending: list[Chain],
    ops: int = 60,
    seed: int = 0,
    objective: LpObjective = LpObjective.MAX_THROUGHPUT,
) -> dict:
    """Drive a seeded operation mix with invariant probes after each op.

    ``pending`` is the pool of not-yet-installed chains the soak draws
    submits from; removed chains return to it.  The coordinator should
    already hold an installed base (so removals and demand changes have
    targets) and carry a :class:`FaultPolicy` for injection.
    """
    rng = random.Random(seed)
    pending = list(pending)
    counts = {
        "submit": 0,
        "submit_rejected": 0,
        "crash": 0,
        "sweep_released": 0,
        "remove": 0,
        "demand_change": 0,
        "resolve": 0,
    }
    violations: list[dict] = []
    last_plan = None

    # ``last_plan`` is only consulted while still current: a
    # submit/remove invalidates its RoutingSolutions (they hold the
    # regional models by reference), so mutation probes fall back to
    # the ledger-only capacity check.
    probes = federation_probes(
        lambda: coordinator,
        plan_of=lambda: last_plan,
        quiescent=True,
    )

    def probe(op: str, quiescent: bool) -> None:
        for invariant, check in probes.items():
            if invariant == "fed_quiescence" and not quiescent:
                continue
            for problem in check():
                violations.append(
                    {"op": op, "invariant": invariant, "problem": problem}
                )

    for step in range(ops):
        roll = rng.random()
        if roll < 0.45 and pending:
            chain = pending.pop(rng.randrange(len(pending)))
            counts["submit"] += 1
            try:
                coordinator.submit(chain)
            except CoordinatorCrash:
                counts["crash"] += 1
                # The "restarted" coordinator only runs its sweep; the
                # abandoned install is simply gone.
                counts["sweep_released"] += len(coordinator.sweep())
            except FederationError:
                counts["submit_rejected"] += 1
            last_plan = None
            probe("submit", quiescent=True)
        elif roll < 0.65 and coordinator.installed():
            name = rng.choice(coordinator.installed())
            coordinator.remove(name)
            counts["remove"] += 1
            last_plan = None
            probe("remove", quiescent=True)
        elif coordinator.installed():
            names = rng.sample(
                coordinator.installed(),
                k=min(3, len(coordinator.installed())),
            )
            for name in names:
                chain = model.chains[name]
                factor = rng.uniform(0.5, 1.5)
                scaled = chain.scaled(factor)
                model.remove_chain(name)
                model.add_chain(scaled)
                counts["demand_change"] += 1
            last_plan = None
            try:
                last_plan = coordinator.resolve(model, names, objective)
                counts["resolve"] += 1
            except FederationError:
                # A border cannot fit the scaled demand: revert.
                for name in names:
                    original = None
                    if name in coordinator._cross:
                        original = coordinator._cross[name].chain
                    elif name in coordinator._intra:
                        region = coordinator._intra[name]
                        original = coordinator.regionals[
                            region
                        ].model.chains.get(name)
                    if original is not None:
                        model.remove_chain(name)
                        model.add_chain(original)
            probe("resolve", quiescent=True)

    final_plan = coordinator.plan_all(objective)
    last_plan = final_plan
    probe("final_plan", quiescent=True)

    stats = coordinator.stats()
    return {
        "ops": ops,
        "seed": seed,
        "counts": counts,
        "stats": stats,
        "final_status": final_plan.status,
        "final_carried": round(final_plan.carried_demand, 6),
        "final_offered": round(final_plan.offered_demand, 6),
        "violations": violations,
        "ok": not violations and final_plan.ok,
    }


__all__ = ["FaultPolicy", "run_soak"]
