"""Deployed federation processes: coordinator and regional nodes.

``federation.coordinator`` installs cross-shard chains with *in-process*
calls into the regional switchboards; that is the right model for
benchmarks but useless for fault tolerance -- a partition cannot block
a Python method call.  This module deploys the same protocol onto the
simulated network:

- :class:`CoordinatorNode` subclasses
  :class:`~repro.federation.GlobalCoordinator` (so classification,
  splitting, planning, and the invariant probes work unchanged) but
  drives the epoch-fenced 2PC **asynchronously over the at-least-once
  RPC transport** (:mod:`repro.resilience.rpc`): sequential prepares,
  a durable WAL flip at the decide point, commits that may go unacked
  into a partition, per-install :mod:`repro.resilience.deadline`
  timeouts, and install retries paced by the shared
  :class:`~repro.resilience.rpc.BackoffPolicy`.  A standby node shares
  the primary's shard map and regional switchboards; on takeover it
  :meth:`recovers <CoordinatorNode.recover>` from the
  :class:`~repro.federation.ha.FederationStore` checkpoints and WAL.

- :class:`RegionalNode` is one region's deployed front end: it
  classifies submissions locally and **keeps admitting intra-region
  chains even when partitioned from every coordinator** (degraded-mode
  autonomy), while cross-shard requests queue and re-forward with
  seeded backoff until a coordinator answers.  It serves the 2PC
  participant ops (prepare/commit/abort/release) over RPC against its
  :class:`~repro.federation.regional.RegionalSwitchboard`, and applies
  the coordinator-driven **reconciliation** op that re-syncs committed
  segments, border ledgers, and intra chains after a partition heals
  or the region restarts.

All timers run on the simulated clock with seeded randomness, so a
chaos soak over these nodes replays byte-identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.model import Chain, NetworkModel
from repro.federation.coordinator import CrossChainRecord, GlobalCoordinator
from repro.federation.ha import (
    FederationStore,
    chain_doc,
    chain_from_doc,
    segment_doc,
    segment_from_doc,
)
from repro.federation.regional import RegionalSwitchboard, SegmentSpec
from repro.resilience.deadline import DeadlineManager
from repro.resilience.rpc import BackoffPolicy, RpcLayer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.shard import ShardMap
    from repro.obs.registry import MetricsRegistry


class _Install:
    """One in-flight cross-shard install at the coordinator."""

    __slots__ = (
        "chain", "origin", "added", "attempt_no", "attempt",
        "segments", "prepared", "phase", "pending",
    )

    def __init__(self, chain: Chain, origin: int, added: bool):
        self.chain = chain
        self.origin = origin
        #: Whether this install added the chain to the shared model
        #: (failure must deregister it again).
        self.added = added
        self.attempt_no = 0
        self.attempt = 0
        self.segments: tuple[SegmentSpec, ...] = ()
        self.prepared: list[SegmentSpec] = []
        #: "preparing" | "committing" | "aborting"
        self.phase = "preparing"
        #: Segment keys still awaiting a commit ack.
        self.pending: set[str] = set()


class CoordinatorNode(GlobalCoordinator):
    """A deployed global coordinator: the sync protocol, made async,
    durable, and partition-tolerant."""

    def __init__(
        self,
        name: str,
        host: str,
        rpc: RpcLayer,
        store: FederationStore,
        model: NetworkModel,
        region_hosts: dict[int, str],
        *,
        shard_map: "ShardMap | None" = None,
        regionals: dict[int, RegionalSwitchboard] | None = None,
        n_regions: int = 4,
        partition_size: int | None = 16,
        max_workers: int = 1,
        max_attempts: int = 3,
        metrics: "MetricsRegistry | None" = None,
        retry_backoff: BackoffPolicy | None = None,
        install_deadline_s: float = 10.0,
    ):
        super().__init__(
            model,
            n_regions=n_regions,
            partition_size=partition_size,
            max_workers=max_workers,
            max_attempts=max_attempts,
            metrics=metrics,
            shard_map=shard_map,
            regionals=regionals,
            retry_backoff=retry_backoff,
        )
        self.name = name
        self.host = host
        self.rpc = rpc
        self.net = rpc.network
        self.sim = rpc.sim
        self.store = store
        self.region_hosts = dict(region_hosts)
        self.install_deadline_s = install_deadline_s
        self.deadlines = DeadlineManager(self.sim, metrics)
        self.endpoint = rpc.endpoint(host, self._handle)
        #: Only the lease holder acts; FederationFailover flips this.
        self.active = False
        self._req = 0
        self._waiting: dict[int, Callable[[dict], None]] = {}
        self._installs: dict[str, _Install] = {}
        #: Chains decided (committed) whose commit did not reach every
        #: region: origin name -> regions still owed the commit.  The
        #: WAL entry stays until reconciliation settles them.
        self._unacked: dict[str, set[int]] = {}
        # Recovery accounting (surfaced in reports).
        self.aborted_recoveries = 0
        self.recovered_commits = 0
        self.reconciliations = 0

    # -- lifecycle ---------------------------------------------------------

    def activate(self, recover: bool) -> None:
        self.active = True
        if recover:
            self.recover()

    def deactivate(self) -> None:
        self.active = False

    def is_up(self) -> bool:
        return self.net.host_is_up(self.host)

    def in_flight(self) -> set[str]:
        """Origin chain names whose install state is legitimately
        transient (probes exclude them)."""
        return set(self._installs) | set(self._unacked)

    # -- durable-record hooks ---------------------------------------------

    def _record_intra(self, name: str, region: int, chain: Chain) -> None:
        super()._record_intra(name, region, chain)
        self.store.checkpoint_intra(name, region, chain)

    def _record_cross(self, record: CrossChainRecord) -> None:
        super()._record_cross(record)
        self.store.checkpoint_cross(record)
        self.store.checkpoint_ledgers(self._cross)

    def _unrecord(self, name: str) -> None:
        self.store.remove_chain(name)
        self.store.checkpoint_ledgers(self._cross)

    # -- message plumbing --------------------------------------------------

    def _handle(self, sender: str, message: Any) -> None:
        if not isinstance(message, dict) or "fed" not in message:
            return
        if not self.is_up():
            return
        kind = message["fed"]
        if kind == "reply":
            callback = self._waiting.pop(message["req"], None)
            if callback is not None and self.active:
                callback(message)
            return
        if not self.active:
            return  # a deactivated standby ignores protocol traffic
        if kind == "submit":
            self._remote_submit(
                chain_from_doc(message["chain"]), message["origin"]
            )
        elif kind == "notify_intra":
            self._remote_intra(
                chain_from_doc(message["chain"]), message["region"]
            )
        elif kind == "resync":
            self.reconcile_region(message["region"])

    def _request(
        self,
        region: int,
        payload: dict,
        on_reply: Callable[[dict], None],
        on_unreachable: Callable[[], None],
    ) -> None:
        self._req += 1
        rid = self._req
        self._waiting[rid] = on_reply

        def failed(_dst: str, _payload: Any) -> None:
            if self._waiting.pop(rid, None) is not None:
                on_unreachable()

        self.endpoint.send(
            self.region_hosts[region], dict(payload, req=rid),
            on_failure=failed,
        )

    def _notify(self, region: int, payload: dict) -> None:
        """Fire-and-forget (still at-least-once; give-up is silent --
        reconciliation is the backstop)."""
        self.endpoint.send(self.region_hosts[region], payload)

    def _send_outcome(self, origin: int, name: str, outcome: str) -> None:
        self._notify(
            origin, {"fed": "outcome", "name": name, "outcome": outcome}
        )

    # -- the async install state machine -----------------------------------

    def _remote_submit(self, chain: Chain, origin: int) -> None:
        name = chain.name
        if name in self._intra or name in self._cross:
            self._send_outcome(origin, name, "installed")
            return
        if name in self._installs:
            return  # duplicate of an in-flight request
        added = name not in self.model.chains
        if added:
            self.model.add_chain(chain)
        st = _Install(chain, origin, added)
        self._installs[name] = st
        self.deadlines.arm(
            f"fed:{name}", self.install_deadline_s, self._on_deadline
        )
        self._start_round(st)

    def _current(self, st: _Install) -> bool:
        return (
            self.active
            and self.is_up()
            and self._installs.get(st.chain.name) is st
        )

    def _start_round(self, st: _Install) -> None:
        self._attempt += 1
        st.attempt = self._attempt
        try:
            st.segments = tuple(self._split(st.chain, choice=st.attempt_no))
        except Exception:
            self._finish(st, "rejected")
            return
        st.prepared = []
        st.phase = "preparing"
        self.store.wal_begin(
            st.chain.name, st.origin, st.attempt, st.segments
        )
        self._prepare_next(st, 0)

    def _prepare_next(self, st: _Install, index: int) -> None:
        if index == len(st.segments):
            self._decide(st)
            return
        seg = st.segments[index]
        self._inc("federation.2pc.prepares")
        self._request(
            seg.region,
            {
                "fed": "prepare",
                "seg": segment_doc(seg),
                "attempt": st.attempt,
            },
            on_reply=lambda msg: self._on_prepare_reply(st, index, msg),
            on_unreachable=lambda: self._round_failed(st, unreachable=True),
        )

    def _on_prepare_reply(self, st: _Install, index: int, msg: dict) -> None:
        if not self._current(st) or st.phase != "preparing":
            return
        if msg.get("ok"):
            st.prepared.append(st.segments[index])
            self._prepare_next(st, index + 1)
        else:
            self._inc("federation.2pc.rejections")
            self._round_failed(st, unreachable=False)

    def _round_failed(self, st: _Install, unreachable: bool) -> None:
        if not self._current(st) or st.phase != "preparing":
            return
        st.phase = "aborting"
        self._inc("federation.2pc.aborts")
        for seg in st.prepared:
            self._request(
                seg.region,
                {
                    "fed": "abort",
                    "key": seg.chain.name,
                    "attempt": st.attempt,
                },
                on_reply=lambda _msg: None,
                on_unreachable=lambda: None,
            )
        if not unreachable and st.attempt_no + 1 < self.max_attempts:
            st.attempt_no += 1
            self.sim.schedule(
                self.retry_backoff.delay(st.attempt_no),
                self._retry_round,
                st,
            )
            return
        self._finish(st, "unavailable" if unreachable else "rejected")

    def _retry_round(self, st: _Install) -> None:
        if not self._current(st):
            return
        self._start_round(st)

    def _decide(self, st: _Install) -> None:
        """All prepares in: the 2PC commit point.  The WAL flip and the
        durable chain record land before any commit message leaves."""
        st.phase = "committing"
        name = st.chain.name
        self.store.wal_decide(name)
        record = CrossChainRecord(st.chain, st.segments, st.attempt)
        self._record_cross(record)
        self._inc("federation.2pc.commits")
        self._inc("federation.chains.cross")
        self._update_ratio()
        st.pending = {seg.chain.name for seg in st.segments}
        self._send_commits(st)

    def _send_commits(self, st: _Install) -> None:
        for seg in st.segments:
            key = seg.chain.name
            self._request(
                seg.region,
                {"fed": "commit", "key": key, "attempt": st.attempt},
                on_reply=lambda msg, s=seg: self._on_commit_reply(
                    st, s, msg
                ),
                on_unreachable=lambda s=seg: self._commit_unacked(st, s),
            )

    def _on_commit_reply(self, st: _Install, seg: SegmentSpec, msg: dict) -> None:
        if self._installs.get(st.chain.name) is not st:
            return
        if msg.get("ok"):
            st.pending.discard(seg.chain.name)
            self._maybe_finish_commit(st)
        else:
            # The region lost its prepared entry (e.g. it restarted
            # mid-install): reconciliation re-adopts the segment.
            self._commit_unacked(st, seg)

    def _commit_unacked(self, st: _Install, seg: SegmentSpec) -> None:
        if self._installs.get(st.chain.name) is not st:
            return
        st.pending.discard(seg.chain.name)
        self._unacked.setdefault(st.chain.name, set()).add(seg.region)
        self._maybe_finish_commit(st)

    def _maybe_finish_commit(self, st: _Install) -> None:
        if st.pending:
            return
        # Decided installs are installed regardless of unacked commits;
        # the WAL entry survives for those until reconciliation.
        if st.chain.name not in self._unacked:
            self.store.wal_clear(st.chain.name)
        self._finish(st, "installed", clear_wal=False)

    def _on_deadline(self, key: str) -> None:
        if not self.active or not self.is_up():
            # Fenced off (crashed or deposed) mid-install: the timer
            # must not touch the shared WAL or model -- settling the
            # round is the new leader's job now.
            return
        name = key.split(":", 1)[1]
        st = self._installs.get(name)
        if st is None:
            return
        if st.phase == "committing":
            # Decided: remaining acks are owed, not optional.
            for seg_key in list(st.pending):
                region = next(
                    seg.region
                    for seg in st.segments
                    if seg.chain.name == seg_key
                )
                self._unacked.setdefault(name, set()).add(region)
            st.pending = set()
            self._maybe_finish_commit(st)
            return
        # Still undecided: drop the round and let the origin re-queue.
        st.phase = "aborting"
        for seg in st.prepared:
            self._request(
                seg.region,
                {"fed": "abort", "key": seg.chain.name, "attempt": st.attempt},
                on_reply=lambda _msg: None,
                on_unreachable=lambda: None,
            )
        self._finish(st, "unavailable")

    def _finish(
        self, st: _Install, outcome: str, clear_wal: bool = True
    ) -> None:
        name = st.chain.name
        self._installs.pop(name, None)
        self.deadlines.disarm(f"fed:{name}")
        # Drop any still-outstanding retransmits of this install's
        # protocol messages: the epoch fences make late copies no-ops.
        self.endpoint.cancel_matching(
            lambda payload: isinstance(payload, dict)
            and payload.get("fed") in ("prepare", "abort")
            and (
                payload.get("key", "").startswith(f"{name}@")
                or payload.get("seg", {}).get("origin") == name
            )
        )
        if clear_wal:
            self.store.wal_clear(name)
        if outcome != "installed":
            if st.added and name in self.model.chains:
                self.model.remove_chain(name)
        self._send_outcome(st.origin, name, outcome)

    # -- remote intra admissions ------------------------------------------

    def _remote_intra(self, chain: Chain, region: int) -> None:
        name = chain.name
        if name in self._intra or name in self._cross:
            return
        if name not in self.model.chains:
            self.model.add_chain(chain)
        self._record_intra(name, region, chain)
        self._inc("federation.chains.intra")
        self._update_ratio()

    # -- recovery and reconciliation ---------------------------------------

    def recover(self) -> None:
        """Standby takeover: restore checkpoints, settle the WAL, then
        reconcile every region against the durable record."""
        intra, cross = self.store.restore()
        # Resume the attempt counter above every epoch the previous
        # coordinator fenced with, so this node's new rounds are never
        # rejected as stale by the regions' epoch fences.
        self._attempt = max(
            self._attempt,
            self.store.last_attempt(),
            max((r.attempt for r in cross.values()), default=0),
        )
        for name, (region, chain) in sorted(intra.items()):
            self._intra.setdefault(name, region)
            if name not in self.model.chains:
                self.model.add_chain(chain)
        for name, record in sorted(cross.items()):
            self._cross.setdefault(name, record)
            if name not in self.model.chains:
                self.model.add_chain(record.chain)
        for name, entry in sorted(self.store.pending_wal().items()):
            if entry["phase"] == "preparing":
                # Outcome unknown: abort.  ``release`` drops whatever
                # the regions hold without tombstoning, so the origin's
                # queued retry can re-install the chain.
                self.aborted_recoveries += 1
                for seg in entry["segments"]:
                    self._notify(
                        seg.region,
                        {"fed": "release", "key": seg.chain.name},
                    )
                if (
                    name not in self._cross
                    and name not in self._intra
                    and name in self.model.chains
                ):
                    self.model.remove_chain(name)
                self.store.wal_clear(name)
            else:
                # Decided but possibly unacked: the durable record owns
                # the capacity; re-drive the idempotent commits and let
                # reconciliation settle whatever stays unreachable.
                record = self._cross.get(name)
                if record is None:  # pragma: no cover - decide is atomic
                    self.store.wal_clear(name)
                    continue
                self.recovered_commits += 1
                self._unacked.setdefault(name, set()).update(
                    seg.region for seg in record.segments
                )
                for seg in record.segments:
                    self._notify(
                        seg.region,
                        {
                            "fed": "commit",
                            "key": seg.chain.name,
                            "attempt": record.attempt,
                        },
                    )
                self._send_outcome(entry["origin"], name, "installed")
        self._update_ratio()
        self.reconcile_all()

    def reconcile_all(self) -> None:
        for region in sorted(self.regionals):
            self.reconcile_region(region)

    def reconcile_region(self, region: int) -> None:
        """Push the authoritative state for one region: committed
        segments (with attempts), intra chains, and the keep-set of
        in-flight segments.  The region adopts/releases to match and
        reports intra chains it admitted in degraded mode."""
        committed = []
        covered: set[str] = set()
        for name in sorted(self._cross):
            record = self._cross[name]
            for seg in record.segments:
                if seg.region == region:
                    covered.add(name)
                    committed.append(
                        {
                            "seg": segment_doc(seg),
                            "attempt": record.attempt,
                        }
                    )
        intra_docs = [
            chain_doc(self.model.chains[name])
            for name in sorted(self._intra)
            if self._intra[name] == region
            and name in self.model.chains
        ]
        keep = sorted(
            seg.chain.name
            for st in self._installs.values()
            for seg in st.segments
            if seg.region == region
        )
        self._request(
            region,
            {
                "fed": "reconcile",
                "committed": committed,
                "intra": intra_docs,
                "keep": keep,
                # Snapshot version: the region must not tear down or
                # release state from rounds fenced *after* this point
                # (a reconcile in flight races with live installs).
                "upto": self._attempt,
            },
            on_reply=lambda msg: self._on_reconciled(region, covered, msg),
            on_unreachable=lambda: None,
        )

    def _on_reconciled(
        self, region: int, covered: set[str], msg: dict
    ) -> None:
        self.reconciliations += 1
        self._inc("federation.ledger_reconciliations")
        for doc in msg.get("extra_intra", ()):
            chain = chain_from_doc(doc)
            if chain.name in self._intra or chain.name in self._cross:
                continue
            if chain.name not in self.model.chains:
                self.model.add_chain(chain)
            self._record_intra(chain.name, region, chain)
            self._inc("federation.chains.intra")
        self._update_ratio()
        # Commits owed to this region are settled -- but only for the
        # chains this reconcile actually pushed (a stale snapshot must
        # not vouch for commits it never carried).
        for name in sorted(self._unacked):
            if name not in covered:
                continue
            owed = self._unacked[name]
            owed.discard(region)
            if not owed:
                del self._unacked[name]
                self.store.wal_clear(name)


class RegionalNode:
    """One region's deployed front end: local admission, cross-shard
    queueing, the 2PC participant surface, and reconciliation."""

    def __init__(
        self,
        region: int,
        host: str,
        rpc: RpcLayer,
        regional: RegionalSwitchboard,
        model: NetworkModel,
        shard_map: "ShardMap",
        coordinator_hosts: list[str],
        *,
        backoff: BackoffPolicy | None = None,
        retry_until: float = float("inf"),
        seed: int = 0,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.region = region
        self.host = host
        self.rpc = rpc
        self.net = rpc.network
        self.sim = rpc.sim
        self.regional = regional
        self.model = model
        self.shard_map = shard_map
        self.coordinator_hosts = list(coordinator_hosts)
        self.backoff = backoff or BackoffPolicy(
            seed=seed, name=f"fed-region-{region}"
        )
        #: Sim-clock horizon after which retry timers stop re-arming,
        #: so a drain run terminates.
        self.retry_until = retry_until
        self.metrics = metrics
        self.endpoint = rpc.endpoint(host, self._handle)
        #: Every chain ever submitted at this node (the client log).
        self.submitted: dict[str, Chain] = {}
        #: name -> "installed" | "rejected".
        self.outcomes: dict[str, str] = {}
        #: Cross-shard chains awaiting a terminal outcome, FIFO.
        self.queue: list[str] = []
        self.queued_peak = 0
        self.degraded_admissions = 0
        self._degraded: set[str] = set()
        self._tries: dict[str, int] = {}
        self._coord_idx = 0
        #: Set after a restart wiped the switchboard; cleared once a
        #: reconcile lands.  Probes skip the region while set.
        self.needs_resync = False

    # -- submissions -------------------------------------------------------

    def submit(self, chain: Chain) -> None:
        """Admit locally (intra) or queue for the coordinator (cross)."""
        name = chain.name
        if name in self.submitted:
            return
        self.submitted[name] = chain
        if self._is_intra(chain):
            self._admit_intra(chain)
        else:
            self.queue.append(name)
            self.queued_peak = max(self.queued_peak, len(self.queue))
            self._set_queue_gauge()
            self._forward(name)

    def queued(self) -> list[str]:
        return list(self.queue)

    def _is_intra(self, chain: Chain) -> bool:
        if (
            self.shard_map.region_of(self.model, chain.ingress)
            != self.region
            or self.shard_map.region_of(self.model, chain.egress)
            != self.region
        ):
            return False
        return all(vnf in self.regional.model.vnfs for vnf in chain.vnfs)

    def _admit_intra(self, chain: Chain) -> None:
        """Degraded-mode autonomy: intra admission never waits for a
        coordinator; the notification is asynchronous and survives
        partitions by retrying."""
        if chain.name not in self.regional._intra:
            self.regional.admit(chain)
        self.outcomes[chain.name] = "installed"
        self._notify_intra(chain.name)

    def _notify_intra(self, name: str) -> None:
        if not self.net.host_is_up(self.host):
            return
        chain = self.submitted[name]

        def failed(_dst: str, _payload: Any) -> None:
            if name not in self._degraded:
                self._degraded.add(name)
                self.degraded_admissions += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "federation.degraded_admissions"
                    ).inc()
            self._rotate_coordinator()
            self._rearm(f"intra:{name}", self._notify_intra, name)

        self.endpoint.send(
            self._coordinator_host(),
            {
                "fed": "notify_intra",
                "region": self.region,
                "chain": chain_doc(chain),
            },
            on_failure=failed,
        )

    def _forward(self, name: str) -> None:
        if name not in self.queue or not self.net.host_is_up(self.host):
            return
        chain = self.submitted[name]

        def failed(_dst: str, _payload: Any) -> None:
            self._rotate_coordinator()
            self._rearm(f"fwd:{name}", self._forward, name)

        self.endpoint.send(
            self._coordinator_host(),
            {
                "fed": "submit",
                "origin": self.region,
                "chain": chain_doc(chain),
            },
            on_failure=failed,
        )

    def _rearm(self, key: str, fn: Callable, *args: Any) -> None:
        """Seeded-backoff retry, bounded by the drain horizon."""
        tries = self._tries.get(key, 0)
        self._tries[key] = tries + 1
        if self.sim.now < self.retry_until:
            self.sim.schedule(self.backoff.delay(min(tries, 6)), fn, *args)

    def _coordinator_host(self) -> str:
        return self.coordinator_hosts[
            self._coord_idx % len(self.coordinator_hosts)
        ]

    def _rotate_coordinator(self) -> None:
        self._coord_idx += 1

    def _set_queue_gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "federation.queued_cross_shard", region=self.region
            ).set(len(self.queue))

    # -- restart -----------------------------------------------------------

    def restart(self) -> None:
        """The region's control process restarted: volatile switchboard
        state is gone; ask the coordinator for a full resync and start
        re-forwarding the queue."""
        self.regional.reset()
        self.needs_resync = True
        self._tries.clear()
        self._request_resync()
        for name in self.queue:
            self._forward(name)

    def _request_resync(self) -> None:
        if not self.needs_resync or not self.net.host_is_up(self.host):
            return

        def failed(_dst: str, _payload: Any) -> None:
            self._rotate_coordinator()
            self._rearm("resync", self._request_resync)

        self.endpoint.send(
            self._coordinator_host(),
            {"fed": "resync", "region": self.region},
            on_failure=failed,
        )

    # -- inbound protocol ---------------------------------------------------

    def _handle(self, sender: str, message: Any) -> None:
        if not isinstance(message, dict) or "fed" not in message:
            return
        if sender in self.coordinator_hosts:
            # Every protocol message comes from the acting coordinator:
            # learn it, so queued re-forwards go to the live one instead
            # of burning the retry budget on a crashed primary.
            self._coord_idx = self.coordinator_hosts.index(sender)
        kind = message["fed"]
        if kind == "prepare":
            seg = segment_from_doc(message["seg"])
            ok = self.regional.prepare(seg, message["attempt"])
            self._reply(sender, message, ok)
        elif kind == "commit":
            ok = self.regional.commit(message["key"], message["attempt"])
            self._reply(sender, message, ok)
        elif kind == "abort":
            ok = self.regional.abort(message["key"], message["attempt"])
            self._reply(sender, message, ok)
        elif kind == "release":
            self.regional._release_prepared(message["key"])
        elif kind == "reconcile":
            self._apply_reconcile(sender, message)
        elif kind == "outcome":
            self._on_outcome(message["name"], message["outcome"])

    def _reply(self, sender: str, message: dict, ok: bool, **extra: Any) -> None:
        if "req" not in message:
            # Fire-and-forget op (e.g. a commit re-driven from the WAL
            # during recovery): nobody is waiting on the answer.
            return
        self.endpoint.send(
            sender, {"fed": "reply", "req": message["req"], "ok": ok, **extra}
        )

    def _on_outcome(self, name: str, outcome: str) -> None:
        if name not in self.submitted:
            return
        if outcome == "unavailable":
            # The coordinator dropped the round (deadline/partition):
            # stay queued and try again later.
            if name in self.queue:
                self._rearm(f"fwd:{name}", self._forward, name)
            return
        self.outcomes[name] = outcome
        if name in self.queue:
            self.queue.remove(name)
            self._set_queue_gauge()

    def _apply_reconcile(self, sender: str, message: dict) -> None:
        """Adopt the coordinator's authoritative state: committed
        segments and their ledger entries, intra chains, and the
        keep-set of live prepares; report degraded-mode admissions the
        coordinator has not recorded."""
        upto = message.get("upto", 1 << 62)
        keep = set(message["keep"])
        want: dict[str, tuple[SegmentSpec, int]] = {}
        for entry in message["committed"]:
            seg = segment_from_doc(entry["seg"])
            want[seg.chain.name] = (seg, entry["attempt"])
        for key in list(self.regional.committed_segments()):
            # Leave alone rounds fenced after the snapshot (epoch >
            # upto) *and* rounds the snapshot itself marked in flight
            # (keep): either can legitimately commit while this
            # reconcile is in transit.
            if (
                key not in want
                and key not in keep
                and self.regional.epoch_of(key) <= upto
            ):
                self.regional.teardown(key)
        for key in sorted(want):
            seg, attempt = want[key]
            self.regional.adopt_segment(seg, attempt)
        for key in list(self.regional.prepared_segments()):
            if key not in keep and self.regional.epoch_of(key) <= upto:
                self.regional._release_prepared(key)
        pushed = set()
        for doc in message["intra"]:
            chain = chain_from_doc(doc)
            pushed.add(chain.name)
            self.regional.adopt_intra(chain)
        if self.needs_resync:
            # Re-admit intra chains this node installed (client log)
            # that the restart wiped and the coordinator never learned
            # about (degraded-mode admissions lost mid-notify).
            for name, outcome in sorted(self.outcomes.items()):
                if outcome != "installed" or name in pushed:
                    continue
                chain = self.submitted[name]
                if self._is_intra(chain):
                    self.regional.adopt_intra(chain)
            self.needs_resync = False
        extra_intra = [
            chain_doc(self.submitted[name])
            for name in self.regional.intra_chains()
            if name not in pushed and name in self.submitted
        ]
        self._reply(sender, message, True, extra_intra=extra_intra)
        # The coordinator is clearly reachable: kick the queue.
        for name in self.queue:
            self._forward(name)


__all__ = ["CoordinatorNode", "RegionalNode"]
