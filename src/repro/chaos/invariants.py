"""Continuously-evaluated system invariants.

An :class:`InvariantChecker` holds named probes and evaluates all of
them periodically on the *simulated* clock (plus once on demand at
settle points).  Each probe is a plain callable returning violation
detail strings, so the checkers are provable live: the chaos self-test
deliberately corrupts state (a link counter, a fake bus delivery, an
overlapping lease grant) and asserts the corresponding probe fires.

Probes shipped here, matching the failure modes the chaos scenarios
exercise:

- **link conservation** -- ``sent == delivered + dropped + in_flight``
  per link with non-negative, monotonically non-decreasing counters
  (faults must turn messages into drops, never lose them from the
  ledger);
- **2PC atomicity** -- no VNF service holds a dangling reservation once
  recovery settles (a crashed coordinator must not leave capacity half
  committed);
- **capacity safety** -- per (VNF, site), the capacity committed by the
  service equals the sum committed across installed chains and never
  exceeds the surviving capacity;
- **bus delivery** -- every recorded delivery belongs to an attached
  subscriber, latencies are non-negative, and WAN drops never exceed
  WAN sends;
- **lease safety** -- at most one leader at any simulated time: no two
  lease grants by different owners overlap (tracked by
  :class:`LeaseMonitor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, TYPE_CHECKING

from repro.controller.replication import ReplicatedStore, ReplicationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bus.bus import GlobalMessageBus
    from repro.controller.global_switchboard import GlobalSwitchboard
    from repro.controller.protocol import BusDrivenInstaller
    from repro.simnet.events import Simulator
    from repro.simnet.network import SimNetwork

_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One invariant violation observed at a simulated time."""

    at: float
    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[t={self.at:.3f}s] {self.invariant}: {self.detail}"


class InvariantChecker:
    """Periodic evaluation of registered invariant probes."""

    def __init__(self, sim: "Simulator", interval_s: float = 1.0):
        if interval_s <= 0:
            raise ValueError("non-positive probe interval")
        self.sim = sim
        self.interval_s = interval_s
        self._probes: dict[str, Callable[[], Iterable[str]]] = {}
        self.violations: list[Violation] = []
        self.probes_run = 0

    def add(self, name: str, probe: Callable[[], Iterable[str]]) -> None:
        if name in self._probes:
            raise ValueError(f"duplicate invariant {name!r}")
        self._probes[name] = probe

    def check_now(self) -> list[Violation]:
        """Run every probe once; returns (and records) new violations."""
        found: list[Violation] = []
        now = self.sim.now
        for name, probe in self._probes.items():
            self.probes_run += 1
            for detail in probe():
                found.append(Violation(now, name, detail))
        self.violations.extend(found)
        return found

    def start(self, until: float) -> None:
        """Schedule probes every ``interval_s`` up to ``until``."""

        def tick() -> None:
            self.check_now()
            if self.sim.now + self.interval_s <= until:
                self.sim.schedule(self.interval_s, tick)

        self.sim.schedule(self.interval_s, tick)


# ---------------------------------------------------------------------------
# Probe factories
# ---------------------------------------------------------------------------


def link_conservation(net: "SimNetwork") -> Callable[[], list[str]]:
    """``sent == delivered + dropped + in_flight`` per link, counters
    non-negative and non-decreasing between probes, queues non-negative.

    The in-flight term is derived, so the *checkable* content is the
    inequality system around it plus monotonicity: a fault
    implementation that forgot to account a dropped message would show
    up as delivered + dropped exceeding sent after the queue drains, or
    as a counter moving backwards.
    """
    last: dict[tuple[str, str], tuple[int, int, int]] = {}

    def probe() -> list[str]:
        out: list[str] = []
        for (src, dst), state in net._links.items():
            s = state.stats
            link = f"{src}->{dst}"
            if min(s.sent, s.delivered, s.dropped) < 0:
                out.append(f"{link}: negative counter {s}")
            if s.delivered + s.dropped > s.sent:
                out.append(
                    f"{link}: delivered {s.delivered} + dropped "
                    f"{s.dropped} > sent {s.sent}"
                )
            if s.bytes_delivered + s.bytes_dropped > s.bytes_sent:
                out.append(
                    f"{link}: byte ledger exceeds bytes_sent "
                    f"({s.bytes_delivered} + {s.bytes_dropped} > "
                    f"{s.bytes_sent})"
                )
            if state.queued_bytes < 0:
                out.append(f"{link}: negative queue {state.queued_bytes}")
            prev = last.get((src, dst))
            now = (s.sent, s.delivered, s.dropped)
            if prev is not None and any(n < p for n, p in zip(now, prev)):
                out.append(f"{link}: counters went backwards {prev} -> {now}")
            last[(src, dst)] = now
        return out

    return probe


def network_quiescence(net: "SimNetwork") -> Callable[[], list[str]]:
    """No message in flight -- valid only once the event queue drained
    (the soak runner registers this for its final settle check only)."""

    def probe() -> list[str]:
        out = []
        for (src, dst), state in net._links.items():
            if state.stats.in_flight != 0:
                out.append(
                    f"{src}->{dst}: {state.stats.in_flight} message(s) "
                    "unaccounted after drain"
                )
        return out

    return probe


def two_phase_atomicity(
    gs: "GlobalSwitchboard",
    installer: "BusDrivenInstaller | None" = None,
) -> Callable[[], list[str]]:
    """No dangling 2PC reservation once recovery settles: every prepare
    was either committed or aborted.

    With an ``installer``, the probe skips while installs are in flight
    -- a live 2PC legitimately holds reservations mid-round.
    """

    def probe() -> list[str]:
        if installer is not None and (
            installer._pending or installer.rpc.outstanding()
        ):
            # In-flight installs and un-acked control RPCs (e.g.
            # teardowns still being retransmitted) legitimately leave
            # participant state without an owning installation.
            return []
        out = []
        for name, service in gs.vnf_services.items():
            pending = service.pending_reservations()
            if pending:
                out.append(
                    f"service {name!r} holds {pending} dangling "
                    "reservation(s)"
                )
        return out

    return probe


def capacity_safety(
    gs: "GlobalSwitchboard",
    installer: "BusDrivenInstaller | None" = None,
) -> Callable[[], list[str]]:
    """Committed capacity never exceeds surviving capacity, and the
    services' ledgers agree with the installed chains' records.

    With an ``installer``, the probe skips while installs are in flight:
    a commit lands at the VNF service one WAN delay before the
    coordinator publishes the installation record, so the two ledgers
    legitimately disagree mid-install.
    """

    def probe() -> list[str]:
        if installer is not None and (
            installer._pending or installer.rpc.outstanding()
        ):
            # In-flight installs and un-acked control RPCs (e.g.
            # teardowns still being retransmitted) legitimately leave
            # participant state without an owning installation.
            return []
        out = []
        per_site: dict[tuple[str, str], float] = {}
        for installation in gs.installations.values():
            for (vnf, site), load in installation.committed_load.items():
                per_site[(vnf, site)] = per_site.get((vnf, site), 0.0) + load
        for name, service in gs.vnf_services.items():
            for site, cap in service.site_capacity.items():
                committed = service.committed(site)
                if committed > cap + _EPS:
                    out.append(
                        f"{name}@{site}: committed {committed:.3f} exceeds "
                        f"capacity {cap:.3f}"
                    )
                if committed < -_EPS:
                    out.append(f"{name}@{site}: negative committed load")
                recorded = per_site.get((name, site), 0.0)
                if abs(recorded - committed) > 1e-3:
                    out.append(
                        f"{name}@{site}: installations record "
                        f"{recorded:.3f} but service ledger has "
                        f"{committed:.3f}"
                    )
        return out

    return probe


def no_orphaned_reservations(
    gs: "GlobalSwitchboard",
    installer: "BusDrivenInstaller | None" = None,
) -> Callable[[], list[str]]:
    """The end-to-end outcome guarantee of the resilient control plane:
    after quiescence every submitted chain either fully installed or was
    aborted with all participant state released.  Concretely, per VNF
    service: zero outstanding reservations, and the per-(vnf, site) sum
    of committed chain loads recorded by the coordinator's installations
    equals what the service's own ledger holds -- no reservation or
    commitment survives without an owning installation.

    With an ``installer``, the probe skips while installs are in flight
    (their reservations and half-published commitments are legitimate).
    """

    def probe() -> list[str]:
        if installer is not None and (
            installer._pending or installer.rpc.outstanding()
        ):
            # In-flight installs and un-acked control RPCs (e.g.
            # teardowns still being retransmitted) legitimately leave
            # participant state without an owning installation.
            return []
        out = []
        recorded: dict[tuple[str, str], float] = {}
        for installation in gs.installations.values():
            for (vnf, site), load in installation.committed_load.items():
                recorded[(vnf, site)] = recorded.get((vnf, site), 0.0) + load
        for name, service in gs.vnf_services.items():
            for (chain, site), load in sorted(service.reservations().items()):
                out.append(
                    f"{name}@{site}: orphaned reservation of {load:.3f} "
                    f"for chain {chain!r}"
                )
            for site in service.sites:
                committed = service.committed(site)
                expected = recorded.get((name, site), 0.0)
                if abs(committed - expected) > 1e-3:
                    out.append(
                        f"{name}@{site}: service ledger holds "
                        f"{committed:.3f} but installations own "
                        f"{expected:.3f}"
                    )
        return out

    return probe


def bus_delivery(bus: "GlobalMessageBus") -> Callable[[], list[str]]:
    """Deliveries are attributable and sane: each recorded delivery
    belongs to an attached subscriber whose own receive log agrees,
    latencies are non-negative, and WAN drops never exceed WAN sends."""

    def probe() -> list[str]:
        out = []
        stats = bus.stats
        if stats.wan_drops > stats.wan_messages:
            out.append(
                f"wan_drops {stats.wan_drops} > wan_messages "
                f"{stats.wan_messages}"
            )
        per_client: dict[str, int] = {}
        for delivery in stats.deliveries:
            if delivery.latency < -_EPS:
                out.append(
                    f"negative delivery latency {delivery.latency:.6f}s "
                    f"to {delivery.subscriber!r}"
                )
            per_client[delivery.subscriber] = (
                per_client.get(delivery.subscriber, 0) + 1
            )
        for name, count in per_client.items():
            client = bus.clients.get(name)
            if client is None:
                out.append(f"delivery recorded for unknown client {name!r}")
            elif len(client.received) != count:
                out.append(
                    f"client {name!r} logged {len(client.received)} "
                    f"receipts but the bus recorded {count} deliveries"
                )
        return out

    return probe


# ---------------------------------------------------------------------------
# Leader-lease monitoring
# ---------------------------------------------------------------------------


@dataclass
class LeaseGrant:
    """One successful lease acquisition (possibly truncated by an
    explicit release)."""

    owner: str
    granted_at: float
    expires_at: float
    quorum_alive: int = 0


@dataclass
class LeaseMonitor:
    """Wraps a :class:`ReplicatedStore`'s lease API, recording every
    grant so lease safety is checkable after the fact.

    Renewals by the owner extend its latest grant; a release truncates
    it.  Quorum loss turns acquisition attempts into clean failures
    (recorded as such) instead of exceptions inside scenario events.
    """

    store: ReplicatedStore
    grants: list[LeaseGrant] = field(default_factory=list)
    failed_acquires: int = 0

    def acquire(self, owner: str, now: float, duration: float) -> bool:
        try:
            ok = self.store.acquire_lease(owner, now, duration)
        except ReplicationError:
            self.failed_acquires += 1
            return False
        if ok:
            latest = self.grants[-1] if self.grants else None
            if latest is not None and latest.owner == owner and (
                latest.expires_at >= now
            ):
                latest.expires_at = now + duration  # renewal
            else:
                self.grants.append(
                    LeaseGrant(owner, now, now + duration,
                               self.store.alive_count())
                )
        return ok

    def release(self, owner: str, now: float) -> None:
        try:
            self.store.release_lease(owner)
        except ReplicationError:
            return
        for grant in reversed(self.grants):
            if grant.owner == owner and grant.expires_at > now:
                grant.expires_at = now
                break

    def leader(self, now: float) -> str | None:
        try:
            return self.store.leader(now)
        except ReplicationError:
            return None


def lease_safety(monitor: LeaseMonitor) -> Callable[[], list[str]]:
    """At most one leader per lease window: no two grants by different
    owners overlap in time, and every grant had a quorum behind it."""

    def probe() -> list[str]:
        out = []
        grants = sorted(monitor.grants, key=lambda g: g.granted_at)
        for i, a in enumerate(grants):
            if a.quorum_alive and a.quorum_alive < monitor.store.quorum:
                out.append(
                    f"lease to {a.owner!r} at t={a.granted_at:.3f} with "
                    f"only {a.quorum_alive} replicas alive"
                )
            for b in grants[i + 1:]:
                if b.granted_at >= a.expires_at - _EPS:
                    break
                if b.owner != a.owner:
                    out.append(
                        f"overlapping leases: {a.owner!r} "
                        f"[{a.granted_at:.3f}, {a.expires_at:.3f}) and "
                        f"{b.owner!r} [{b.granted_at:.3f}, "
                        f"{b.expires_at:.3f})"
                    )
        return out

    return probe
