"""Declarative, seeded fault schedules.

A :class:`Scenario` is a plain list of timed :class:`FaultEvent`\\ s --
no callbacks, no hidden state -- so it can be serialized, diffed, and
replayed byte-identically.  :func:`generate_scenario` builds one from a
single integer seed: random link flaps on the WAN, optional loss and
delay-degradation windows, one site outage, one bus-proxy crash, and one
controller leader kill, all with times and targets drawn from
``random.Random(seed)``.  Two calls with the same seed and config
produce the same JSON document (that is asserted by the chaos tests and
surfaced as the schedule digest in the soak report).

The schedule is *applied* by :class:`repro.chaos.runner.ChaosEngine`,
which maps each event kind onto the simnet fault primitives, the
controller's recovery entry points, and the replicated store's lease
machinery.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Sequence


class ScenarioError(Exception):
    """Raised on invalid scenario construction."""


#: Event kinds understood by the chaos engine.
EVENT_KINDS = (
    "link_down",
    "link_up",
    "link_loss",
    "link_degrade",
    "partition",
    "heal_partition",
    "crash_host",
    "restart_host",
    "fail_site",
    "restore_site",
    "kill_leader",
    "control_loss",
    "gs_crash",
)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault or heal action.

    ``target`` is kind-dependent: a host pair for link events, a host
    name for crash/restart, a site name for site events, the partition
    groups (as a tuple of sorted site tuples) for ``partition``, and
    empty for ``heal_partition`` / ``kill_leader``.  ``value`` carries
    the loss probability or delay multiplier where applicable.
    """

    at: float
    kind: str
    target: tuple = ()
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ScenarioError(f"event in the past: {self.at}")
        if self.kind not in EVENT_KINDS:
            raise ScenarioError(f"unknown event kind {self.kind!r}")

    def to_doc(self) -> dict:
        return {
            "at": round(self.at, 9),
            "kind": self.kind,
            "target": list(self.target),
            "value": self.value,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "FaultEvent":
        """Inverse of :meth:`to_doc` (replay from a saved report)."""
        return cls(
            at=doc["at"],
            kind=doc["kind"],
            target=tuple(
                tuple(t) if isinstance(t, list) else t
                for t in doc["target"]
            ),
            value=doc["value"],
        )


@dataclass
class Scenario:
    """A reproducible fault schedule (events sorted by time)."""

    seed: int
    duration_s: float
    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: (e.at, e.kind, e.target))

    def to_json(self) -> str:
        """Deterministic serialization: same seed -> same bytes."""
        return json.dumps(
            {
                "seed": self.seed,
                "duration_s": self.duration_s,
                "events": [e.to_doc() for e in self.events],
            },
            separators=(",", ":"),
            sort_keys=True,
        )

    @classmethod
    def from_doc(cls, doc: dict) -> "Scenario":
        return cls(
            seed=doc["seed"],
            duration_s=doc["duration_s"],
            events=[FaultEvent.from_doc(e) for e in doc["events"]],
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Inverse of :meth:`to_json`: byte-identical round trips."""
        return cls.from_doc(json.loads(text))

    def digest(self) -> str:
        """Stable content hash of the schedule (hex SHA-256)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


def merge_scenarios(*scenarios: Scenario) -> Scenario:
    """Compose several fault schedules onto one timeline.

    The union of all events under the first scenario's seed, running to
    the longest horizon.  This is how the fuzzer stacks e.g. a
    link-flap schedule on top of a partition schedule: each half stays
    individually reproducible from its own seed, and the merged
    schedule is deterministic because the inputs are.
    """
    if not scenarios:
        raise ScenarioError("nothing to merge")
    events: list[FaultEvent] = []
    for scenario in scenarios:
        events.extend(scenario.events)
    return Scenario(
        seed=scenarios[0].seed,
        duration_s=max(s.duration_s for s in scenarios),
        events=events,
    )


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs for :func:`generate_scenario`.

    The defaults produce the acceptance mix: several link flaps, one
    site outage, one bus-proxy crash, and one leader kill, all inside
    the middle 80% of the run so recovery has time to settle.
    """

    duration_s: float = 60.0
    link_flaps: int = 3
    flap_down_s: float = 3.0
    loss_windows: int = 1
    loss_probability: float = 0.2
    degrade_windows: int = 1
    degrade_multiplier: float = 4.0
    window_s: float = 5.0
    site_outage: bool = True
    site_outage_s: float = 10.0
    proxy_crash: bool = True
    proxy_crash_s: float = 6.0
    leader_kill: bool = True
    partition: bool = False
    partition_s: float = 5.0
    #: Windows of probabilistic loss applied to *every* cross-site
    #: control link at once (the 2PC/RPC channels), exercising the
    #: resilience stack rather than the data path.
    control_loss_windows: int = 0
    control_loss_probability: float = 0.2
    #: Crash the active Global Switchboard process mid-run (its host
    #: goes down and stays down until the standby's failover takeover
    #: restarts it -- there is no scheduled heal event).
    gs_crash: bool = False


def generate_scenario(
    seed: int,
    sites: Sequence[str],
    wan_pairs: Sequence[tuple[str, str]],
    config: ScenarioConfig | None = None,
) -> Scenario:
    """Build a random-but-reproducible schedule from one seed.

    ``sites`` are the deployment sites (site outages, proxy crashes and
    partitions pick from them); ``wan_pairs`` are the simnet host pairs
    whose links flap/degrade (typically gateway->proxy pairs).
    """
    config = config or ScenarioConfig()
    if config.duration_s <= 0:
        raise ScenarioError("non-positive scenario duration")
    if not sites:
        raise ScenarioError("need at least one site")
    rng = random.Random(seed)
    events: list[FaultEvent] = []
    lo = 0.1 * config.duration_s
    hi = 0.9 * config.duration_s

    def window(length: float) -> tuple[float, float]:
        start = rng.uniform(lo, max(lo, hi - length))
        return start, min(start + length, hi)

    for _ in range(config.link_flaps):
        if not wan_pairs:
            break
        pair = rng.choice(list(wan_pairs))
        start, end = window(config.flap_down_s)
        events.append(FaultEvent(start, "link_down", tuple(pair)))
        events.append(FaultEvent(end, "link_up", tuple(pair)))

    for _ in range(config.loss_windows):
        if not wan_pairs:
            break
        pair = rng.choice(list(wan_pairs))
        start, end = window(config.window_s)
        events.append(
            FaultEvent(start, "link_loss", tuple(pair),
                       config.loss_probability)
        )
        events.append(FaultEvent(end, "link_loss", tuple(pair), 0.0))

    for _ in range(config.degrade_windows):
        if not wan_pairs:
            break
        pair = rng.choice(list(wan_pairs))
        start, end = window(config.window_s)
        events.append(
            FaultEvent(start, "link_degrade", tuple(pair),
                       config.degrade_multiplier)
        )
        events.append(FaultEvent(end, "link_degrade", tuple(pair), 1.0))

    if config.site_outage:
        site = rng.choice(list(sites))
        start, end = window(config.site_outage_s)
        events.append(FaultEvent(start, "fail_site", (site,)))
        events.append(FaultEvent(end, "restore_site", (site,)))

    if config.proxy_crash:
        site = rng.choice(list(sites))
        start, end = window(config.proxy_crash_s)
        events.append(FaultEvent(start, "crash_host", (f"proxy.{site}",)))
        events.append(FaultEvent(end, "restart_host", (f"proxy.{site}",)))

    if config.partition and len(sites) >= 2:
        shuffled = list(sites)
        rng.shuffle(shuffled)
        cut = max(1, len(shuffled) // 2)
        groups = (
            tuple(sorted(shuffled[:cut])),
            tuple(sorted(shuffled[cut:])),
        )
        start, end = window(config.partition_s)
        events.append(FaultEvent(start, "partition", groups))
        events.append(FaultEvent(end, "heal_partition"))

    if config.leader_kill:
        at = rng.uniform(lo, hi)
        events.append(FaultEvent(at, "kill_leader"))

    for _ in range(config.control_loss_windows):
        start, end = window(config.window_s)
        events.append(
            FaultEvent(start, "control_loss", ("control",),
                       config.control_loss_probability)
        )
        events.append(FaultEvent(end, "control_loss", ("control",), 0.0))

    if config.gs_crash:
        # Early-ish in the run, so in-flight installs get crashed on
        # and the failover still has time to settle.
        at = rng.uniform(0.2 * config.duration_s, 0.4 * config.duration_s)
        events.append(FaultEvent(at, "gs_crash", ("ctrl.gs",)))

    return Scenario(seed=seed, duration_s=config.duration_s, events=events)
