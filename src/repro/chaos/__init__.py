"""Deterministic fault injection, invariant checking, and soak testing.

The paper's future-work list asks to "evaluate performance and cost
metrics in case of network and compute failures" (Section 7.3); this
package is the test harness for that: seeded fault schedules
(:mod:`repro.chaos.scenario`) played against a full deployment by a
chaos engine (:mod:`repro.chaos.runner`) while system invariants are
probed continuously (:mod:`repro.chaos.invariants`).

Quick start::

    from repro.chaos import SoakConfig, run_soak
    report = run_soak(SoakConfig(seed=7, duration_s=30.0))
    assert report.passed, report.render()

or, from a shell, ``python -m repro chaos --seed 7``.
"""

from repro.chaos.invariants import (
    InvariantChecker,
    LeaseGrant,
    LeaseMonitor,
    Violation,
    bus_delivery,
    capacity_safety,
    lease_safety,
    link_conservation,
    network_quiescence,
    no_orphaned_reservations,
    two_phase_atomicity,
)
from repro.chaos.runner import (
    ChaosEngine,
    Deployment,
    SoakConfig,
    SoakReport,
    build_deployment,
    run_soak,
)
from repro.chaos.scenario import (
    EVENT_KINDS,
    FaultEvent,
    Scenario,
    ScenarioConfig,
    ScenarioError,
    generate_scenario,
    merge_scenarios,
)

__all__ = [
    "EVENT_KINDS",
    "ChaosEngine",
    "Deployment",
    "FaultEvent",
    "InvariantChecker",
    "LeaseGrant",
    "LeaseMonitor",
    "Scenario",
    "ScenarioConfig",
    "ScenarioError",
    "SoakConfig",
    "SoakReport",
    "Violation",
    "build_deployment",
    "bus_delivery",
    "capacity_safety",
    "generate_scenario",
    "lease_safety",
    "link_conservation",
    "merge_scenarios",
    "network_quiescence",
    "no_orphaned_reservations",
    "run_soak",
    "two_phase_atomicity",
]
