"""The chaos soak runner.

Builds a full Switchboard deployment (controller + VNF services + edge
+ proxy bus on one simulated network + a replicated controller store),
installs a seeded chain population, drives a seeded pub/sub workload,
and plays a :class:`repro.chaos.scenario.Scenario` against it while
:class:`repro.chaos.invariants.InvariantChecker` probes continuously.

One integer seed determines everything: the chain workload, the publish
schedule, the fault schedule, and the loss sampling all derive their
RNGs from it, so a failing run reproduces exactly from
``python -m repro chaos --seed N``.

The result is a :class:`SoakReport`: invariant violations (the run
passes only with zero), carried traffic before/after, per-failure
recovery ratios, bus delivery counters, drop reasons, and leader-lease
activity.  ``to_json()`` is deterministic -- it contains only
simulation-derived values, never wall-clock timings (those go to the
metrics registry as ``chaos.recovery_s``).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.bus.bus import GlobalMessageBus, make_bus, proxy_name
from repro.bus.topics import Topic
from repro.chaos.invariants import (
    InvariantChecker,
    LeaseMonitor,
    Violation,
    bus_delivery,
    capacity_safety,
    lease_safety,
    link_conservation,
    network_quiescence,
    no_orphaned_reservations,
    two_phase_atomicity,
)
from repro.chaos.scenario import (
    FaultEvent,
    Scenario,
    ScenarioConfig,
    generate_scenario,
)
from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
)
from repro.controller.failures import (
    FailureReport,
    fail_site,
    restore_site,
)
from repro.controller.protocol import BusDrivenInstaller, InstallationTimeline
from repro.controller.replication import ReplicatedStore
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane
from repro.edge import EdgeController, EdgeInstance
from repro.obs import MetricsRegistry, collect_bus, collect_network
from repro.resilience import (
    FailoverManager,
    ReconciliationSweeper,
    ResilienceConfig,
)
from repro.simnet.events import Simulator
from repro.simnet.network import SimNetwork
from repro.vnf import VnfService


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one soak run.  Everything random derives from ``seed``."""

    seed: int = 1
    duration_s: float = 60.0
    num_chains: int = 8
    chain_demand: float = 3.0
    publish_rate_hz: float = 4.0
    probe_interval_s: float = 1.0
    lease_duration_s: float = 4.0
    lease_renew_s: float = 1.5
    partition: bool = False
    #: Control-plane fault mode: live bus-driven installs run mid-soak
    #: while control links lose messages and the active Global
    #: Switchboard crashes once; the resilience stack (reliable RPC,
    #: deadlines, sweeper, standby failover) must keep every invariant.
    control_faults: bool = False
    control_loss: float = 0.2
    num_live_installs: int = 6
    install_deadline_s: float = 8.0
    scenario: ScenarioConfig | None = None

    def scenario_config(self) -> ScenarioConfig:
        if self.scenario is not None:
            return self.scenario
        if self.control_faults:
            # Focus the schedule on the control plane: loss windows on
            # every cross-site control link plus one mid-run GS crash.
            # The synchronous site-outage reroute path stays off -- it
            # mutates routes underneath in-flight bus-driven installs,
            # which is a different (operator-serialized) regime.
            return ScenarioConfig(
                duration_s=self.duration_s,
                link_flaps=2,
                site_outage=False,
                leader_kill=False,
                partition=self.partition,
                control_loss_windows=2,
                control_loss_probability=self.control_loss,
                gs_crash=True,
            )
        return ScenarioConfig(
            duration_s=self.duration_s, partition=self.partition
        )


#: Sites of the soak deployment ("a" is the hub node, so site-A outages
#: force latency detours, as in the failure-recovery bench).
SITES = ("A", "B", "C", "D")
_NODE_LATENCY = {
    ("a", "b"): 8.0, ("a", "c"): 8.0, ("a", "d"): 8.0,
    ("b", "c"): 16.0, ("b", "d"): 16.0, ("c", "d"): 16.0,
}
#: Leader candidates for the controller lease (primary + standby).
CANDIDATES = ("gs-primary", "gs-standby")


@dataclass
class Deployment:
    """Everything the engine and the probes need a handle on."""

    sim: Simulator
    net: SimNetwork
    bus: GlobalMessageBus
    gs: GlobalSwitchboard
    store: ReplicatedStore
    monitor: LeaseMonitor
    registry: MetricsRegistry
    sites: tuple[str, ...] = SITES
    #: Populated in control-fault mode only.
    installer: BusDrivenInstaller | None = None
    failover: FailoverManager | None = None
    sweeper: ReconciliationSweeper | None = None
    live_timelines: list[InstallationTimeline] = field(default_factory=list)


def build_deployment(config: SoakConfig) -> Deployment:
    """One seeded Switchboard deployment with an installed chain
    population (the workload side of the soak)."""
    sim = Simulator()
    registry = MetricsRegistry.for_simulator(sim)
    net = SimNetwork(sim, metrics=registry)
    net.set_fault_rng(random.Random(f"loss-{config.seed}"))
    bus = make_bus(
        list(SITES),
        wan_delay_s=0.020,
        uplink_bps=50e6,
        uplink_buffer_bytes=128_000,
        network=net,
        metrics=registry,
    )

    # Capacity: every VNF at every site, sized so three surviving sites
    # can carry the whole population (a single-site outage is fully
    # recoverable; concurrent link faults may still degrade).
    total_load = config.num_chains * 2.5 * config.chain_demand
    per_site = total_load * 1.6 / (len(SITES) - 1)
    capacity = {site: per_site for site in SITES}
    vnfs = [VNF("fw", 1.0, dict(capacity)), VNF("nat", 1.0, dict(capacity))]
    model = NetworkModel(
        ["a", "b", "c", "d"],
        dict(_NODE_LATENCY),
        [CloudSite(s, s.lower(), 10 * per_site) for s in SITES],
        vnfs,
    )
    dp = DataPlane(random.Random(0), metrics=registry)
    gs = GlobalSwitchboard(model, dp, metrics=registry)
    for site in SITES:
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    for vnf in vnfs:
        gs.register_vnf_service(
            VnfService(vnf.name, vnf.load_per_unit, dict(vnf.site_capacity))
        )
    edge = EdgeController("vpn")
    for site in SITES:
        edge.register_instance(EdgeInstance(f"edge.{site}", site, dp))
        edge.register_attachment(f"att-{site}", site)
    gs.register_edge_service(edge)

    rng = random.Random(f"workload-{config.seed}")
    for i in range(config.num_chains):
        ingress, egress = rng.sample(list(SITES), 2)
        chain_vnfs = ["fw"] if rng.random() < 0.5 else ["fw", "nat"]
        gs.create_chain(
            ChainSpecification(
                f"chain{i}", "vpn", f"att-{ingress}", f"att-{egress}",
                chain_vnfs,
                forward_demand=config.chain_demand,
                reverse_demand=config.chain_demand * 0.25,
                dst_prefixes=[f"20.0.{i}.0/24"],
            )
        )

    store = ReplicatedStore([f"ctl.{s}" for s in SITES])
    deployment = Deployment(
        sim, net, bus, gs, store, LeaseMonitor(store), registry
    )
    if config.control_faults:
        deployment.installer = BusDrivenInstaller(
            gs,
            bus,
            gs_site="A",
            edge_controller_site="A",
            vnf_controller_sites={"fw": "B", "nat": "C"},
            metrics=registry,
            resilience=ResilienceConfig(
                install_deadline_s=config.install_deadline_s,
                seed=config.seed,
            ),
            store=store,
        )
    return deployment


class ChaosEngine:
    """Maps :class:`FaultEvent`\\ s onto the deployment's fault
    primitives and recovery entry points, and runs the leader-lease
    loop."""

    def __init__(self, deployment: Deployment, config: SoakConfig):
        self.d = deployment
        self.config = config
        self.applied: list[tuple[float, str]] = []
        self.reports: list[FailureReport] = []
        #: site -> (site capacity, per-VNF capacity) stashed at failure.
        self._site_stash: dict[str, tuple[float, dict[str, float]]] = {}
        self._site_reports: dict[str, FailureReport] = {}
        self.dead_candidates: set[str] = set()
        self.leader_transitions = 0
        self.leaders_killed = 0
        self.gs_crashes = 0
        self._last_leader: str | None = None
        self._recovery_hist = deployment.registry.histogram(
            "chaos.recovery_s"
        )

    # -- scheduling -----------------------------------------------------

    def schedule(self, scenario: Scenario) -> None:
        for event in scenario.events:
            self.d.sim.schedule_at(event.at, self._apply, event)

    def start_lease_loop(self) -> None:
        def tick() -> None:
            now = self.d.sim.now
            for candidate in CANDIDATES:
                if candidate not in self.dead_candidates:
                    self.d.monitor.acquire(
                        candidate, now, self.config.lease_duration_s
                    )
            leader = self.d.monitor.leader(now)
            if leader is not None and leader != self._last_leader:
                if self._last_leader is not None:
                    self.leader_transitions += 1
                self._last_leader = leader
            if now + self.config.lease_renew_s <= self.config.duration_s:
                self.d.sim.schedule(self.config.lease_renew_s, tick)

        self.d.sim.schedule(0.0, tick)

    # -- event application ----------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_on_{event.kind}")
        started = time.perf_counter()
        handler(event)
        if event.kind in ("fail_site", "restore_site", "kill_leader"):
            # Recovery work runs synchronously inside the event; its
            # wall-clock cost is the honest "recovery latency" here.
            self._recovery_hist.observe(time.perf_counter() - started)
        self.applied.append((round(self.d.sim.now, 9), event.kind))

    def _on_link_down(self, event: FaultEvent) -> None:
        self.d.net.fail_link(*event.target)

    def _on_link_up(self, event: FaultEvent) -> None:
        self.d.net.restore_link(*event.target)

    def _on_link_loss(self, event: FaultEvent) -> None:
        self.d.net.set_link_loss(*event.target, event.value)

    def _on_link_degrade(self, event: FaultEvent) -> None:
        self.d.net.set_link_degradation(*event.target, event.value)

    def _on_partition(self, event: FaultEvent) -> None:
        groups = []
        for site_group in event.target:
            members = set(site_group)
            groups.append(
                [h.name for h in self.d.net.hosts if h.site in members]
            )
        self.d.net.partition(groups)

    def _on_heal_partition(self, event: FaultEvent) -> None:
        self.d.net.heal_partition()

    def _on_crash_host(self, event: FaultEvent) -> None:
        self.d.net.crash_host(event.target[0])

    def _on_restart_host(self, event: FaultEvent) -> None:
        self.d.net.restart_host(event.target[0])

    def _on_fail_site(self, event: FaultEvent) -> None:
        site = event.target[0]
        gs = self.d.gs
        if site not in self._site_stash:
            self._site_stash[site] = (
                gs.model.sites[site].capacity,
                {
                    name: vnf.site_capacity[site]
                    for name, vnf in gs.model.vnfs.items()
                    if site in vnf.site_capacity
                },
            )
        report = fail_site(gs, site)
        self.reports.append(report)
        self._site_reports[site] = report

    def _on_restore_site(self, event: FaultEvent) -> None:
        site = event.target[0]
        stash = self._site_stash.pop(site, None)
        if stash is None:
            return  # restore without a preceding failure: nothing to do
        restore_site(self.d.gs, site, stash[0], stash[1])
        # Re-extend the chains the outage degraded onto the restored
        # capacity (the operator action restore_site documents).
        report = self._site_reports.pop(site, None)
        if report is not None:
            for name in report.affected_chains:
                if name in self.d.gs.installations:
                    try:
                        self.d.gs.extend_chain(name)
                    except Exception:
                        pass

    def _on_control_loss(self, event: FaultEvent) -> None:
        """Probabilistic loss on every cross-site control link at once
        (value 0.0 heals).  The data-plane WAN is untouched: this is a
        control-plane-only degradation."""
        installer = self.d.installer
        if installer is None:
            return
        for a, b in installer.control_pairs:
            self.d.net.set_link_loss(a, b, event.value)

    def _on_gs_crash(self, event: FaultEvent) -> None:
        """Crash the active Global Switchboard process mid-run: its host
        goes down (no scheduled restart -- only a standby takeover via
        the failover manager brings the role back) and its candidate
        stops renewing the lease."""
        installer = self.d.installer
        if installer is None:
            return
        self.gs_crashes += 1
        self.d.net.crash_host(installer.gs_host)
        failover = self.d.failover
        if failover is not None:
            failover.mark_dead(failover.active)

    def _on_kill_leader(self, event: FaultEvent) -> None:
        leader = self.d.monitor.leader(self.d.sim.now)
        if leader is None:
            return
        self.dead_candidates.add(leader)
        self.leaders_killed += 1
        # The killed process comes back (as a standby) well after its
        # old lease expired and the survivor took over.
        self.d.sim.schedule(
            3 * self.config.lease_duration_s,
            self.dead_candidates.discard, leader,
        )


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


def _start_workload(d: Deployment, config: SoakConfig) -> None:
    """Seeded pub/sub load: one publisher per site, one monitor client
    per site subscribed to every other site's topic."""
    topics = {
        site: Topic("soak", "all", "wl", site, "instances")
        for site in d.sites
    }
    for site in d.sites:
        d.bus.attach(f"app.{site}", site)
        d.bus.attach(f"mon.{site}", site)
    for site in d.sites:
        for other in d.sites:
            if other != site:
                d.bus.subscribe(f"mon.{site}", topics[other])

    rng = random.Random(f"publish-{config.seed}")
    count = int(config.duration_s * config.publish_rate_hz)
    for site in d.sites:
        for k in range(count):
            at = (k + rng.random()) / config.publish_rate_hz
            if at < config.duration_s:
                d.sim.schedule_at(
                    at, d.bus.publish, f"app.{site}", topics[site],
                    {"seq": k},
                )


def _start_install_workload(d: Deployment, config: SoakConfig) -> None:
    """Seeded bus-driven installs submitted mid-soak, so control faults
    (loss windows, the GS crash) land on live 2PC rounds.  Start times
    sit in [0.15, 0.5] x duration: after the run warms up, early enough
    that every deadline resolves before the horizon."""
    installer = d.installer
    assert installer is not None
    rng = random.Random(f"installs-{config.seed}")
    lo, hi = 0.15 * config.duration_s, 0.5 * config.duration_s
    for i in range(config.num_live_installs):
        ingress, egress = rng.sample(list(d.sites), 2)
        chain_vnfs = ["fw"] if rng.random() < 0.5 else ["fw", "nat"]
        spec = ChainSpecification(
            f"live{i}", "vpn", f"att-{ingress}", f"att-{egress}",
            chain_vnfs,
            forward_demand=config.chain_demand * 0.5,
            reverse_demand=config.chain_demand * 0.125,
            dst_prefixes=[f"21.0.{i}.0/24"],
        )
        d.sim.schedule_at(
            rng.uniform(lo, hi),
            installer.install, spec, d.live_timelines.append,
        )


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


@dataclass
class SoakReport:
    """Outcome of one soak; ``passed`` iff no invariant was violated."""

    seed: int
    duration_s: float
    scenario_digest: str
    chains: int
    event_counts: dict[str, int]
    events_applied: list[tuple[float, str]]
    violations: list[Violation]
    carried_before: float
    carried_after: float
    recovery: list[dict] = field(default_factory=list)
    bus_published: int = 0
    bus_delivered: int = 0
    bus_wan_drops: int = 0
    drop_reasons: dict[str, int] = field(default_factory=dict)
    lease_grants: int = 0
    leader_transitions: int = 0
    leaders_killed: int = 0
    probes_run: int = 0
    # Control-fault mode (zero/absent activity otherwise).
    installs_submitted: int = 0
    installs_completed: int = 0
    installs_failed: int = 0
    deadline_aborts: int = 0
    rpc_sent: int = 0
    rpc_retries: int = 0
    rpc_timeouts: int = 0
    rpc_duplicates: int = 0
    gs_crashes: int = 0
    failover_takeovers: int = 0
    stale_reservations_swept: int = 0
    # Workload-schedule mode (empty/absent activity otherwise).
    workload_digest: str = ""
    workload_counts: dict[str, int] = field(default_factory=dict)
    workload_ops_applied: int = 0

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_doc(self) -> dict:
        """Deterministic document: simulation-derived values only."""
        return {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "scenario_digest": self.scenario_digest,
            "chains": self.chains,
            "event_counts": self.event_counts,
            "events_applied": [
                {"at": at, "kind": kind} for at, kind in self.events_applied
            ],
            "violations": [
                {"at": round(v.at, 9), "invariant": v.invariant,
                 "detail": v.detail}
                for v in self.violations
            ],
            "carried_before": round(self.carried_before, 6),
            "carried_after": round(self.carried_after, 6),
            "recovery": self.recovery,
            "bus": {
                "published": self.bus_published,
                "delivered": self.bus_delivered,
                "wan_drops": self.bus_wan_drops,
            },
            "drop_reasons": self.drop_reasons,
            "lease": {
                "grants": self.lease_grants,
                "transitions": self.leader_transitions,
                "killed": self.leaders_killed,
            },
            "probes_run": self.probes_run,
            "control": {
                "installs_submitted": self.installs_submitted,
                "installs_completed": self.installs_completed,
                "installs_failed": self.installs_failed,
                "deadline_aborts": self.deadline_aborts,
                "rpc_sent": self.rpc_sent,
                "rpc_retries": self.rpc_retries,
                "rpc_timeouts": self.rpc_timeouts,
                "rpc_duplicates": self.rpc_duplicates,
                "gs_crashes": self.gs_crashes,
                "failover_takeovers": self.failover_takeovers,
                "stale_reservations_swept": self.stale_reservations_swept,
            },
            "workload": {
                "digest": self.workload_digest,
                "counts": self.workload_counts,
                "ops_applied": self.workload_ops_applied,
            },
            "passed": self.passed,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), separators=(",", ":"),
                          sort_keys=True)

    def render(self) -> str:
        lines = [
            f"chaos soak: seed={self.seed} duration={self.duration_s:g}s "
            f"chains={self.chains}",
            f"schedule digest: {self.scenario_digest[:16]}... "
            f"({sum(self.event_counts.values())} events)",
            "events: " + ", ".join(
                f"{kind}={n}" for kind, n in sorted(self.event_counts.items())
            ),
            f"carried fraction: {self.carried_before:.3f} before -> "
            f"{self.carried_after:.3f} after",
        ]
        for entry in self.recovery:
            lines.append(
                f"  {entry['kind']} {entry['target']}: "
                f"{entry['affected']} chain(s) affected, "
                f"{entry['ratio']:.0%} of affected traffic restored"
            )
        lines.append(
            f"bus: {self.bus_published} published, "
            f"{self.bus_delivered} delivered, "
            f"{self.bus_wan_drops} WAN drops"
        )
        if self.drop_reasons:
            lines.append(
                "drops by reason: " + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.drop_reasons.items())
                )
            )
        lines.append(
            f"leases: {self.lease_grants} grant(s), "
            f"{self.leader_transitions} leader transition(s), "
            f"{self.leaders_killed} kill(s)"
        )
        if self.installs_submitted:
            lines.append(
                f"control plane: {self.installs_submitted} live "
                f"install(s) -> {self.installs_completed} completed, "
                f"{self.installs_failed} aborted "
                f"({self.deadline_aborts} by deadline); "
                f"rpc {self.rpc_sent} sent / {self.rpc_retries} retries / "
                f"{self.rpc_timeouts} timeouts / "
                f"{self.rpc_duplicates} dups suppressed; "
                f"{self.gs_crashes} GS crash(es), "
                f"{self.failover_takeovers} takeover(s), "
                f"{self.stale_reservations_swept} stale reservation(s) swept"
            )
        if self.workload_digest:
            lines.append(
                f"workload: digest {self.workload_digest[:16]}..., "
                f"{self.workload_ops_applied} op(s) applied, " + ", ".join(
                    f"{k}={v}" for k, v in sorted(
                        self.workload_counts.items()
                    ) if v
                )
            )
        lines.append(f"invariant probes run: {self.probes_run}")
        if self.passed:
            lines.append("PASS: zero invariant violations")
        else:
            lines.append(f"FAIL: {len(self.violations)} violation(s)")
            for violation in self.violations[:20]:
                lines.append(f"  {violation}")
        return "\n".join(lines)


def _mean_carried(gs: GlobalSwitchboard) -> float:
    fractions = [
        inst.routed_fraction for inst in gs.installations.values()
    ]
    return sum(fractions) / len(fractions) if fractions else 0.0


def run_soak(
    config: SoakConfig | None = None,
    scenario: Scenario | None = None,
    extra_probes: "dict[str, Callable[[], Iterable[str]]] | None" = None,
    workload=None,
    workload_probes=None,
) -> SoakReport:
    """Run one seeded chaos soak end to end.

    Passing an explicit ``scenario`` replays that exact schedule (e.g.
    one parsed from a previously saved report); otherwise the schedule
    is generated from ``config.seed``.

    ``extra_probes`` registers additional invariant probes (name ->
    zero-argument callable returning problem strings) on the same
    checker cadence -- e.g. the
    :func:`repro.federation.invariants.federation_probes` registry when
    a federated coordinator is deployed alongside, so subsystem soaks
    do not grow private probe loops.

    ``workload`` plays a :class:`repro.scenarios.WorkloadSchedule` of
    chain creates/removes/demand changes against the deployment on the
    same simulated clock, composing with the fault schedule -- this is
    the scenario-fuzzer entry point.  ``workload_probes`` (a callable
    taking the live :class:`repro.scenarios.apply.WorkloadEngine` and
    returning a probe dict) registers workload-aware invariants; the
    fuzz self-tests use it to plant a provably-detectable violation.
    """
    config = config or SoakConfig()
    d = build_deployment(config)
    carried_before = _mean_carried(d.gs)

    workload_engine = None
    if workload is not None:
        # Local import: repro.scenarios builds on repro.chaos, so the
        # runner may only reach back at call time.
        from repro.scenarios.apply import WorkloadEngine

        workload_engine = WorkloadEngine(d)
        workload_engine.schedule(workload)

    if scenario is None:
        wan_pairs = []
        for a in d.sites:
            for b in d.sites:
                if a != b:
                    wan_pairs.append((f"wan.{a}", proxy_name(b)))
        scenario = generate_scenario(
            config.seed, d.sites, wan_pairs, config.scenario_config()
        )

    engine = ChaosEngine(d, config)
    engine.schedule(scenario)
    if config.control_faults and d.installer is not None:
        # The failover manager owns the lease in control-fault mode
        # (renewal while the active GS lives, takeover when it dies).
        d.failover = FailoverManager(
            d.installer,
            d.store,
            monitor=d.monitor,
            candidates=CANDIDATES,
            lease_duration_s=config.lease_duration_s,
            check_interval_s=config.lease_renew_s,
            metrics=d.registry,
        )
        d.failover.start(config.duration_s)
        d.sweeper = ReconciliationSweeper(d.installer, metrics=d.registry)
        d.sweeper.start(config.duration_s)
        _start_install_workload(d, config)
    else:
        engine.start_lease_loop()
    _start_workload(d, config)

    checker = InvariantChecker(d.sim, interval_s=config.probe_interval_s)
    checker.add("link_conservation", link_conservation(d.net))
    checker.add("two_phase_atomicity", two_phase_atomicity(d.gs, d.installer))
    checker.add("capacity_safety", capacity_safety(d.gs, d.installer))
    checker.add(
        "no_orphaned_reservations",
        no_orphaned_reservations(d.gs, d.installer),
    )
    checker.add("bus_delivery", bus_delivery(d.bus))
    checker.add("lease_safety", lease_safety(d.monitor))
    if extra_probes:
        for name, probe in extra_probes.items():
            checker.add(name, probe)
    if workload_probes is not None and workload_engine is not None:
        for name, probe in workload_probes(workload_engine).items():
            checker.add(name, probe)
    checker.start(config.duration_s)

    d.net.run(until=config.duration_s)
    d.net.run()  # drain in-flight deliveries and late heal events
    checker.check_now()
    # With the queue drained, nothing may remain in flight.
    quiescence = network_quiescence(d.net)
    for detail in quiescence():
        checker.violations.append(
            Violation(d.sim.now, "network_quiescence", detail)
        )

    collect_network(d.registry, d.net)
    collect_bus(d.registry, d.bus)
    if d.installer is not None:
        from repro.obs import collect_resilience

        collect_resilience(
            d.registry, d.installer, failover=d.failover, sweeper=d.sweeper
        )

    leader_transitions = engine.leader_transitions
    if config.control_faults:
        # The failover manager drove the lease; count owner changes
        # across the recorded grants.
        owners = [g.owner for g in d.monitor.grants]
        leader_transitions = sum(
            1 for i in range(1, len(owners)) if owners[i] != owners[i - 1]
        )

    installer = d.installer
    completed = sum(
        1 for t in d.live_timelines if t.completed_at is not None
    )
    return SoakReport(
        seed=config.seed,
        duration_s=config.duration_s,
        scenario_digest=scenario.digest(),
        chains=config.num_chains,
        event_counts=scenario.counts(),
        events_applied=engine.applied,
        violations=list(checker.violations),
        carried_before=carried_before,
        carried_after=_mean_carried(d.gs),
        recovery=[
            {
                "kind": report.kind,
                "target": report.site,
                "affected": len(report.affected_chains),
                "ratio": round(report.recovery_ratio(), 6),
            }
            for report in engine.reports
        ],
        bus_published=d.bus.stats.published,
        bus_delivered=d.bus.stats.delivered,
        bus_wan_drops=d.bus.stats.wan_drops,
        drop_reasons=dict(sorted(d.net.drop_reasons.items())),
        lease_grants=len(d.monitor.grants),
        leader_transitions=leader_transitions,
        leaders_killed=engine.leaders_killed,
        probes_run=checker.probes_run,
        installs_submitted=len(d.live_timelines),
        installs_completed=completed,
        installs_failed=len(d.live_timelines) - completed,
        deadline_aborts=installer.deadline_aborts if installer else 0,
        rpc_sent=installer.rpc.sent if installer else 0,
        rpc_retries=installer.rpc.retries if installer else 0,
        rpc_timeouts=installer.rpc.timeouts if installer else 0,
        rpc_duplicates=(
            installer.rpc.duplicates_suppressed if installer else 0
        ),
        gs_crashes=engine.gs_crashes,
        failover_takeovers=d.failover.takeovers if d.failover else 0,
        stale_reservations_swept=(
            d.sweeper.stale_reservations_released if d.sweeper else 0
        ),
        workload_digest=workload.digest() if workload is not None else "",
        workload_counts=(
            dict(workload_engine.counts) if workload_engine else {}
        ),
        workload_ops_applied=(
            len(workload_engine.applied) if workload_engine else 0
        ),
    )
