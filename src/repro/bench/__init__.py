"""``repro.bench`` -- machine-readable benchmark harness.

The measurement substrate for the repo's performance story: a
programmatic runner over the ``benchmarks/bench_*.py`` suites (the same
functions pytest-benchmark times -- no pytest subprocess), canonical
``BENCH_<suite>.json`` result documents, a committed baseline store,
and a noise-aware comparator that turns "the solver farm got slower"
into a failing CI job instead of a silent drift.

Entry point: ``python -m repro bench`` (see ``repro.cli``).

Layout::

    discovery   import bench modules, read the suite registry
    runner      warmup/repeat execution, perf_counter sampling
    stats       min/median/mean/stddev/IQR, pooled stddev
    report      canonical JSON documents, atomic writes
    baselines   benchmarks/baselines/*.json store
    compare     noise-aware regression verdicts, CI widening
"""

from repro.bench.baselines import (
    baseline_path,
    default_baseline_dir,
    list_baselines,
    load_baseline,
    save_baseline,
)
from repro.bench.compare import (
    MIN_ABS_SLACK_S,
    Comparison,
    Tolerance,
    ci_mode_enabled,
    compare_documents,
    compare_stats,
)
from repro.bench.discovery import available_suites, default_bench_dir, discover
from repro.bench.env import environment_fingerprint, git_sha
from repro.bench.errors import BenchError, BenchUsageError
from repro.bench.report import (
    SCHEMA,
    build_document,
    canonical_json,
    document_path,
    document_stats,
    load_document,
    write_document,
)
from repro.bench.runner import SuiteRun, run_suite
from repro.bench.stats import SampleStats, StatsError, pooled_stddev

__all__ = [
    "MIN_ABS_SLACK_S",
    "SCHEMA",
    "BenchError",
    "BenchUsageError",
    "Comparison",
    "SampleStats",
    "StatsError",
    "SuiteRun",
    "Tolerance",
    "available_suites",
    "baseline_path",
    "build_document",
    "canonical_json",
    "ci_mode_enabled",
    "compare_documents",
    "compare_stats",
    "default_baseline_dir",
    "default_bench_dir",
    "discover",
    "document_path",
    "document_stats",
    "environment_fingerprint",
    "git_sha",
    "list_baselines",
    "load_baseline",
    "load_document",
    "pooled_stddev",
    "run_suite",
    "save_baseline",
    "write_document",
]
