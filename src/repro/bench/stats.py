"""Sample statistics for benchmark timings.

Pure-python (no numpy dependency in the hot path of the harness) and
deterministic: the same samples always produce the same stats, and the
stats serialize to JSON with Python's exact ``repr`` float round-trip,
which is what lets baseline documents round-trip byte-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence


class StatsError(ValueError):
    """Raised on empty or malformed sample sets."""


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted sequence."""
    if not ordered:
        raise StatsError("percentile of an empty sample set")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class SampleStats:
    """Summary of one suite's timing samples (seconds)."""

    n: int
    min: float
    max: float
    mean: float
    median: float
    stddev: float
    iqr: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "SampleStats":
        if not samples:
            raise StatsError("no samples")
        if any(s < 0 or not math.isfinite(s) for s in samples):
            raise StatsError(f"invalid samples: {samples!r}")
        ordered = sorted(samples)
        n = len(ordered)
        mean = math.fsum(ordered) / n
        if n >= 2:
            variance = math.fsum((s - mean) ** 2 for s in ordered) / (n - 1)
            stddev = math.sqrt(variance)
        else:
            stddev = 0.0
        return cls(
            n=n,
            min=ordered[0],
            max=ordered[-1],
            mean=mean,
            median=_percentile(ordered, 0.5),
            stddev=stddev,
            iqr=_percentile(ordered, 0.75) - _percentile(ordered, 0.25),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "min_s": self.min,
            "max_s": self.max,
            "mean_s": self.mean,
            "median_s": self.median,
            "stddev_s": self.stddev,
            "iqr_s": self.iqr,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SampleStats":
        try:
            return cls(
                n=int(data["n"]),
                min=float(data["min_s"]),
                max=float(data["max_s"]),
                mean=float(data["mean_s"]),
                median=float(data["median_s"]),
                stddev=float(data["stddev_s"]),
                iqr=float(data["iqr_s"]),
            )
        except KeyError as exc:
            raise StatsError(f"stats document missing field {exc}") from exc


def pooled_stddev(a: SampleStats, b: SampleStats) -> float:
    """Pooled standard deviation of two sample sets.

    Weights each stddev by its degrees of freedom; single-sample sets
    contribute nothing (their stddev is undefined, recorded as 0), so a
    pair of 1-sample runs pools to 0 and the comparator falls back to
    its relative tolerance alone.
    """
    dof = (a.n - 1) + (b.n - 1)
    if dof <= 0:
        return 0.0
    pooled_var = ((a.n - 1) * a.stddev**2 + (b.n - 1) * b.stddev**2) / dof
    return math.sqrt(pooled_var)
