"""Exception taxonomy for the benchmark harness.

The CLI maps these onto its exit-code contract: usage problems
(unknown suite, missing baseline, bad flags) exit 2, regressions exit 1,
everything green exits 0.
"""

from __future__ import annotations


class BenchError(Exception):
    """Base class for benchmark-harness failures."""


class BenchUsageError(BenchError):
    """The invocation itself is wrong (exit code 2 territory)."""
