"""Noise-aware baseline comparison.

A suite *regresses* when its current median is slower than the baseline
median by more than the allowed slack::

    slack = max(rel_tol * baseline_median,
                k * pooled_stddev(current, baseline),
                MIN_ABS_SLACK_S)

``rel_tol`` and ``k`` are per-suite (registered with the suite, stored
in its documents); the stddev term lets genuinely noisy suites breathe
without loosening the bound on quiet ones, and the absolute floor keeps
microsecond-scale suites from flapping on scheduler jitter.

``REPRO_BENCH_CI=1`` widens both knobs (shared CI runners see noisy
neighbours, frequency scaling, and cold caches); the committed
baselines can therefore be produced on any reasonable machine and still
gate only real, large regressions in CI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Mapping

from repro.bench.report import document_stats
from repro.bench.stats import SampleStats, pooled_stddev

#: Absolute slack floor: differences below this are scheduler noise.
MIN_ABS_SLACK_S = 1e-4

#: ``REPRO_BENCH_CI=1`` multiplies the tolerances by these factors.
CI_REL_TOL_FACTOR = 4.0
CI_K_FACTOR = 2.0


def ci_mode_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_CI", "0") not in ("", "0")


@dataclass(frozen=True)
class Tolerance:
    """Per-suite comparison knobs (see module docstring)."""

    rel_tol: float = 0.25
    k: float = 3.0

    def widened_for_ci(self) -> "Tolerance":
        return Tolerance(
            rel_tol=self.rel_tol * CI_REL_TOL_FACTOR,
            k=self.k * CI_K_FACTOR,
        )


@dataclass(frozen=True)
class Comparison:
    """Verdict of one suite against its baseline."""

    suite: str
    baseline_median_s: float
    current_median_s: float
    slack_s: float
    regressed: bool
    improved: bool
    digest_changed: bool

    @property
    def ratio(self) -> float:
        if self.baseline_median_s == 0.0:
            return float("inf") if self.current_median_s > 0 else 1.0
        return self.current_median_s / self.baseline_median_s

    def render(self) -> str:
        verdict = (
            "REGRESSION" if self.regressed
            else "improved" if self.improved
            else "ok"
        )
        line = (
            f"{self.suite:<28} {verdict:<10} "
            f"median {self.current_median_s:.4f}s "
            f"vs baseline {self.baseline_median_s:.4f}s "
            f"({self.ratio:.2f}x, slack {self.slack_s:.4f}s)"
        )
        if self.digest_changed:
            line += "  [scenario digest changed: timings not comparable]"
        return line


def compare_stats(
    suite_name: str,
    current: SampleStats,
    baseline: SampleStats,
    tolerance: Tolerance,
    *,
    digest_changed: bool = False,
) -> Comparison:
    if ci_mode_enabled():
        tolerance = tolerance.widened_for_ci()
    slack = max(
        tolerance.rel_tol * baseline.median,
        tolerance.k * pooled_stddev(current, baseline),
        MIN_ABS_SLACK_S,
    )
    delta = current.median - baseline.median
    return Comparison(
        suite=suite_name,
        baseline_median_s=baseline.median,
        current_median_s=current.median,
        slack_s=slack,
        # A changed scenario digest means the workload itself changed;
        # flagging that as a perf regression would be a false positive.
        regressed=delta > slack and not digest_changed,
        improved=delta < -slack,
        digest_changed=digest_changed,
    )


def compare_documents(
    current: Mapping[str, Any], baseline: Mapping[str, Any]
) -> Comparison:
    """Compare two result documents (current run vs stored baseline).

    The tolerance comes from the *current* document -- the suite's live
    registration wins over whatever was in force when the baseline was
    blessed.
    """
    tol_doc = current.get("tolerance") or {}
    tolerance = Tolerance(
        rel_tol=float(tol_doc.get("rel_tol", Tolerance.rel_tol)),
        k=float(tol_doc.get("k", Tolerance.k)),
    )
    digest_changed = (
        current.get("model_digest") is not None
        and baseline.get("model_digest") is not None
        and current["model_digest"] != baseline["model_digest"]
    )
    return compare_stats(
        str(current.get("suite", "?")),
        document_stats(current),
        document_stats(baseline),
        tolerance,
        digest_changed=digest_changed,
    )
