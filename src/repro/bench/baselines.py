"""The committed baseline store (``benchmarks/baselines/*.json``).

A baseline is simply a previously blessed result document; the
comparator reads its ``stats`` section.  ``--update-baselines``
regenerates them; the ``refresh-baselines`` CI job does the same on a
runner and uploads the directory for manual commit, so baseline churn
always goes through review.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from repro.bench.discovery import default_bench_dir
from repro.bench.report import load_document, write_document


def default_baseline_dir() -> Path:
    return default_bench_dir() / "baselines"


def baseline_path(baseline_dir: Path, suite_name: str) -> Path:
    return Path(baseline_dir) / f"{suite_name}.json"


def load_baseline(
    baseline_dir: Path, suite_name: str
) -> dict[str, Any] | None:
    """The stored baseline document, or ``None`` when not committed."""
    path = baseline_path(baseline_dir, suite_name)
    if not path.is_file():
        return None
    return load_document(path)


def save_baseline(
    baseline_dir: Path, document: Mapping[str, Any]
) -> Path:
    return write_document(
        baseline_path(baseline_dir, document["suite"]), document
    )


def list_baselines(baseline_dir: Path) -> list[str]:
    directory = Path(baseline_dir)
    if not directory.is_dir():
        return []
    return sorted(p.stem for p in directory.glob("*.json"))
