"""Suite discovery: import ``benchmarks/bench_*.py`` and read the registry.

The benchmark modules double as pytest files and as plain modules; each
one registers its measured function in ``_common.REGISTRY`` at import
time via the ``register_bench`` decorator.  Discovery adds the
benchmarks directory to ``sys.path`` (so the modules' own
``from _common import ...`` lines resolve) and imports only the modules
whose suites were requested -- suite names equal the module filename
minus its ``bench_`` prefix, so a targeted ``--suites`` run never pays
the import cost of unrelated suites.

Suites registered directly into ``_common.REGISTRY`` (tests do this to
inject synthetic workloads) are honoured without a module import.
"""

from __future__ import annotations

import importlib
import os
import sys
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.bench.errors import BenchUsageError

#: Environment override for the benchmarks directory.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def default_bench_dir() -> Path:
    """The repo's ``benchmarks/`` directory.

    Resolution order: ``$REPRO_BENCH_DIR``, the checkout layout relative
    to this file (``src/repro/bench`` -> repo root), then
    ``./benchmarks`` under the current working directory.
    """
    override = os.environ.get(BENCH_DIR_ENV)
    if override:
        return Path(override)
    checkout = Path(__file__).resolve().parents[3] / "benchmarks"
    if checkout.is_dir():
        return checkout
    return Path.cwd() / "benchmarks"


def available_suites(bench_dir: Path | None = None) -> list[str]:
    """Suite names present on disk (no imports)."""
    directory = bench_dir or default_bench_dir()
    if not directory.is_dir():
        raise BenchUsageError(f"benchmarks directory not found: {directory}")
    return sorted(
        p.stem[len("bench_"):]
        for p in directory.glob("bench_*.py")
    )


def _registry() -> Mapping[str, Any]:
    import _common  # deferred: needs the benchmarks dir on sys.path

    return _common.REGISTRY


def discover(
    suites: Iterable[str] | None = None,
    bench_dir: Path | None = None,
) -> dict[str, Any]:
    """Import the requested suites and return their registry entries.

    ``suites=None`` discovers everything on disk.  Unknown names raise
    :class:`BenchUsageError` listing what is available.
    """
    directory = (bench_dir or default_bench_dir()).resolve()
    if not directory.is_dir():
        raise BenchUsageError(f"benchmarks directory not found: {directory}")
    path_entry = str(directory)
    if path_entry not in sys.path:
        sys.path.insert(0, path_entry)

    on_disk = set(available_suites(directory))
    registry = _registry()
    if suites is None:
        wanted = sorted(on_disk | set(registry))
    else:
        wanted = list(dict.fromkeys(suites))  # de-dup, keep order
        unknown = [
            name for name in wanted
            if name not in on_disk and name not in registry
        ]
        if unknown:
            raise BenchUsageError(
                f"unknown suite(s): {', '.join(unknown)}; "
                f"available: {', '.join(sorted(on_disk | set(registry)))}"
            )

    selected: dict[str, Any] = {}
    for name in wanted:
        if name not in registry:
            importlib.import_module(f"bench_{name}")
            registry = _registry()
        if name not in registry:
            raise BenchUsageError(
                f"module bench_{name}.py did not register suite {name!r}"
            )
        selected[name] = registry[name]
    return selected
