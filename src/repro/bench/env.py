"""Environment fingerprint and git identity for result documents.

Benchmark numbers are only comparable within an environment; the
fingerprint lets the comparator (and a human reading a ``BENCH_*.json``
artifact) see at a glance whether two documents came from the same kind
of machine.  The fingerprint is informational -- comparisons never fail
on a mismatch, they just record it.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any


def environment_fingerprint() -> dict[str, Any]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "ci": bool(os.environ.get("CI")),
    }


def git_sha(cwd: str | None = None) -> str:
    """Current commit SHA: ``GITHUB_SHA`` in CI, ``git rev-parse`` locally.

    Returns ``"unknown"`` outside a git checkout -- the document stays
    writable from an exported tarball.
    """
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def interpreter_summary() -> str:
    """One-line interpreter id used in log lines, not in documents."""
    return f"{platform.python_implementation()} {sys.version.split()[0]}"
