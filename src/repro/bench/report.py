"""Canonical machine-readable result documents (``BENCH_<suite>.json``).

One document per suite, written atomically, serialized canonically
(sorted keys, two-space indent, trailing newline, repr-exact floats).
Canonical form is what makes baselines diff-friendly in git and lets a
load/save round trip reproduce the file byte-for-byte.

Deliberately no timestamps: a baseline regenerated from identical
samples must be byte-identical, and committed baselines should not churn
on re-runs that change nothing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.bench.env import environment_fingerprint, git_sha
from repro.bench.errors import BenchError
from repro.bench.runner import SuiteRun
from repro.bench.stats import SampleStats

#: Document schema identifier; bump on incompatible shape changes.
SCHEMA = "repro.bench/v1"


def build_document(
    run: SuiteRun,
    suite: Any,
    *,
    environment: Mapping[str, Any] | None = None,
    sha: str | None = None,
) -> dict[str, Any]:
    """Assemble the canonical result document for one suite run."""
    return {
        "schema": SCHEMA,
        "suite": run.suite,
        "warmup": run.warmup,
        "samples_s": list(run.samples),
        "stats": run.stats.to_dict(),
        "model_digest": run.model_digest,
        "environment": dict(
            environment_fingerprint() if environment is None else environment
        ),
        "git_sha": git_sha() if sha is None else sha,
        "tolerance": {"rel_tol": suite.rel_tol, "k": suite.k},
        "metrics": run.metrics,
    }


def canonical_json(document: Mapping[str, Any]) -> str:
    return (
        json.dumps(document, indent=2, sort_keys=True, allow_nan=False)
        + "\n"
    )


def document_path(out_dir: Path, suite_name: str) -> Path:
    return Path(out_dir) / f"BENCH_{suite_name}.json"


def write_document(path: Path, document: Mapping[str, Any]) -> Path:
    """Atomically write a document (tmp file + ``os.replace``)."""
    import os
    import tempfile

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(canonical_json(document))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_document(path: Path) -> dict[str, Any]:
    path = Path(path)
    try:
        with path.open() as fh:
            document = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot read result document {path}: {exc}") from exc
    if document.get("schema") != SCHEMA:
        raise BenchError(
            f"{path}: unsupported schema {document.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    return document


def document_stats(document: Mapping[str, Any]) -> SampleStats:
    try:
        return SampleStats.from_dict(document["stats"])
    except KeyError as exc:
        raise BenchError(f"result document missing {exc}") from exc
