"""Execute registered suites with warmup/repeat control.

The runner calls the *same* function pytest benchmarks time via
``benchmark.pedantic`` -- it never shells out to pytest and never forks
the measured code path.  Warmup iterations run first and are discarded
(they absorb one-time costs: imports already paid, ``lru_cache`` fills,
allocator warm-up); each timed repeat is measured with
``time.perf_counter`` and recorded as one sample.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.bench.stats import SampleStats


@dataclass
class SuiteRun:
    """One measured execution of a suite: samples plus context."""

    suite: str
    samples: list[float]
    warmup: int
    stats: SampleStats
    model_digest: str | None = None
    metrics: dict[str, Any] | None = None
    #: The measured function's last return value.  Not serialized --
    #: callers that want to post-process results (tables, assertions)
    #: read it in-process.
    returned: Any = field(default=None, repr=False)


def run_suite(
    suite: Any,
    *,
    warmup: int | None = None,
    repeats: int | None = None,
    capture_metrics: bool = False,
) -> SuiteRun:
    """Run one registered :class:`~_common.BenchSuite` and collect stats.

    ``warmup``/``repeats`` override the suite's registered policy (the
    CLI exposes them as flags).  With ``capture_metrics`` true and a
    suite whose function accepts a ``metrics=`` registry, one
    :class:`~repro.obs.MetricsRegistry` accumulates across the timed
    repeats and its JSON snapshot lands in the result document --
    sim-clock histograms, WAN drop counters, span timings.
    """
    warmup_n = suite.warmup if warmup is None else warmup
    repeats_n = suite.repeats if repeats is None else repeats
    if repeats_n < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats_n}")
    if warmup_n < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup_n}")

    registry = None
    kwargs: dict[str, Any] = {}
    if capture_metrics and suite.accepts_metrics:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        kwargs["metrics"] = registry

    for _ in range(warmup_n):
        suite.fn(**kwargs)
    if registry is not None:
        # Warmup traffic must not pollute the recorded metrics.
        registry = type(registry)()
        kwargs["metrics"] = registry

    samples: list[float] = []
    returned: Any = None
    for _ in range(repeats_n):
        start = time.perf_counter()
        returned = suite.fn(**kwargs)
        samples.append(time.perf_counter() - start)

    digest: str | None = None
    if suite.model_factory is not None:
        model = suite.model_factory()
        digest = model.digest()

    metrics_doc: dict[str, Any] | None = None
    if registry is not None:
        from repro.obs import registry_to_dict

        metrics_doc = registry_to_dict(registry)

    return SuiteRun(
        suite=suite.name,
        samples=samples,
        warmup=warmup_n,
        stats=SampleStats.from_samples(samples),
        model_digest=digest,
        metrics=metrics_doc,
        returned=returned,
    )
