"""Chain-set partitioning for the solver farm.

The monolithic SB-LP routes every chain jointly, which is what makes it
optimal -- and what makes its solve time grow superlinearly with the
chain count (Section 7 of the paper; the authors report CPLEX runs of up
to three hours at 10 000 chains).  This module splits a
:class:`~repro.core.model.NetworkModel`'s chain set into *partitions*
that can be solved as independent, much smaller programs:

1. Chains are grouped by **resource coupling**: two chains belong to the
   same coupling group when they can load the same (VNF, site) capacity,
   the same site capacity, or the same physical link.  Distinct coupling
   groups share no constraint of the LP, so solving them separately and
   merging the results is *exactly* equivalent to the monolithic solve
   (the merged program's constraint matrix is block-diagonal).

2. A coupling group larger than ``max_chains`` is split further, and
   each shared resource's budget (compute capacity, link headroom) is
   divided among the subgroups **proportionally to the demand** each
   subgroup can place on it.  The merged solution is always feasible for
   the original program -- per-resource shares sum to the original
   capacity -- but may be suboptimal, because a subgroup cannot borrow
   capacity another subgroup leaves idle.

Optimality-gap contract (documented, checked by
``tests/test_scale_properties.py`` and
``benchmarks/bench_scale_solver_farm.py``):

- ``PartitionPlan.exact`` is ``True`` when no coupling group was split;
  the merged objective then equals the monolithic objective (up to LP
  tolerance).
- When groups are split, the gap is workload-dependent.  With capacity
  headroom >= the demand imbalance between subgroups the gap is near
  zero; :data:`DEFAULT_GAP_TOLERANCE` (15% relative) is the bound the
  benchmarks assert on the paper-style workloads.  Tightly coupled link
  budgets (many chains contending for one bottleneck link) are the case
  where proportional splitting is *not* close to optimal -- prefer
  larger ``max_chains`` or the monolithic solver there (see
  "Scaling the controller" in README.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.columns import ragged_gather
from repro.core.model import Chain, CloudSite, Link, NetworkModel, VNF

#: Relative objective gap the split-partition farm is expected to stay
#: within on the benchmark workloads (see module docstring).
DEFAULT_GAP_TOLERANCE = 0.15

#: Links keep at least this fraction of their bandwidth in a sub-model so
#: the :class:`~repro.core.model.Link` validation (bandwidth > 0) holds
#: even for a subgroup whose demand share of the link rounds to zero.
_MIN_LINK_SHARE = 1e-9

ResourceKey = tuple  # ("site", s) | ("vnf", f, s) | ("link", name)


class PartitionError(Exception):
    """Raised on malformed partitioning requests."""


@dataclass(frozen=True)
class Partition:
    """One independently solvable slice of the chain set."""

    index: int
    chains: tuple[str, ...]
    #: True when the partition is a full coupling group solved against
    #: unscaled capacities (its slice of the program is exact).
    exact: bool


class PartitionPlan:
    """A partitioning of one model's chains, reusable across demands.

    The plan is purely *structural*: membership and capacity shares are
    fixed when the plan is built, so later demand changes (the
    re-optimization path) leave unchanged partitions bit-identical --
    which is what lets the solution cache serve them without re-solving.
    """

    def __init__(
        self,
        partitions: list[Partition],
        shares: dict[int, dict[ResourceKey, float]],
        structure: dict[str, tuple],
        substrate_digest: str | None = None,
    ):
        self.partitions = partitions
        self._shares = shares
        self._structure = structure
        #: Substrate content hash at build time.  The coupling groups,
        #: the DP pre-route, and the proportional link shares all depend
        #: on the substrate, so a plan must not outlive substrate edits
        #: (``fail_link``/``restore_link`` mutate latencies in place and
        #: only call ``invalidate_substrate()``).
        self.substrate_digest = substrate_digest
        self.chain_partition: dict[str, int] = {}
        for part in partitions:
            for name in part.chains:
                self.chain_partition[name] = part.index

    @property
    def exact(self) -> bool:
        """True when every partition is a full coupling group."""
        return all(p.exact for p in self.partitions)

    def compatible_with(self, model: NetworkModel) -> bool:
        """Whether the plan still describes ``model``'s chain set.

        Demands may differ (that is the point of reuse); names, chain
        structure (ingress/egress/VNF list), and the substrate identity
        captured at build time must match.  A substrate edit (e.g. a
        link failure flipping latencies to ``inf`` mid-round) changes
        the substrate digest and forces a replan -- the stored shares
        were computed against pre-edit link budgets and routing.
        """
        if (
            self.substrate_digest is not None
            and self.substrate_digest != model.substrate_digest()
        ):
            return False
        if set(model.chains) != set(self._structure):
            return False
        return all(
            _chain_structure(model.chains[name]) == struct
            for name, struct in self._structure.items()
        )

    def partitions_for(self, chains: Iterable[str]) -> set[int]:
        """Indices of the partitions containing any of ``chains``."""
        indices = set()
        for name in chains:
            index = self.chain_partition.get(name)
            if index is None:
                raise PartitionError(f"chain {name!r} is not in the plan")
            indices.add(index)
        return indices

    def share(self, index: int, resource: ResourceKey) -> float:
        """Partition ``index``'s budget share of ``resource`` (1.0 when
        the resource is not contended across split subgroups)."""
        return self._shares.get(index, {}).get(resource, 1.0)

    def submodel(self, model: NetworkModel, index: int) -> NetworkModel:
        """Build partition ``index``'s solve model from current demands.

        Exact partitions reuse the full substrate; split partitions get
        capacities and link budgets scaled by their stored shares.
        """
        part = self.partitions[index]
        chains = [model.chains[name] for name in part.chains]
        shares = self._shares.get(index)
        if not shares:
            return model.copy_with_chains(chains)

        vnfs = []
        for vnf in model.vnfs.values():
            scaled = {
                site: cap * shares.get(("vnf", vnf.name, site), 1.0)
                for site, cap in vnf.site_capacity.items()
            }
            vnfs.append(VNF(vnf.name, vnf.load_per_unit, scaled))
        sites = [
            CloudSite(
                s.name, s.node, s.capacity * shares.get(("site", s.name), 1.0)
            )
            for s in model.sites.values()
        ]
        links = []
        for link in model.links.values():
            share = max(
                shares.get(("link", link.name), 1.0), _MIN_LINK_SHARE
            )
            links.append(
                Link(
                    link.name,
                    link.src,
                    link.dst,
                    link.bandwidth * share,
                    link.background * share,
                )
            )
        return NetworkModel(
            nodes=model.nodes,
            latency=model._latency,
            sites=sites,
            vnfs=vnfs,
            chains=chains,
            links=links,
            routing=model.routing,
            mlu_limit=model.mlu_limit,
        )


def _chain_structure(chain: Chain) -> tuple:
    """The demand-independent identity of a chain."""
    return (chain.ingress, chain.egress, chain.vnfs)


def _stage_node_ids(
    model: NetworkModel, sub, chain: Chain, z: int, destinations: bool
) -> np.ndarray:
    """Network-node indices of a stage's source or destination endpoints."""
    names = (
        model.stage_destinations(chain, z)
        if destinations
        else model.stage_sources(chain, z)
    )
    return np.fromiter(
        (sub.node_index[model.endpoint_node(name)] for name in names),
        dtype=np.int64,
        count=len(names),
    )


def _pair_link_ids(sub, a_nodes: np.ndarray, b_nodes: np.ndarray) -> np.ndarray:
    """Unique link indices any (a, b) node pair's traffic can cross."""
    pids = sub.pair_id[np.ix_(a_nodes, b_nodes)].ravel()
    p = pids[pids >= 0]
    if p.size == 0:
        return p
    pool_idx, _ = ragged_gather(sub.pair_start[p], sub.pair_len[p])
    return np.unique(sub.pool_link[pool_idx])


def chain_resources(model: NetworkModel, chain: Chain) -> set[ResourceKey]:
    """Every capacity resource the chain's LP variables can touch."""
    sub = model.substrate_columns()
    resources: set[ResourceKey] = set()
    for z in range(1, chain.num_stages + 1):
        if z < chain.num_stages:
            for site in model.stage_destinations(chain, z):
                resources.add(("vnf", chain.vnf_at(z), site))
                resources.add(("site", site))
        if not model.routing:
            continue
        fwd = chain.forward_traffic[z - 1]
        rev = chain.reverse_traffic[z - 1]
        if fwd <= 0 and rev <= 0:
            continue
        srcs = _stage_node_ids(model, sub, chain, z, destinations=False)
        dsts = _stage_node_ids(model, sub, chain, z, destinations=True)
        if fwd > 0:
            for li in _pair_link_ids(sub, srcs, dsts):
                resources.add(("link", sub.link_names[li]))
        if rev > 0:
            for li in _pair_link_ids(sub, dsts, srcs):
                resources.add(("link", sub.link_names[li]))
    return resources


#: Fraction of a chain's stage traffic spread uniformly over every link
#: it *could* use, on top of the full weight placed on its predicted
#: usage.  Keeps overflow links available to the subgroup without
#: diluting the bottleneck-link shares that matter.
_LINK_OVERFLOW_WEIGHT = 0.1


def _dp_link_usage(model: NetworkModel) -> dict[str, dict[ResourceKey, float]]:
    """Per-chain link traffic of a fast SB-DP pre-route.

    The best proportional link shares are the shares of the *optimal*
    solution's link usage (a partition can then always reproduce its
    slice of the monolithic routing).  The SB-DP heuristic approximates
    that equilibrium at a tiny fraction of the LP's cost, so its
    per-chain link traffic is the default weighting for split link
    budgets.  Chains SB-DP leaves (partially) unrouted keep whatever
    usage their routed fraction generates; the latency-path weights in
    :func:`_chain_resource_weights` fill in for fully unrouted chains.
    """
    from repro.core.dp import DpConfig, route_chains_dp

    solution = route_chains_dp(
        model, DpConfig(max_paths_per_chain=8)
    ).solution
    usage: dict[str, dict[ResourceKey, float]] = {}
    for name, chain in model.chains.items():
        per_chain: dict[ResourceKey, float] = {}
        for z in range(1, chain.num_stages + 1):
            for (src, dst), frac in solution.stage_flows(name, z).items():
                n1 = model.endpoint_node(src)
                n2 = model.endpoint_node(dst)
                fwd = chain.forward_traffic[z - 1] * frac
                rev = chain.reverse_traffic[z - 1] * frac
                if fwd > 0:
                    for link, f in model.links_between(n1, n2).items():
                        key = ("link", link)
                        per_chain[key] = per_chain.get(key, 0.0) + fwd * f
                if rev > 0:
                    for link, f in model.links_between(n2, n1).items():
                        key = ("link", link)
                        per_chain[key] = per_chain.get(key, 0.0) + rev * f
        usage[name] = per_chain
    return usage


def _latency_path(model: NetworkModel, chain: Chain) -> list[str]:
    """The chain's minimum-latency site sequence, capacities ignored.

    A tiny Equation 8 DP over propagation delay only; used to predict
    which links a chain will actually load so the partitioner's
    proportional link shares concentrate where the traffic goes (a
    uniform could-touch weighting starves bottleneck links badly).
    """
    prev_cost: dict[str, float] = {chain.ingress: 0.0}
    parents: list[dict[str, str]] = []
    for z in range(1, chain.num_stages + 1):
        cost: dict[str, float] = {}
        parent: dict[str, str] = {}
        for dst in model.stage_destinations(chain, z):
            best, best_src = float("inf"), None
            for src, base in prev_cost.items():
                step = base + model.site_latency(src, dst)
                if step < best:
                    best, best_src = step, src
            if best_src is not None:
                cost[dst] = best
                parent[dst] = best_src
        parents.append(parent)
        prev_cost = cost
    path = [chain.egress]
    current = chain.egress
    for parent in reversed(parents):
        current = parent[current]
        path.append(current)
    path.reverse()
    return path


def _chain_resource_weights(
    model: NetworkModel,
    chain: Chain,
    link_usage: Mapping[ResourceKey, float] | None = None,
) -> dict[ResourceKey, float]:
    """Demand each chain can place on a resource (the proportional-split
    weights).

    Compute weights mirror Equation 4's load accounting, spread over
    every deployment site (the LP is free to use any of them, and a
    uniform per-site ratio keeps each subgroup's total capacity for a
    VNF proportional to its demand).  Link weights come from the SB-DP
    pre-route (``link_usage``), falling back to the chain's latency-best
    path when the pre-route carried nothing for it; every other link
    the chain could use gets a small uniform share
    (:data:`_LINK_OVERFLOW_WEIGHT`) so overflow routing stays possible.
    """
    sub = model.substrate_columns()
    weights: dict[ResourceKey, float] = {}
    if link_usage:
        weights.update(link_usage)
        path = None
    else:
        path = _latency_path(model, chain) if model.routing else None
    for z in range(1, chain.num_stages + 1):
        if z < chain.num_stages:
            vnf_name = chain.vnf_at(z)
            load = model.vnfs[vnf_name].load_per_unit * (
                chain.stage_traffic(z) + chain.stage_traffic(z + 1)
            )
            for site in model.stage_destinations(chain, z):
                key = ("vnf", vnf_name, site)
                weights[key] = weights.get(key, 0.0) + load
                skey = ("site", site)
                weights[skey] = weights.get(skey, 0.0) + load
        if not model.routing:
            continue
        fwd = chain.forward_traffic[z - 1]
        rev = chain.reverse_traffic[z - 1]
        if fwd <= 0 and rev <= 0:
            continue
        if path is not None:
            n1 = model.endpoint_node(path[z - 1])
            n2 = model.endpoint_node(path[z])
            if fwd > 0:
                for name, f in model.links_between(n1, n2).items():
                    key = ("link", name)
                    weights[key] = weights.get(key, 0.0) + fwd * f
            if rev > 0:
                for name, f in model.links_between(n2, n1).items():
                    key = ("link", name)
                    weights[key] = weights.get(key, 0.0) + rev * f
        overflow: set[ResourceKey] = set()
        srcs = _stage_node_ids(model, sub, chain, z, destinations=False)
        dsts = _stage_node_ids(model, sub, chain, z, destinations=True)
        if fwd > 0:
            overflow.update(
                ("link", sub.link_names[li])
                for li in _pair_link_ids(sub, srcs, dsts)
            )
        if rev > 0:
            overflow.update(
                ("link", sub.link_names[li])
                for li in _pair_link_ids(sub, dsts, srcs)
            )
        for key in overflow:
            if weights.get(key, 0.0) <= 0.0:
                weights[key] = weights.get(key, 0.0) + (
                    _LINK_OVERFLOW_WEIGHT * (fwd + rev)
                )
    return weights


class _UnionFind:
    def __init__(self, items: Iterable[str]):
        self.parent = {item: item for item in items}

    def find(self, item: str) -> str:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def coupling_groups(model: NetworkModel) -> list[list[str]]:
    """Chains grouped by shared resources, deterministically ordered."""
    uf = _UnionFind(model.chains)
    owner: dict[ResourceKey, str] = {}
    for name, chain in model.chains.items():
        for resource in chain_resources(model, chain):
            first = owner.setdefault(resource, name)
            if first != name:
                uf.union(first, name)
    groups: dict[str, list[str]] = {}
    for name in model.chains:
        groups.setdefault(uf.find(name), []).append(name)
    ordered = [sorted(members) for members in groups.values()]
    ordered.sort(key=lambda members: members[0])
    return ordered


def partition_chains(
    model: NetworkModel, max_chains: int | None = 16
) -> PartitionPlan:
    """Partition the model's chains for independent solving.

    ``max_chains`` caps the partition size; ``None`` keeps every
    coupling group whole (always exact, but a fully coupled workload
    then degenerates to the monolithic solve).
    """
    if not model.chains:
        raise PartitionError("model has no chains to partition")
    if max_chains is not None and max_chains < 1:
        raise PartitionError("max_chains must be positive")

    groups = coupling_groups(model)
    needs_split = max_chains is not None and any(
        len(group) > max_chains for group in groups
    )
    weights: dict[str, dict[ResourceKey, float]] = {}
    if needs_split:
        # Splitting divides shared budgets, so the quality of the split
        # hinges on predicting where each chain's traffic really lands.
        # Amortize one fast SB-DP pre-route into the plan build and use
        # its per-chain link usage as the proportional-split weights.
        usage = _dp_link_usage(model) if model.routing else {}
        weights = {
            name: _chain_resource_weights(model, chain, usage.get(name))
            for name, chain in model.chains.items()
        }

    partitions: list[Partition] = []
    shares: dict[int, dict[ResourceKey, float]] = {}
    structure = {
        name: _chain_structure(chain) for name, chain in model.chains.items()
    }
    for group in groups:
        if max_chains is None or len(group) <= max_chains:
            partitions.append(
                Partition(len(partitions), tuple(group), exact=True)
            )
            continue
        # Split into balanced, name-ordered subgroups.  Membership is
        # demand-independent so re-optimization rounds keep the same
        # partitioning (and the same cache keys for unchanged slices).
        num_parts = -(-len(group) // max_chains)
        subgroups = [group[i::num_parts] for i in range(num_parts)]
        totals: dict[ResourceKey, float] = {}
        touched: dict[ResourceKey, int] = {}
        for name in group:
            for resource, weight in weights[name].items():
                totals[resource] = totals.get(resource, 0.0) + weight
                touched[resource] = touched.get(resource, 0) + 1
        for subgroup in subgroups:
            index = len(partitions)
            partitions.append(Partition(index, tuple(subgroup), exact=False))
            sub_weights: dict[ResourceKey, float] = {}
            sub_touched: dict[ResourceKey, int] = {}
            for name in subgroup:
                for resource, weight in weights[name].items():
                    sub_weights[resource] = (
                        sub_weights.get(resource, 0.0) + weight
                    )
                    sub_touched[resource] = sub_touched.get(resource, 0) + 1
            part_shares: dict[ResourceKey, float] = {}
            for resource, weight in sub_weights.items():
                total = totals[resource]
                if total > 0:
                    part_shares[resource] = weight / total
                else:
                    # Zero-demand contention (e.g. all-idle chains):
                    # split evenly among the subgroups that touch it.
                    part_shares[resource] = (
                        sub_touched[resource] / touched[resource]
                    )
            shares[index] = part_shares
    return PartitionPlan(
        partitions, shares, structure, substrate_digest=model.substrate_digest()
    )


def _node_distance(model: NetworkModel, a: str, b: str) -> float:
    """Latency metric between two nodes; missing pairs are infinitely far."""
    try:
        return model.latency(a, b)
    except Exception:
        return float("inf")


def _shard_seeds(
    model: NetworkModel, nodes: list[str], n_shards: int
) -> list[str]:
    """Farthest-first seed nodes, deterministic under name tie-breaks."""

    def total_distance(node: str) -> float:
        total = 0.0
        for other in nodes:
            d = _node_distance(model, node, other)
            if d != float("inf"):
                total += d
        return total

    # Most peripheral node first (maximum total finite distance), then
    # repeatedly the node farthest from every chosen seed.  All ties go
    # to the lexicographically smallest name, so the seed sequence -- and
    # with it the whole shard map -- is byte-stable across runs.
    seeds = [min(nodes, key=lambda n: (-total_distance(n), n))]
    while len(seeds) < n_shards:
        remaining = [n for n in nodes if n not in seeds]
        seeds.append(
            min(
                remaining,
                key=lambda n: (
                    -min(_node_distance(model, n, s) for s in seeds),
                    n,
                ),
            )
        )
    return seeds


def shard_map(model: NetworkModel, n_shards: int) -> tuple[tuple[str, ...], ...]:
    """Deterministically partition the substrate's nodes into ``n_shards``
    latency-coherent regions.

    This is the federation counterpart of :func:`coupling_groups`: where
    coupling groups cluster *chains* by the capacity resources they
    share, the shard map clusters *nodes* under the same latency metric
    that drives both the DP pre-route and the resource coupling -- so
    chains whose endpoints and candidate sites fall inside one shard
    tend to form intra-shard coupling groups, and the cross-shard
    residue is what :class:`repro.federation.GlobalCoordinator` splits at
    borders.

    The algorithm is farthest-first seeding over pairwise latency
    followed by quota-bounded region growth along physical links (each
    region holds at most ``ceil(n_nodes / n_shards)`` nodes, and a node
    joins a region only through a link to a node already inside it, so
    regions are connected subgraphs whenever the substrate is).  Models
    without links fall back to nearest-seed metric assignment.  Every
    choice is tie-broken on node names and the returned regions are
    ordered by their smallest member, so the output is **byte-stable**
    across runs and replayable under ``repro.chaos`` -- no dict
    iteration order leaks in.

    Returns a tuple of ``n_shards`` disjoint, name-sorted node tuples
    covering every node.
    """
    nodes = sorted(model.nodes)
    if not 1 <= n_shards <= len(nodes):
        raise PartitionError(
            f"n_shards must be in [1, {len(nodes)}], got {n_shards}"
        )
    if n_shards == 1:
        return (tuple(nodes),)

    seeds = _shard_seeds(model, nodes, n_shards)
    quota = -(-len(nodes) // n_shards)
    assignment: dict[str, int] = {seed: i for i, seed in enumerate(seeds)}
    region_sizes = [1] * n_shards

    adjacency: dict[str, set[str]] = {n: set() for n in nodes}
    for link in model.links.values():
        adjacency[link.src].add(link.dst)
        adjacency[link.dst].add(link.src)

    if model.links:
        # Grow regions along links: repeatedly admit the unassigned node
        # closest (to its region's seed) among all frontier candidates.
        unassigned = set(nodes) - assignment.keys()
        while unassigned:
            best: tuple[float, str, int] | None = None
            for node in unassigned:
                for neighbour in adjacency[node]:
                    region = assignment.get(neighbour)
                    if region is None or region_sizes[region] >= quota:
                        continue
                    candidate = (
                        _node_distance(model, seeds[region], node),
                        node,
                        region,
                    )
                    if best is None or candidate < best:
                        best = candidate
            if best is None:
                break  # stranded nodes (disconnected / full neighbours)
            _, node, region = best
            assignment[node] = region
            region_sizes[region] += 1
            unassigned.discard(node)
    else:
        unassigned = set(nodes) - assignment.keys()

    # Metric fallback for whatever region growth could not reach: the
    # nearest seed that still has quota, ties on (distance, seed index).
    for node in sorted(unassigned):
        region = min(
            (r for r in range(n_shards) if region_sizes[r] < quota),
            key=lambda r: (_node_distance(model, seeds[r], node), r),
        )
        assignment[node] = region
        region_sizes[region] += 1

    members: list[list[str]] = [[] for _ in range(n_shards)]
    for node, region in assignment.items():
        members[region].append(node)
    regions = sorted(tuple(sorted(m)) for m in members)
    return tuple(regions)


__all__ = [
    "DEFAULT_GAP_TOLERANCE",
    "Partition",
    "PartitionError",
    "PartitionPlan",
    "chain_resources",
    "coupling_groups",
    "partition_chains",
    "shard_map",
]
