"""The solver farm: parallel, caching, incremental SB-LP solving.

``SolverFarm`` sits between the controller and
:func:`repro.core.lp.solve_chain_routing_lp`:

- :func:`~repro.scale.partition.partition_chains` splits the chain set
  into independent solve requests (see that module for the
  optimality-gap contract);
- a ``concurrent.futures.ProcessPoolExecutor`` fans the requests out
  across cores (requests and results are plain picklable dataclasses;
  a serial path is used for single-worker configurations and as an
  automatic fallback when no pool can be spawned);
- a :class:`~repro.scale.cache.SolutionCache` keyed by the sub-model
  digest serves repeated and unchanged partitions without a solve;
- :meth:`SolverFarm.resolve` is the incremental entry point used by
  :func:`repro.controller.reoptimize.reoptimize`: it reuses the stored
  partition plan, so only partitions containing changed-demand chains
  miss the cache and are re-solved, and merges fresh results with
  cached ones into a single :class:`~repro.core.routes.RoutingSolution`.

``MonolithicSolver`` wraps the plain whole-network solve behind the same
strategy interface, so ``GlobalSwitchboard(solver=...)`` can switch
between the two without the controller caring which it got.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, TYPE_CHECKING

from repro.core.lp import LpObjective, LpResult, solve_chain_routing_lp
from repro.core.model import NetworkModel
from repro.core.routes import RoutingSolution
from repro.core.serialization import model_from_dict, model_to_dict
from repro.scale.cache import SolutionCache
from repro.scale.partition import PartitionPlan, partition_chains

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

_EPS = 1e-9


@dataclass(frozen=True)
class SolveRequest:
    """A picklable solve order for one partition."""

    partition_index: int
    chains: tuple[str, ...]
    objective: str
    enforce_mlu: bool
    #: The partition sub-model as its serialization document (plain
    #: JSON-compatible containers, safe to ship across processes).
    model_document: dict = field(hash=False)


@dataclass(frozen=True)
class SolveResult:
    """A picklable solve outcome for one partition."""

    partition_index: int
    chains: tuple[str, ...]
    status: str
    objective: float | None
    #: Non-zero flows as ``(chain, stage, src, dst, fraction)`` tuples.
    flows: tuple[tuple[str, int, str, str, float], ...]
    num_variables: int
    num_constraints: int
    solve_seconds: float

    @property
    def ok(self) -> bool:
        return self.status == "optimal"


def _result_from_lp(
    index: int, chains: tuple[str, ...], lp: LpResult
) -> SolveResult:
    flows: tuple[tuple[str, int, str, str, float], ...] = ()
    if lp.solution is not None:
        flows = tuple(
            (f.chain, f.stage, f.src, f.dst, f.fraction)
            for f in lp.solution.flows()
        )
    return SolveResult(
        partition_index=index,
        chains=chains,
        status=lp.status,
        objective=lp.objective,
        flows=flows,
        num_variables=lp.num_variables,
        num_constraints=lp.num_constraints,
        solve_seconds=lp.solve_seconds,
    )


def _solve_submodel(
    submodel: NetworkModel,
    index: int,
    chains: tuple[str, ...],
    objective: LpObjective,
    enforce_mlu: bool,
) -> SolveResult:
    lp = solve_chain_routing_lp(submodel, objective, enforce_mlu=enforce_mlu)
    return _result_from_lp(index, chains, lp)


def solve_request(request: SolveRequest) -> SolveResult:
    """Pool worker: rebuild the sub-model and solve it.

    Module-level so ``ProcessPoolExecutor`` can pickle a reference to it.
    """
    submodel = model_from_dict(request.model_document)
    return _solve_submodel(
        submodel,
        request.partition_index,
        request.chains,
        LpObjective(request.objective),
        request.enforce_mlu,
    )


@dataclass
class FarmResult:
    """Outcome of a farm solve, merged back onto the full model.

    Duck-types the fields of :class:`repro.core.lp.LpResult` that
    callers read (``status``, ``objective``, ``solution``, ``ok``), plus
    farm-specific accounting.
    """

    status: str
    objective: float | None
    solution: RoutingSolution | None
    #: Total partitions in the plan.
    partitions: int
    #: Partition indices actually solved on this call (cache misses).
    solved: tuple[int, ...]
    cache_hits: int
    wall_seconds: float
    #: True when the merged objective is provably equal to the
    #: monolithic optimum (every partition a full coupling group).
    exact: bool
    #: True when the farm fell back to one monolithic solve (a split
    #: partition came back infeasible).
    fallback: bool = False
    results: dict[int, SolveResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "optimal"

    @property
    def solve_seconds(self) -> float:
        return self.wall_seconds


def optimality_gap(farm: FarmResult, monolithic: LpResult) -> float:
    """Relative objective gap of a farm solve vs. the monolithic solve.

    Uses carried throughput for ``MAX_THROUGHPUT``-style solutions (the
    raw LP objective mixes in the latency tiebreak, whose scaling is
    partition-dependent) and the objective value otherwise.  Returns
    ``inf`` when either solve failed.
    """
    if not (farm.ok and monolithic.ok):
        return float("inf")
    if farm.objective is None or monolithic.objective is None:
        return float("inf")
    a, b = farm.objective, monolithic.objective
    if a <= 0 and b <= 0 and farm.solution is not None:
        # Max-throughput objectives are negated carried demand.
        a = farm.solution.throughput()
        b = monolithic.solution.throughput()
    denom = max(abs(b), _EPS)
    return abs(a - b) / denom


class SolverFarm:
    """Partitioned, cached, parallel chain-routing solver.

    Parameters
    ----------
    partition_size:
        Maximum chains per partition (``None`` keeps coupling groups
        whole -- always exact, but no speedup on coupled workloads).
        The default of 16 keeps the proportional-split optimality gap
        well inside :data:`~repro.scale.partition.DEFAULT_GAP_TOLERANCE`
        on the benchmark workloads while the per-partition LPs stay
        small enough for a >2x wall-clock win.
    max_workers:
        Process-pool width; ``None`` uses ``os.cpu_count()`` and ``1``
        forces the serial path.
    cache:
        A shared :class:`SolutionCache`; one is created when omitted.
    enforce_mlu:
        Passed through to :func:`solve_chain_routing_lp`.
    """

    def __init__(
        self,
        partition_size: int | None = 16,
        max_workers: int | None = None,
        cache: SolutionCache | None = None,
        enforce_mlu: bool = True,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.partition_size = partition_size
        self.max_workers = (
            max_workers if max_workers is not None else (os.cpu_count() or 1)
        )
        self.metrics = metrics
        self.cache = (
            cache if cache is not None else SolutionCache(metrics=metrics)
        )
        self.enforce_mlu = enforce_mlu
        self.plan: PartitionPlan | None = None
        self._plan_key: tuple[str, int | None] | None = None

    # -- public entry points --------------------------------------------

    def solve(
        self,
        model: NetworkModel,
        objective: LpObjective = LpObjective.MAX_THROUGHPUT,
    ) -> FarmResult:
        """Partition (fresh proportional shares) and solve everything.

        Identical back-to-back calls reuse the stored plan (the
        proportional shares are a pure function of the model, so
        re-partitioning an unchanged model rebuilds the same plan) and
        are served from the solution cache; after a demand change prefer
        :meth:`resolve`, which keeps the stored plan so unchanged
        partitions keep their cache keys.
        """
        plan_key = (model.digest(), self.partition_size)
        if self.plan is None or self._plan_key != plan_key:
            self.plan = partition_chains(model, self.partition_size)
            self._plan_key = plan_key
        return self._run(model, objective, self.plan, resolve_only=None)

    def resolve(
        self,
        model: NetworkModel,
        changed_chains: Iterable[str],
        objective: LpObjective = LpObjective.MAX_THROUGHPUT,
    ) -> FarmResult:
        """Incremental re-solve after a demand change.

        Reuses the stored partition plan (structure and capacity shares
        are demand-independent), so only partitions containing a chain
        in ``changed_chains`` get new cache keys and are re-solved;
        everything else merges straight from the cache.  Falls back to a
        full :meth:`solve` when no compatible plan exists: first call,
        the chain set / chain structure changed, or the *substrate*
        changed underneath the plan (``fail_link``/``restore_link``
        mutate latencies in place and call ``invalidate_substrate()``;
        the plan's stored substrate digest then no longer matches, so
        the stale proportional shares are rebuilt rather than reused).
        """
        changed = set(changed_chains)
        if self.plan is None or not self.plan.compatible_with(model):
            return self.solve(model, objective)
        return self._run(
            model,
            objective,
            self.plan,
            resolve_only=self.plan.partitions_for(changed),
        )

    # -- machinery -------------------------------------------------------

    def _run(
        self,
        model: NetworkModel,
        objective: LpObjective,
        plan: PartitionPlan,
        resolve_only: set[int] | None,
    ) -> FarmResult:
        start = time.perf_counter()
        mode = "incremental" if resolve_only is not None else "full"
        submodels: dict[int, NetworkModel] = {}
        keys: dict[int, str] = {}
        results: dict[int, SolveResult] = {}
        misses: list[int] = []
        cache_hits = 0
        for part in plan.partitions:
            submodel = plan.submodel(model, part.index)
            submodels[part.index] = submodel
            key = (
                f"{submodel.digest()}:{objective.value}"
                f":mlu={self.enforce_mlu}"
            )
            keys[part.index] = key
            cached = self.cache.get(key)
            if cached is not None:
                results[part.index] = cached
                cache_hits += 1
            else:
                misses.append(part.index)

        for result in self._execute(misses, submodels, plan, objective):
            results[result.partition_index] = result
            if result.ok:
                self.cache.put(keys[result.partition_index], result)

        farm = self._merge(model, objective, plan, results, misses)
        farm.cache_hits = cache_hits
        farm.wall_seconds = time.perf_counter() - start
        if self.metrics is not None:
            self.metrics.counter("scale.solves", mode=mode).inc()
            self.metrics.counter("scale.partition_solves").inc(len(misses))
            self.metrics.gauge("scale.partitions").set(len(plan.partitions))
            self.metrics.histogram("scale.solve_s", mode=mode).observe(
                farm.wall_seconds
            )
        return farm

    def _execute(
        self,
        indices: list[int],
        submodels: dict[int, NetworkModel],
        plan: PartitionPlan,
        objective: LpObjective,
    ) -> list[SolveResult]:
        if not indices:
            return []
        chains = {i: plan.partitions[i].chains for i in indices}
        workers = min(self.max_workers, len(indices))
        if workers > 1:
            requests = [
                SolveRequest(
                    partition_index=i,
                    chains=chains[i],
                    objective=objective.value,
                    enforce_mlu=self.enforce_mlu,
                    model_document=model_to_dict(submodels[i]),
                )
                for i in indices
            ]
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    return list(pool.map(solve_request, requests))
            except (OSError, PermissionError):
                # No pool available (restricted environments): degrade
                # to the serial path rather than failing the solve.
                if self.metrics is not None:
                    self.metrics.counter("scale.pool_failures").inc()
        return [
            _solve_submodel(
                submodels[i], i, chains[i], objective, self.enforce_mlu
            )
            for i in indices
        ]

    def _merge(
        self,
        model: NetworkModel,
        objective: LpObjective,
        plan: PartitionPlan,
        results: dict[int, SolveResult],
        misses: list[int],
    ) -> FarmResult:
        bad = [r for r in results.values() if not r.ok]
        if bad:
            # A split partition can be infeasible even when the joint
            # program is not (its capacity slice was too small for a
            # must-route objective).  Solve monolithically instead.
            if self.metrics is not None:
                self.metrics.counter("scale.fallbacks").inc()
            lp = solve_chain_routing_lp(
                model, objective, enforce_mlu=self.enforce_mlu,
                metrics=self.metrics,
            )
            return FarmResult(
                status=lp.status,
                objective=lp.objective,
                solution=lp.solution,
                partitions=len(plan.partitions),
                solved=tuple(misses),
                cache_hits=0,
                wall_seconds=0.0,
                exact=True,
                fallback=True,
                results=results,
            )

        solution = RoutingSolution(model)
        for result in results.values():
            for chain, stage, src, dst, fraction in result.flows:
                solution.add_flow(chain, stage, src, dst, fraction)
        objectives = [
            r.objective for r in results.values() if r.objective is not None
        ]
        if objective is LpObjective.MIN_MLU:
            merged = max(objectives) if objectives else None
        else:
            merged = sum(objectives) if objectives else None
        return FarmResult(
            status="optimal",
            objective=merged,
            solution=solution,
            partitions=len(plan.partitions),
            solved=tuple(misses),
            cache_hits=0,
            wall_seconds=0.0,
            exact=plan.exact,
            results=results,
        )


class MonolithicSolver:
    """The plain whole-network solve behind the strategy interface.

    ``GlobalSwitchboard(solver=MonolithicSolver())`` behaves exactly
    like passing the model to :func:`solve_chain_routing_lp` yourself;
    it exists so farm and monolithic solving are interchangeable.
    """

    def __init__(
        self,
        enforce_mlu: bool = True,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.enforce_mlu = enforce_mlu
        self.metrics = metrics

    def solve(
        self,
        model: NetworkModel,
        objective: LpObjective = LpObjective.MAX_THROUGHPUT,
    ) -> LpResult:
        return solve_chain_routing_lp(
            model, objective, enforce_mlu=self.enforce_mlu,
            metrics=self.metrics,
        )

    def resolve(
        self,
        model: NetworkModel,
        changed_chains: Iterable[str],
        objective: LpObjective = LpObjective.MAX_THROUGHPUT,
    ) -> LpResult:
        """No incremental path: every re-solve is a full solve."""
        return self.solve(model, objective)


__all__ = [
    "FarmResult",
    "MonolithicSolver",
    "SolveRequest",
    "SolveResult",
    "SolverFarm",
    "optimality_gap",
    "solve_request",
]
