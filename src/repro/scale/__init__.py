"""``repro.scale`` -- a parallel, caching, incremental solver farm.

The paper's scalability pain point (Section 7: SB-LP solve time vs.
number of chains) is addressed here the way wide-area chain-mapping
systems usually do it: decompose the program per chain partition, solve
partitions concurrently, and on re-optimization (Section 5.3 semantics)
re-solve only the partitions whose chains' demand actually moved.

Entry points:

- :func:`partition_chains` / :class:`PartitionPlan` -- split a model's
  chain set into independent solve requests;
- :class:`SolverFarm` -- partition + process pool + solution cache +
  incremental :meth:`~SolverFarm.resolve`;
- :class:`MonolithicSolver` -- the plain whole-network solve behind the
  same strategy interface (``GlobalSwitchboard(solver=...)`` accepts
  either);
- :class:`SolutionCache` -- digest-keyed LRU with ``scale.cache.*``
  observability counters.
"""

from repro.scale.cache import CacheStats, SolutionCache
from repro.scale.farm import (
    FarmResult,
    MonolithicSolver,
    SolveRequest,
    SolveResult,
    SolverFarm,
    optimality_gap,
    solve_request,
)
from repro.scale.partition import (
    DEFAULT_GAP_TOLERANCE,
    Partition,
    PartitionError,
    PartitionPlan,
    chain_resources,
    coupling_groups,
    partition_chains,
    shard_map,
)

__all__ = [
    "CacheStats",
    "DEFAULT_GAP_TOLERANCE",
    "FarmResult",
    "MonolithicSolver",
    "Partition",
    "PartitionError",
    "PartitionPlan",
    "SolutionCache",
    "SolveRequest",
    "SolveResult",
    "SolverFarm",
    "chain_resources",
    "coupling_groups",
    "optimality_gap",
    "partition_chains",
    "shard_map",
    "solve_request",
]
