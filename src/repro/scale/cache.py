"""LRU cache of partition solve results, keyed by model digests.

Cache keys are built from :meth:`repro.core.model.NetworkModel.digest`
of the exact sub-model handed to the solver plus the solve options, so a
hit is only possible when topology, capacities (including the
partitioner's proportional shares), chain set, per-stage demands, and
objective are all bit-identical.  That makes the cache safe to share
across solver-farm instances and across re-optimization rounds: a
partition whose chains' demand did not move hashes to the same key and
is served without a solve.

Hit/miss/eviction counts are reported both locally (:class:`CacheStats`)
and, when a registry is attached, as ``scale.cache.*`` counters in
:mod:`repro.obs`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.scale.farm import SolveResult


@dataclass
class CacheStats:
    """Local counters mirroring the ``scale.cache.*`` metrics."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SolutionCache:
    """A bounded LRU of :class:`~repro.scale.farm.SolveResult` objects."""

    def __init__(
        self,
        max_entries: int = 256,
        metrics: "MetricsRegistry | None" = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.metrics = metrics
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, SolveResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> "SolveResult | None":
        result = self._entries.get(key)
        if result is None:
            self.stats.misses += 1
            if self.metrics is not None:
                self.metrics.counter("scale.cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if self.metrics is not None:
            self.metrics.counter("scale.cache.hits").inc()
        return result

    def put(self, key: str, result: "SolveResult") -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self.metrics is not None:
                self.metrics.counter("scale.cache.evictions").inc()

    def clear(self) -> None:
        self._entries.clear()


__all__ = ["CacheStats", "SolutionCache"]
