"""Forwarders and a synchronous data-plane driver.

The driver walks simulated packets through the exact element sequence of
Section 3's data-plane operation: ingress edge -> forwarder -> VNF
instance -> forwarder -> ... -> egress edge, installing flow-table
entries on the first packet of each connection so that

- later packets in the same direction follow the same instances
  (*flow affinity*),
- reverse-direction packets retrace the same instances in reverse order
  (*symmetric return*), and
- every packet visits the chain's VNFs in order (*conformity*).

Forwarders are deliberately oblivious to chain *semantics*: they only
know their label-indexed load-balancing rules and their flow tables, as
in the paper.  Route or weight changes only affect connections that
start after the change.
"""

from __future__ import annotations

import random
from typing import Callable, Protocol, TYPE_CHECKING

from repro.dataplane.flowtable import FlowTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
from repro.dataplane.labels import Labels, Packet
from repro.dataplane.rules import LoadBalancingRule, RuleError


class ForwardingError(Exception):
    """Raised when a packet cannot be forwarded."""


class DropPacket(Exception):
    """Raised by a VNF transform to drop the packet (e.g. a NAT with no
    mapping, or a firewall rejecting an unsolicited reverse packet)."""


class ChainEndpoint(Protocol):
    """Anything that can terminate a chain (an egress edge instance)."""

    name: str

    def receive_from_chain(self, packet: Packet, came_from: str) -> None:
        ...


class VnfInstance:
    """A single VNF instance (VM/container) attached to a forwarder.

    ``transform`` optionally rewrites the packet (e.g. a NAT rewriting the
    five-tuple); it is called per packet with the packet itself.  When
    ``supports_labels`` is False, the attached forwarder strips the labels
    before handing over the packet and re-affixes them afterwards -- the
    ``saw_labels`` log lets tests assert the VNF really never saw them.
    """

    def __init__(
        self,
        name: str,
        service: str,
        site: str,
        weight: float = 1.0,
        supports_labels: bool = True,
        transform: Callable[[Packet], None] | None = None,
    ):
        self.name = name
        self.service = service
        self.site = site
        self.weight = weight
        self.supports_labels = supports_labels
        self.transform = transform
        self.packets_processed = 0
        self.saw_labels: list[bool] = []

    def process(self, packet: Packet) -> Packet:
        self.packets_processed += 1
        self.saw_labels.append(packet.labels is not None)
        packet.record(self.name)
        if self.transform is not None:
            self.transform(packet)
        return packet

    def __repr__(self) -> str:
        return f"VnfInstance({self.name!r}, service={self.service!r}, site={self.site!r})"


class Forwarder:
    """A Switchboard forwarder: label-indexed rules plus a flow table.

    ``flow_table`` may be supplied to share connection state across
    forwarders (the DHT-replicated table of
    :mod:`repro.dataplane.dht`); by default each forwarder keeps a
    private table, as the paper's base design does.
    """

    def __init__(
        self,
        name: str,
        site: str,
        max_flow_entries: int | None = None,
        flow_table=None,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.name = name
        self.site = site
        self.flow_table = (
            flow_table
            if flow_table is not None
            else FlowTable(
                max_entries=max_flow_entries, metrics=metrics, owner=name
            )
        )
        self._rule_install_counter = (
            metrics.counter("flowtable.rule_installs", forwarder=name)
            if metrics is not None
            else None
        )
        self.rules: dict[tuple[int, str], LoadBalancingRule] = {}
        self.attached: dict[str, VnfInstance] = {}
        self.packets_forwarded = 0
        self.packets_dropped = 0
        #: (chain label, egress site, direction) -> bytes seen.  The
        #: measurement substrate of Section 4.1: per-chain demand is
        #: estimated from these counters.
        self.traffic_bytes: dict[tuple[int, str, str], int] = {}

    # -- control plane surface ------------------------------------------

    def attach(self, instance: VnfInstance) -> None:
        """Associate a VNF instance with this forwarder (same L2 domain)."""
        if instance.site != self.site:
            raise ForwardingError(
                f"instance {instance.name!r} at {instance.site!r} cannot attach "
                f"to forwarder at {self.site!r}"
            )
        self.attached[instance.name] = instance

    def detach(self, instance_name: str) -> None:
        self.attached.pop(instance_name, None)

    def install_rule(
        self, chain_label: int, egress_site: str, rule: LoadBalancingRule
    ) -> None:
        """Install/replace the rule for a (chain, egress) pair.

        Existing flow-table entries are intentionally left alone: only
        new connections see the new rule (Section 5.3).
        """
        self.rules[(chain_label, egress_site)] = rule
        if self._rule_install_counter is not None:
            self._rule_install_counter.inc()

    def remove_rule(self, chain_label: int, egress_site: str) -> None:
        self.rules.pop((chain_label, egress_site), None)

    def rule_for(self, labels: Labels) -> LoadBalancingRule | None:
        return self.rules.get((labels.chain, labels.egress_site))

    def __repr__(self) -> str:
        return f"Forwarder({self.name!r}, site={self.site!r})"


class DataPlane:
    """Synchronous packet walker over forwarders, VNFs, and edges.

    ``send_forward`` / ``send_reverse`` walk one packet end-to-end and
    return it (with its ``trace`` filled in).  A ``max_hops`` guard turns
    mis-configured rule loops into errors instead of hangs.
    """

    MAX_HOPS = 64

    def __init__(
        self,
        rng: random.Random | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.rng = rng if rng is not None else random.Random(0)
        self.metrics = metrics
        self.forwarders: dict[str, Forwarder] = {}
        self.endpoints: dict[str, ChainEndpoint] = {}
        self.drops: list[tuple[Packet, str]] = []
        if metrics is not None:
            self._packet_counter = metrics.counter("dataplane.packet_hops")
            self._drop_counter = metrics.counter("dataplane.packet_drops")
        else:
            self._packet_counter = self._drop_counter = None

    # -- registration ------------------------------------------------------

    def add_forwarder(self, forwarder: Forwarder) -> Forwarder:
        if forwarder.name in self.forwarders:
            raise ForwardingError(f"duplicate forwarder {forwarder.name!r}")
        self.forwarders[forwarder.name] = forwarder
        return forwarder

    def add_endpoint(self, endpoint: ChainEndpoint) -> None:
        if endpoint.name in self.endpoints:
            raise ForwardingError(f"duplicate endpoint {endpoint.name!r}")
        self.endpoints[endpoint.name] = endpoint

    # -- packet walking -------------------------------------------------------

    def send_forward(self, packet: Packet, first_forwarder: str, came_from: str) -> Packet:
        """Walk a labelled forward-direction packet from the ingress
        edge's forwarder to the egress endpoint."""
        packet.direction = "forward"
        return self._walk(packet, first_forwarder, came_from)

    def send_reverse(self, packet: Packet, first_forwarder: str, came_from: str) -> Packet:
        """Walk a labelled reverse-direction packet from the egress
        edge's forwarder back to the ingress endpoint."""
        packet.direction = "reverse"
        return self._walk(packet, first_forwarder, came_from)

    def _walk(self, packet: Packet, target: str, came_from: str) -> Packet:
        hops = 0
        while True:
            hops += 1
            if hops > self.MAX_HOPS:
                raise ForwardingError(
                    f"packet exceeded {self.MAX_HOPS} hops: trace={packet.trace}"
                )
            if target in self.endpoints:
                self.endpoints[target].receive_from_chain(packet, came_from)
                return packet
            forwarder = self.forwarders.get(target)
            if forwarder is None:
                raise ForwardingError(f"unknown forwarding target {target!r}")
            step = self._forward_step(forwarder, packet, came_from)
            if step is None:
                self.drops.append((packet, forwarder.name))
                forwarder.packets_dropped += 1
                if self._drop_counter is not None:
                    self._drop_counter.inc()
                return packet
            came_from = forwarder.name
            target = step

    # -- per-forwarder behaviour ----------------------------------------------

    def _forward_step(
        self, fwd: Forwarder, packet: Packet, came_from: str
    ) -> str | None:
        """Process one packet at one forwarder; returns the next target
        name, or None if the packet must be dropped."""
        if packet.labels is None:
            return None
        packet.record(fwd.name)
        fwd.packets_forwarded += 1
        if self._packet_counter is not None:
            self._packet_counter.inc()
        meter_key = (
            packet.labels.chain, packet.labels.egress_site, packet.direction
        )
        fwd.traffic_bytes[meter_key] = (
            fwd.traffic_bytes.get(meter_key, 0) + packet.size_bytes
        )
        if packet.direction == "forward":
            return self._forward_direction(fwd, packet, came_from)
        return self._reverse_direction(fwd, packet, came_from)

    def _forward_direction(
        self, fwd: Forwarder, packet: Packet, came_from: str
    ) -> str | None:
        labels = packet.labels
        in_flow = packet.flow
        entry = fwd.flow_table.lookup(labels, in_flow)
        if entry is None:
            rule = fwd.rule_for(labels)
            if rule is None:
                return None
            entry = fwd.flow_table.insert(labels, packet.flow)
            entry.prev_hop = came_from
            try:
                if len(rule.local_instances):
                    entry.local_instance = rule.local_instances.pick(self.rng)
            except RuleError:
                return None
            # The next hop is chosen after the local VNF runs (the tuple
            # may change); leave next_hop unset until then.
        entry.packets += 1

        if entry.local_instance is not None:
            instance = fwd.attached.get(entry.local_instance)
            if instance is None:
                return None
            try:
                self._run_instance(fwd, instance, packet)
            except DropPacket:
                return None
            out_flow = packet.flow
            if out_flow != in_flow:
                # Header-rewriting VNF: alias the entry under the new
                # tuple so reverse-direction lookups still match (the
                # per-interface label re-association of Section 5.3).
                entry = fwd.flow_table.alias(labels, out_flow, entry)

        if entry.next_hop is None:
            rule = fwd.rule_for(labels)
            if rule is None or not len(rule.next_forwarders):
                return None
            try:
                entry.next_hop = rule.next_forwarders.pick(self.rng)
            except RuleError:
                return None
        return entry.next_hop

    def _reverse_direction(
        self, fwd: Forwarder, packet: Packet, came_from: str
    ) -> str | None:
        labels = packet.labels
        # Reverse packets match the entry installed by the forward
        # direction: key by the reversed five-tuple.
        entry = fwd.flow_table.lookup(labels, packet.flow.reversed())
        if entry is None:
            return None
        entry.packets += 1
        if entry.local_instance is not None:
            instance = fwd.attached.get(entry.local_instance)
            if instance is None:
                return None
            try:
                self._run_instance(fwd, instance, packet)
            except DropPacket:
                return None
        return entry.prev_hop

    def _run_instance(
        self, fwd: Forwarder, instance: VnfInstance, packet: Packet
    ) -> None:
        if instance.supports_labels:
            instance.process(packet)
            return
        saved = packet.labels
        packet.labels = None
        try:
            instance.process(packet)
        finally:
            packet.labels = saved
