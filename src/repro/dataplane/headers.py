"""Packet-header overhead: label switching vs source routing (Section 8).

The related-work section argues for Switchboard's data-plane encoding:
"Segment Routing and Network Services Headers use source routing for
service chaining.  However, source routing can inflate packet header
sizes, especially when using IPv6 headers or when routing through long
chains of VNFs.  In contrast, Switchboard's data plane uses label
switching whose data plane overhead remains low even for longer chains."

This module makes that argument quantitative with the standard wire
formats:

- **Switchboard**: VXLAN tunnel (outer IPv4 + UDP + VXLAN) + 2 MPLS
  labels (chain id, egress site) -- constant in chain length;
- **NSH**: outer transport + the 8-byte NSH base/service-path header +
  per-hop metadata context (MD type 1: fixed 16 bytes; MD type 2:
  variable, modeled per hop);
- **SRv6**: outer IPv6 + a Segment Routing Header carrying one 16-byte
  IPv6 segment per VNF in the chain -- linear in chain length.
"""

from __future__ import annotations

from dataclasses import dataclass

_IPV4_BYTES = 20
_IPV6_BYTES = 40
_UDP_BYTES = 8
_VXLAN_BYTES = 8
_MPLS_LABEL_BYTES = 4
_NSH_BASE_BYTES = 8
_NSH_MD1_CONTEXT_BYTES = 16
_SRH_FIXED_BYTES = 8
_SEGMENT_BYTES = 16


class HeaderModelError(Exception):
    """Raised on invalid chain lengths."""


def _check(chain_length: int) -> None:
    if chain_length < 0:
        raise HeaderModelError(f"negative chain length {chain_length}")


def switchboard_overhead_bytes(chain_length: int) -> int:
    """VXLAN tunnel plus the two labels -- independent of chain length.

    (The forwarder at each hop rewrites labels in place; no per-hop
    state rides in the packet.)
    """
    _check(chain_length)
    return _IPV4_BYTES + _UDP_BYTES + _VXLAN_BYTES + 2 * _MPLS_LABEL_BYTES


def nsh_overhead_bytes(chain_length: int, md_type: int = 1) -> int:
    """Network Service Header over a VXLAN-GPE-style transport.

    MD type 1 carries a fixed 16-byte context; MD type 2 is modeled as
    4 bytes of per-hop metadata (a TLV per service function).
    """
    _check(chain_length)
    transport = _IPV4_BYTES + _UDP_BYTES + _VXLAN_BYTES
    if md_type == 1:
        return transport + _NSH_BASE_BYTES + _NSH_MD1_CONTEXT_BYTES
    if md_type == 2:
        return transport + _NSH_BASE_BYTES + 4 * chain_length
    raise HeaderModelError(f"unknown NSH MD type {md_type}")


def srv6_overhead_bytes(chain_length: int) -> int:
    """IPv6 + Segment Routing Header with one segment per VNF.

    The segment list is the full source route, so the header grows by
    16 bytes per chain hop -- the inflation the paper calls out.
    """
    _check(chain_length)
    segments = max(1, chain_length)
    return _IPV6_BYTES + _SRH_FIXED_BYTES + _SEGMENT_BYTES * segments


@dataclass(frozen=True)
class OverheadComparison:
    """Overheads for one chain length, with goodput efficiency."""

    chain_length: int
    switchboard_bytes: int
    nsh_bytes: int
    srv6_bytes: int

    def efficiency(self, payload_bytes: int) -> dict[str, float]:
        """Payload share of the wire bytes for each encoding."""
        if payload_bytes <= 0:
            raise HeaderModelError(f"non-positive payload {payload_bytes}")
        return {
            "switchboard": payload_bytes / (payload_bytes + self.switchboard_bytes),
            "nsh": payload_bytes / (payload_bytes + self.nsh_bytes),
            "srv6": payload_bytes / (payload_bytes + self.srv6_bytes),
        }


def compare_overheads(chain_length: int) -> OverheadComparison:
    """Header overheads of the three encodings for one chain length."""
    return OverheadComparison(
        chain_length,
        switchboard_overhead_bytes(chain_length),
        nsh_overhead_bytes(chain_length),
        srv6_overhead_bytes(chain_length),
    )
