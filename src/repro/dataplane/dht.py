"""DHT-replicated flow tables for forwarder elasticity and fault tolerance.

Section 5.3: "We are developing a solution that supports elastic scaling
and fault tolerance of forwarders by maintaining the flow table as a
replicated distributed hash table across forwarder nodes."  The paper
defers the design; this module implements the natural one:

- flow keys are placed on a **consistent-hash ring** of forwarder nodes
  (virtual nodes smooth the distribution);
- each entry is stored on the owner plus the next ``replication - 1``
  distinct successors;
- a forwarder that misses locally performs a (counted) remote lookup at
  the key's owner, so any forwarder can recover any connection's state;
- when a node joins or leaves, only the entries whose ownership moved
  are re-replicated, and no entry is lost while at most
  ``replication - 1`` nodes fail together.

This is what lets a VNF instance be remapped to a different forwarder
without violating flow affinity: the new forwarder finds the
connection's established next/prev hops in the DHT.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.dataplane.flowtable import FlowEntry, FlowKey
from repro.dataplane.labels import FiveTuple, Labels


class DhtError(Exception):
    """Raised on invalid DHT configuration or use."""


def _hash(value: str) -> int:
    return int.from_bytes(hashlib.sha1(value.encode()).digest()[:8], "big")


def _key_token(labels: Labels, flow: FiveTuple) -> str:
    return (
        f"{labels.chain}/{labels.egress_site}/{flow.src_ip}:{flow.src_port}/"
        f"{flow.dst_ip}:{flow.dst_port}/{flow.protocol}"
    )


@dataclass
class DhtStats:
    """Counters for lookups and maintenance traffic."""

    local_hits: int = 0
    remote_hits: int = 0
    misses: int = 0
    stores: int = 0
    transferred_entries: int = 0


class ConsistentHashRing:
    """A consistent-hash ring with virtual nodes."""

    def __init__(self, virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise DhtError("need at least one virtual node per member")
        self.virtual_nodes = virtual_nodes
        self._points: list[tuple[int, str]] = []
        self._members: set[str] = set()

    @property
    def members(self) -> list[str]:
        return sorted(self._members)

    def add(self, member: str) -> None:
        if member in self._members:
            raise DhtError(f"member {member!r} already on the ring")
        self._members.add(member)
        for v in range(self.virtual_nodes):
            point = (_hash(f"{member}#{v}"), member)
            bisect.insort(self._points, point)

    def remove(self, member: str) -> None:
        if member not in self._members:
            raise DhtError(f"member {member!r} not on the ring")
        self._members.discard(member)
        self._points = [(h, m) for h, m in self._points if m != member]

    def owners(self, token: str, count: int) -> list[str]:
        """The first ``count`` distinct members clockwise from the token."""
        if not self._points:
            return []
        count = min(count, len(self._members))
        start = bisect.bisect_left(self._points, (_hash(token), ""))
        owners: list[str] = []
        index = start
        while len(owners) < count:
            _h, member = self._points[index % len(self._points)]
            if member not in owners:
                owners.append(member)
            index += 1
        return owners


class ReplicatedFlowTable:
    """Flow-table entries replicated over a forwarder ring.

    Each participating forwarder holds a shard (``_shards[node]``); the
    table object coordinates placement and rebalancing.  ``lookup`` takes
    the querying node so local vs remote hits are accounted the way the
    data plane would experience them.
    """

    def __init__(self, replication: int = 2, virtual_nodes: int = 64):
        if replication < 1:
            raise DhtError("replication factor must be >= 1")
        self.replication = replication
        self.ring = ConsistentHashRing(virtual_nodes)
        self._shards: dict[str, dict[FlowKey, FlowEntry]] = {}
        self.stats = DhtStats()

    # -- membership -----------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return self.ring.members

    def join(self, node: str) -> None:
        """Add a forwarder node and rebalance affected entries to it."""
        self.ring.add(node)
        self._shards.setdefault(node, {})
        self._rebalance()

    def leave(self, node: str) -> None:
        """Gracefully remove a node, transferring its entries first."""
        if node not in self._shards:
            raise DhtError(f"unknown node {node!r}")
        departing = self._shards.pop(node)
        self.ring.remove(node)
        for key, entry in departing.items():
            self._store(key, entry, count_stats=False)
            self.stats.transferred_entries += 1
        self._rebalance()

    def fail(self, node: str) -> None:
        """Crash-remove a node: its shard is lost; replicas must cover."""
        if node not in self._shards:
            raise DhtError(f"unknown node {node!r}")
        del self._shards[node]
        self.ring.remove(node)
        self._rebalance()

    # -- data path --------------------------------------------------------

    def insert(self, labels: Labels, flow: FiveTuple) -> FlowEntry:
        """Insert (or fetch) the entry for a connection."""
        key = FlowKey(labels, flow)
        existing = self._find(key)
        if existing is not None:
            return existing
        entry = FlowEntry()
        self._store(key, entry)
        return entry

    def lookup(
        self, querying_node: str, labels: Labels, flow: FiveTuple
    ) -> FlowEntry | None:
        """Look a connection up from a given forwarder's perspective."""
        key = FlowKey(labels, flow)
        shard = self._shards.get(querying_node)
        if shard is not None and key in shard:
            self.stats.local_hits += 1
            return shard[key]
        entry = self._find(key)
        if entry is not None:
            self.stats.remote_hits += 1
            # Cache at the querying node (read-repair style) so later
            # packets of the flow hit locally.
            if shard is not None:
                shard[key] = entry
            return entry
        self.stats.misses += 1
        return None

    def remove(self, labels: Labels, flow: FiveTuple) -> bool:
        key = FlowKey(labels, flow)
        removed = False
        for shard in self._shards.values():
            removed = shard.pop(key, None) is not None or removed
        return removed

    def alias(self, labels: Labels, flow: FiveTuple, entry: FlowEntry) -> FlowEntry:
        """Register an additional key for an existing entry (NAT rewrites)."""
        key = FlowKey(labels, flow)
        existing = self._find(key)
        if existing is not None:
            return existing
        self._store(key, entry)
        return entry

    def __len__(self) -> int:
        return len(set(self._iter_keys()))

    def entries_at(self, node: str) -> int:
        """Number of entries (including replicas) stored at a node."""
        return len(self._shards.get(node, {}))

    # -- internals -----------------------------------------------------------

    def _iter_keys(self) -> Iterator[FlowKey]:
        for shard in self._shards.values():
            yield from shard

    def _owners(self, key: FlowKey) -> list[str]:
        token = _key_token(key.labels, key.flow)
        return self.ring.owners(token, self.replication)

    def _find(self, key: FlowKey) -> FlowEntry | None:
        for node in self._owners(key):
            entry = self._shards.get(node, {}).get(key)
            if entry is not None:
                return entry
        # Fall back to any replica (covers entries not yet rebalanced).
        for shard in self._shards.values():
            if key in shard:
                return shard[key]
        return None

    def _store(self, key: FlowKey, entry: FlowEntry, count_stats: bool = True) -> None:
        owners = self._owners(key)
        if not owners:
            raise DhtError("cannot store: no nodes on the ring")
        for node in owners:
            self._shards[node][key] = entry
        if count_stats:
            self.stats.stores += 1

    def _rebalance(self) -> None:
        """Re-replicate every entry onto its current owner set."""
        if not self._shards:
            return
        seen: dict[FlowKey, FlowEntry] = {}
        for shard in self._shards.values():
            for key, entry in shard.items():
                seen.setdefault(key, entry)
        for key, entry in seen.items():
            owners = self._owners(key)
            for node in owners:
                if key not in self._shards[node]:
                    self._shards[node][key] = entry
                    self.stats.transferred_entries += 1


class DhtFlowTableView:
    """A per-forwarder view of a :class:`ReplicatedFlowTable`.

    Exposes the same ``lookup`` / ``insert`` / ``alias`` / ``remove``
    surface as :class:`~repro.dataplane.flowtable.FlowTable`, so a
    :class:`~repro.dataplane.forwarder.Forwarder` can be constructed
    with a DHT-backed table transparently.  The view records which node
    is querying, which drives the local/remote hit accounting.
    """

    def __init__(self, table: ReplicatedFlowTable, node: str):
        self.table = table
        self.node = node
        if node not in table.nodes:
            table.join(node)

    def lookup(self, labels: Labels, flow: FiveTuple) -> FlowEntry | None:
        return self.table.lookup(self.node, labels, flow)

    def insert(self, labels: Labels, flow: FiveTuple) -> FlowEntry:
        return self.table.insert(labels, flow)

    def alias(self, labels: Labels, flow: FiveTuple, entry: FlowEntry) -> FlowEntry:
        return self.table.alias(labels, flow, entry)

    def remove(self, labels: Labels, flow: FiveTuple) -> bool:
        return self.table.remove(labels, flow)

    def __len__(self) -> int:
        return self.table.entries_at(self.node)

    def __iter__(self) -> Iterator[FlowKey]:
        return iter(self.table._shards.get(self.node, {}))


@dataclass
class DhtForwarderGroup:
    """Convenience wrapper binding forwarder names to one replicated table.

    The Figure 5 deployment pattern: all forwarders at a site (or a
    region) share one DHT so that elastic scaling and failures do not
    break flow affinity or symmetric return.
    """

    table: ReplicatedFlowTable = field(
        default_factory=lambda: ReplicatedFlowTable(replication=2)
    )

    def add_forwarder(self, name: str) -> None:
        self.table.join(name)

    def remove_forwarder(self, name: str, graceful: bool = True) -> None:
        if graceful:
            self.table.leave(name)
        else:
            self.table.fail(name)
