"""End-to-end testbed model for the Figure 10/11 experiments.

The paper's end-to-end comparisons run TCP traffic over two-site
testbeds (AWS with 150 ms inter-site RTT; a private cloud with 80 ms).
What determines the published numbers is (a) which VNF instances each
scheme's routing shares or saturates, (b) the wide-area RTT of each
route, (c) queueing delay at saturated instances, and (d) TCP's
throughput sensitivity to RTT and loss on wide-area paths.  This module
models exactly those four effects:

- routes receive **max-min fair** shares of every VNF instance capacity
  they traverse (progressive filling), additionally capped by their
  offered demand and by the Mathis TCP bound ``1.22 * MSS / (RTT *
  sqrt(loss))`` when a lossy wide-area hop is on the path;
- route RTT adds M/M/1-style queueing delay at each VNF instance as its
  utilization approaches 1.

The same model evaluates both phases of the Figure 10 dynamic-route
experiment (one route, then two).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class E2EError(Exception):
    """Raised on invalid testbed construction."""


_MSS_BYTES = 1460
_MATHIS_CONSTANT = 1.22


@dataclass
class VnfInstanceSpec:
    """A VNF instance in the testbed with a processing capacity in Mbps."""

    name: str
    site: str
    capacity_mbps: float

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise E2EError(f"instance {self.name!r}: non-positive capacity")


@dataclass
class E2ERoute:
    """One chain route: an ordered list of sites with the VNF instances
    visited along the way, plus the route's offered demand."""

    name: str
    sites: list[str]
    instances: list[str]
    demand_mbps: float

    def __post_init__(self) -> None:
        if len(self.sites) < 2:
            raise E2EError(f"route {self.name!r}: needs ingress and egress")
        if self.demand_mbps <= 0:
            raise E2EError(f"route {self.name!r}: non-positive demand")


@dataclass
class RouteMetrics:
    """Evaluated performance of one route."""

    throughput_mbps: float
    rtt_ms: float
    bottleneck: str | None


@dataclass
class E2EResult:
    """Evaluated performance of the whole testbed."""

    routes: dict[str, RouteMetrics]
    utilization: dict[str, float] = field(default_factory=dict)

    @property
    def total_throughput_mbps(self) -> float:
        return sum(m.throughput_mbps for m in self.routes.values())

    @property
    def mean_rtt_ms(self) -> float:
        """Throughput-weighted mean RTT across routes."""
        total = self.total_throughput_mbps
        if total <= 0:
            return float("inf")
        return (
            sum(m.throughput_mbps * m.rtt_ms for m in self.routes.values()) / total
        )


class E2ETestbed:
    """A small wide-area testbed: sites, RTTs, instances, and routes."""

    def __init__(
        self,
        rtt_ms: dict[tuple[str, str], float],
        service_ms: float = 0.5,
        max_queue_ms: float = 25.0,
    ):
        self._rtt: dict[tuple[str, str], float] = {}
        for (a, b), rtt in rtt_ms.items():
            if rtt < 0:
                raise E2EError(f"negative RTT for ({a}, {b})")
            self._rtt[(a, b)] = rtt
            self._rtt[(b, a)] = rtt
        self.service_ms = service_ms
        self.max_queue_ms = max_queue_ms
        self.instances: dict[str, VnfInstanceSpec] = {}
        self.routes: dict[str, E2ERoute] = {}
        self.loss: dict[tuple[str, str], float] = {}

    # -- construction -----------------------------------------------------

    def add_instance(self, spec: VnfInstanceSpec) -> None:
        if spec.name in self.instances:
            raise E2EError(f"duplicate instance {spec.name!r}")
        self.instances[spec.name] = spec

    def set_loss(self, a: str, b: str, loss_rate: float) -> None:
        """Configure a packet-loss rate on the wide-area path a<->b."""
        if not 0 <= loss_rate < 1:
            raise E2EError(f"loss rate out of range: {loss_rate}")
        self.loss[(a, b)] = loss_rate
        self.loss[(b, a)] = loss_rate

    def add_route(self, route: E2ERoute) -> None:
        if route.name in self.routes:
            raise E2EError(f"duplicate route {route.name!r}")
        for inst in route.instances:
            if inst not in self.instances:
                raise E2EError(f"route {route.name!r}: unknown instance {inst!r}")
        for a, b in zip(route.sites, route.sites[1:]):
            if a != b and (a, b) not in self._rtt:
                raise E2EError(f"route {route.name!r}: no RTT for ({a}, {b})")
        self.routes[route.name] = route

    def remove_route(self, name: str) -> None:
        self.routes.pop(name, None)

    # -- helpers --------------------------------------------------------------

    def rtt(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        return self._rtt[(a, b)]

    def base_rtt(self, route: E2ERoute) -> float:
        """Propagation RTT of a route (no queueing)."""
        return sum(self.rtt(a, b) for a, b in zip(route.sites, route.sites[1:]))

    def path_loss(self, route: E2ERoute) -> float:
        """Aggregate loss probability across the route's lossy hops."""
        keep = 1.0
        for a, b in zip(route.sites, route.sites[1:]):
            keep *= 1.0 - self.loss.get((a, b), 0.0)
        return 1.0 - keep

    def tcp_cap_mbps(self, route: E2ERoute) -> float:
        """Mathis bound for the route, or +inf without loss."""
        loss = self.path_loss(route)
        rtt_s = self.base_rtt(route) / 1e3
        if loss <= 0 or rtt_s <= 0:
            return float("inf")
        bps = _MATHIS_CONSTANT * _MSS_BYTES * 8 / (rtt_s * loss**0.5)
        return bps / 1e6

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self) -> E2EResult:
        """Allocate max-min fair throughput and compute per-route RTTs.

        The allocation is a vectorized water-filling over numpy
        route/instance incidence arrays: each round computes the largest
        uniform increment over all active routes at once, then freezes
        every route bound by the binding instance (or its own cap) in one
        mask operation.  ``evaluate_reference`` keeps the original scalar
        progressive-filling loop for equivalence testing.
        """
        route_names = list(self.routes)
        inst_names = list(self.instances)
        n_routes = len(route_names)
        n_inst = len(inst_names)
        if n_routes == 0:
            return E2EResult({}, {name: 0.0 for name in inst_names})

        inst_index = {name: i for i, name in enumerate(inst_names)}
        route_list = list(self.routes.values())
        demands = np.array([route.demand_mbps for route in route_list])
        caps = np.array(
            [
                min(route.demand_mbps, self.tcp_cap_mbps(route))
                for route in route_list
            ]
        )
        # membership[i, j] = 1.0 if instance i is on route j; occurrence
        # counts multiplicity (a route may visit an instance twice).
        membership = np.zeros((n_inst, n_routes))
        occurrences = np.zeros((n_inst, n_routes))
        for j, route in enumerate(route_list):
            for inst_name in route.instances:
                i = inst_index[inst_name]
                membership[i, j] = 1.0
                occurrences[i, j] += 1.0

        capacity = np.array(
            [spec.capacity_mbps for spec in self.instances.values()]
        )
        residual = capacity.copy()
        rates = np.zeros(n_routes)
        active = np.ones(n_routes, dtype=bool)
        bottleneck: list[str | None] = [None] * n_routes

        while active.any():
            active_f = active.astype(float)
            # Largest uniform increment before a route cap binds.
            increment = float(np.min(caps[active] - rates[active]))
            binding = -1
            if n_inst:
                users = membership @ active_f
                inst_increment = np.full(n_inst, np.inf)
                np.divide(
                    residual, users, out=inst_increment, where=users > 0.0
                )
                tightest = float(inst_increment.min())
                # Strict < replicates the scalar tie-break: a route cap
                # that ties an instance wins, and the first instance (in
                # insertion order) achieving the minimum is the binder.
                if tightest < increment:
                    increment = tightest
                    binding = int(np.argmin(inst_increment))
            increment = max(0.0, increment)

            rates[active] += increment
            residual -= increment * (occurrences @ active_f)
            # Clamp: repeated subtraction may drift a fully used instance
            # a few ulps below zero, which would report utilization > 1.
            np.maximum(residual, 0.0, out=residual)

            if binding < 0:
                # A route cap bound first: freeze every route at its cap.
                hit = active & (rates >= caps - 1e-9)
                for j in np.flatnonzero(hit):
                    bottleneck[j] = "tcp" if caps[j] < demands[j] else "demand"
            else:
                hit = active & (membership[binding] > 0.0)
                for j in np.flatnonzero(hit):
                    bottleneck[j] = inst_names[binding]
            active &= ~hit

        utilization_arr = np.divide(
            capacity - residual,
            capacity,
            out=np.zeros(n_inst),
            where=capacity > 0.0,
        )
        assert np.all(residual >= 0.0), "residual capacity drifted negative"
        assert np.all(utilization_arr <= 1.0), "instance utilization above 1"
        utilization = dict(zip(inst_names, utilization_arr.tolist()))

        queue_delay = np.array(
            [2.0 * self._queue_delay(u) for u in utilization_arr]
        )
        base_rtts = np.array([self.base_rtt(route) for route in route_list])
        rtts = base_rtts + queue_delay @ occurrences
        metrics = {
            name: RouteMetrics(float(rates[j]), float(rtts[j]), bottleneck[j])
            for j, name in enumerate(route_names)
        }
        return E2EResult(metrics, utilization)

    def evaluate_reference(self) -> E2EResult:
        """Scalar reference for :meth:`evaluate` (progressive filling).

        Kept as the ground truth the vectorized allocator is
        property-tested against; do not use on hot paths.
        """
        caps = {
            name: min(route.demand_mbps, self.tcp_cap_mbps(route))
            for name, route in self.routes.items()
        }
        rates = {name: 0.0 for name in self.routes}
        frozen: set[str] = set()
        bottleneck: dict[str, str | None] = {name: None for name in self.routes}
        residual = {name: spec.capacity_mbps for name, spec in self.instances.items()}

        while len(frozen) < len(self.routes):
            active = [name for name in self.routes if name not in frozen]
            # Largest uniform increment before a route cap or an instance
            # capacity binds.
            increment = min(caps[name] - rates[name] for name in active)
            binding_instance = None
            for inst_name, left in residual.items():
                users = [
                    r for r in active
                    if inst_name in self.routes[r].instances
                ]
                if not users:
                    continue
                inst_increment = left / len(users)
                if inst_increment < increment:
                    increment = inst_increment
                    binding_instance = inst_name
            increment = max(0.0, increment)

            for name in active:
                rates[name] += increment
                for inst_name in self.routes[name].instances:
                    residual[inst_name] = max(
                        0.0, residual[inst_name] - increment
                    )

            if binding_instance is None:
                # A route cap bound first: freeze every route at its cap.
                for name in active:
                    if rates[name] >= caps[name] - 1e-9:
                        frozen.add(name)
                        bottleneck[name] = (
                            "tcp"
                            if caps[name] < self.routes[name].demand_mbps
                            else "demand"
                        )
            else:
                for name in active:
                    if binding_instance in self.routes[name].instances:
                        frozen.add(name)
                        bottleneck[name] = binding_instance

        utilization = {
            name: (spec.capacity_mbps - residual[name]) / spec.capacity_mbps
            for name, spec in self.instances.items()
        }
        metrics = {}
        for name, route in self.routes.items():
            rtt = self.base_rtt(route)
            for inst_name in route.instances:
                rtt += 2 * self._queue_delay(utilization[inst_name])
            metrics[name] = RouteMetrics(rates[name], rtt, bottleneck[name])
        return E2EResult(metrics, utilization)

    def _queue_delay(self, utilization: float) -> float:
        u = min(utilization, 0.999)
        delay = self.service_ms * u / (1.0 - u)
        return min(delay, self.max_queue_ms)
