"""Weighted load-balancing rules and hierarchical weights (Section 5.2).

A forwarder installs, per (chain label, egress label):

1. a rule over the VNF instances it fronts at its site,
2. a rule over the forwarders adjoining the *next* VNF in the chain,
3. a rule over the forwarders adjoining the *previous* VNF.

Weights are hierarchical: the product of the site-level traffic-
engineering fraction (the ``x_{c z n1 n2}`` variable) with the weight of
the instance or forwarder at that site.  A VNF instance publishes its own
weight on the message bus; a forwarder's weight is the sum of the weights
of the VNF instances it fronts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping


class RuleError(Exception):
    """Raised on malformed load-balancing rules."""


class WeightedChoice:
    """A weighted set of targets with deterministic selection.

    Selection uses an explicit ``random.Random`` so experiments are
    reproducible; weights of zero make a target ineligible without
    removing it from the rule.
    """

    def __init__(self, weights: Mapping[str, float] | None = None):
        self._weights: dict[str, float] = {}
        if weights:
            for target, weight in weights.items():
                self.set_weight(target, weight)

    def set_weight(self, target: str, weight: float) -> None:
        if weight < 0:
            raise RuleError(f"negative weight for {target!r}")
        self._weights[target] = float(weight)

    def remove(self, target: str) -> None:
        self._weights.pop(target, None)

    @property
    def targets(self) -> list[str]:
        return list(self._weights)

    @property
    def total_weight(self) -> float:
        return sum(self._weights.values())

    def weight(self, target: str) -> float:
        return self._weights.get(target, 0.0)

    def pick(self, rng: random.Random) -> str:
        """Pick a target with probability proportional to its weight."""
        total = self.total_weight
        if total <= 0:
            raise RuleError("no eligible targets (all weights zero)")
        point = rng.uniform(0.0, total)
        acc = 0.0
        chosen = None
        for target, weight in self._weights.items():
            if weight <= 0:
                continue
            acc += weight
            chosen = target
            if point <= acc:
                break
        assert chosen is not None
        return chosen

    def distribution(self) -> dict[str, float]:
        """Normalized weights (useful for assertions in tests)."""
        total = self.total_weight
        if total <= 0:
            return {}
        return {t: w / total for t, w in self._weights.items() if w > 0}

    def __len__(self) -> int:
        return len(self._weights)

    def __repr__(self) -> str:
        return f"WeightedChoice({self._weights!r})"


@dataclass
class LoadBalancingRule:
    """The three weighted rule sets for one (chain, egress) at a forwarder."""

    local_instances: WeightedChoice = field(default_factory=WeightedChoice)
    next_forwarders: WeightedChoice = field(default_factory=WeightedChoice)
    prev_forwarders: WeightedChoice = field(default_factory=WeightedChoice)


def hierarchical_weights(
    site_fractions: Mapping[str, float],
    instance_weights: Mapping[str, Mapping[str, float]],
) -> dict[str, float]:
    """Combine site-level TE fractions with per-site instance weights.

    ``site_fractions`` maps site -> the TE fraction ``x`` for that site;
    ``instance_weights`` maps site -> {instance: weight}.  The result
    assigns each instance ``site_fraction * instance_weight /
    sum_of_site_instance_weights``, i.e. the product rule of Section 5.2.
    """
    combined: dict[str, float] = {}
    for site, fraction in site_fractions.items():
        if fraction < 0:
            raise RuleError(f"negative site fraction for {site!r}")
        weights = instance_weights.get(site, {})
        total = sum(weights.values())
        if total <= 0:
            continue
        for instance, weight in weights.items():
            if weight < 0:
                raise RuleError(f"negative instance weight for {instance!r}")
            combined[instance] = fraction * weight / total
    return combined


def forwarder_weight(vnf_instance_weights: Mapping[str, float]) -> float:
    """A forwarder's published weight: the sum of the weights of the VNF
    instances it fronts (Section 5.2's example: weight of F2 = weight of
    O1 + weight of O2)."""
    if any(w < 0 for w in vnf_instance_weights.values()):
        raise RuleError("negative VNF instance weight")
    return sum(vnf_instance_weights.values())
