"""The forwarder flow table (Section 3, connection setup time).

Each connection gets two entries at every forwarder it crosses:

- a *next-hop* entry storing the VNF or forwarder instance selected by
  weighted load balancing when the first packet arrived, so later
  packets in the same direction follow the same instances (flow
  affinity);
- a *previous-hop* entry storing where the first packet came from, so
  packets in the reverse direction retrace the same instances in reverse
  order (symmetric return).

Entries are keyed by the connection's labels plus its five-tuple and
survive rule updates: "forwarders allow existing entries to remain until
the completion of a flow and route only new flows on the new routes"
(Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, TYPE_CHECKING

from repro.dataplane.labels import FiveTuple, Labels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class FlowKey:
    """Key of a flow-table entry."""

    labels: Labels
    flow: FiveTuple


@dataclass
class FlowEntry:
    """One direction's state for a connection at one forwarder."""

    next_hop: str | None = None
    prev_hop: str | None = None
    local_instance: str | None = None
    packets: int = 0


class FlowTable:
    """A forwarder's connection table with occupancy statistics."""

    def __init__(
        self,
        max_entries: int | None = None,
        metrics: "MetricsRegistry | None" = None,
        owner: str = "",
    ):
        self._entries: dict[FlowKey, FlowEntry] = {}
        self.max_entries = max_entries
        self.inserts = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Cached live counter handles; None keeps lookup() at two plain
        # attribute increments.
        if metrics is not None:
            self._hit_counter = metrics.counter(
                "flowtable.hits", forwarder=owner
            )
            self._miss_counter = metrics.counter(
                "flowtable.misses", forwarder=owner
            )
        else:
            self._hit_counter = self._miss_counter = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FlowKey]:
        return iter(self._entries)

    def lookup(self, labels: Labels, flow: FiveTuple) -> FlowEntry | None:
        entry = self._entries.get(FlowKey(labels, flow))
        if entry is None:
            self.misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc()
        else:
            self.hits += 1
            if self._hit_counter is not None:
                self._hit_counter.inc()
        return entry

    def insert(self, labels: Labels, flow: FiveTuple) -> FlowEntry:
        """Insert (or return) the entry for a connection.

        When the table is full the oldest entry is evicted (insertion
        order approximates flow age; the DPDK prototype uses an LRU-like
        policy for the same purpose).
        """
        key = FlowKey(labels, flow)
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        if self.max_entries is not None and len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        entry = FlowEntry()
        self._entries[key] = entry
        self.inserts += 1
        return entry

    def alias(self, labels: Labels, flow: FiveTuple, entry: FlowEntry) -> FlowEntry:
        """Map an additional key onto an existing entry.

        Used when a header-rewriting VNF changes a connection's
        five-tuple mid-chain: the forwarder keys the same connection
        state under both the pre- and post-rewrite tuples.  Returns the
        entry now registered under the key (the existing one if the key
        was already mapped).
        """
        key = FlowKey(labels, flow)
        existing = self._entries.get(key)
        if existing is not None:
            return existing
        self._entries[key] = entry
        return entry

    def remove(self, labels: Labels, flow: FiveTuple) -> bool:
        """Remove a completed flow's entry; True if it existed."""
        return self._entries.pop(FlowKey(labels, flow), None) is not None

    def items(self) -> list[tuple[FlowKey, FlowEntry]]:
        """All (key, entry) pairs, oldest first."""
        return list(self._entries.items())

    def adopt(self, key: FlowKey, entry: FlowEntry) -> None:
        """Install an entry transferred from another forwarder (flow
        migration); respects the capacity limit like a fresh insert."""
        if key in self._entries:
            return
        if self.max_entries is not None and len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        self._entries[key] = entry
        self.inserts += 1

    def entries_for_chain(self, chain_label: int) -> list[tuple[FlowKey, FlowEntry]]:
        return [
            (key, entry)
            for key, entry in self._entries.items()
            if key.labels.chain == chain_label
        ]
