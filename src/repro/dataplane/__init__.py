"""Switchboard's data plane (Section 5).

- :mod:`repro.dataplane.labels` -- packets, five-tuples, and the two
  overlay labels (chain id + egress site) applied at the ingress edge.
- :mod:`repro.dataplane.flowtable` -- the per-forwarder flow table with
  the two entries per connection (next hop and previous hop) that give
  flow affinity and symmetric return.
- :mod:`repro.dataplane.rules` -- weighted load-balancing rules and the
  hierarchical weight computation (site-level TE fractions multiplied by
  instance weights).
- :mod:`repro.dataplane.forwarder` -- the forwarder itself plus a
  synchronous :class:`~repro.dataplane.forwarder.DataPlane` driver used
  by the safety-property tests and the dynamic-chaining experiments.
- :mod:`repro.dataplane.perfmodel` -- the OVS and DPDK forwarder
  performance models behind Figures 7 and 8.
- :mod:`repro.dataplane.e2e` -- the end-to-end throughput/latency model
  behind the Figure 10/11 testbed comparisons.
"""

from repro.dataplane.dht import (
    DhtFlowTableView,
    DhtForwarderGroup,
    ReplicatedFlowTable,
)
from repro.dataplane.e2e import E2EResult, E2ERoute, E2ETestbed, VnfInstanceSpec
from repro.dataplane.evaluation import decompose_paths, evaluate_solution
from repro.dataplane.flowtable import FlowTable
from repro.dataplane.headers import compare_overheads
from repro.dataplane.measurement import DemandEstimator, chain_byte_counts
from repro.dataplane.migration import drain_forwarder, migrate_flows
from repro.dataplane.forwarder import DataPlane, Forwarder, VnfInstance
from repro.dataplane.labels import FiveTuple, LabelAllocator, Labels, Packet
from repro.dataplane.perfmodel import DpdkForwarderModel, OvsForwarderModel
from repro.dataplane.rules import LoadBalancingRule, WeightedChoice

__all__ = [
    "DataPlane",
    "DemandEstimator",
    "DhtFlowTableView",
    "DhtForwarderGroup",
    "DpdkForwarderModel",
    "E2EResult",
    "E2ERoute",
    "E2ETestbed",
    "VnfInstanceSpec",
    "FiveTuple",
    "FlowTable",
    "Forwarder",
    "LabelAllocator",
    "Labels",
    "LoadBalancingRule",
    "OvsForwarderModel",
    "Packet",
    "ReplicatedFlowTable",
    "VnfInstance",
    "WeightedChoice",
    "chain_byte_counts",
    "compare_overheads",
    "decompose_paths",
    "drain_forwarder",
    "evaluate_solution",
    "migrate_flows",
]
