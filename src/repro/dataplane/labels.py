"""Packets, five-tuples, and overlay labels.

Section 3: "The first packet in a connection enters at an ingress edge
instance, which affixes two labels to it.  The first label identifies the
customer and its service chain, and the second label identifies the
egress edge site."  The prototype carries these as MPLS labels inside
VXLAN tunnels; here they are plain fields on the simulated packet.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True)
class FiveTuple:
    """The connection key: (src IP, dst IP, protocol, src port, dst port)."""

    src_ip: str
    dst_ip: str
    protocol: str
    src_port: int
    dst_port: int

    def reversed(self) -> "FiveTuple":
        """The same connection seen in the opposite direction."""
        return FiveTuple(
            self.dst_ip, self.src_ip, self.protocol, self.dst_port, self.src_port
        )


@dataclass(frozen=True)
class Labels:
    """The two overlay labels applied by the ingress edge."""

    chain: int
    egress_site: str


@dataclass
class Packet:
    """A simulated packet.

    ``labels`` is None before the ingress edge applies them (and after a
    forwarder strips them for a label-unaware VNF).  ``direction`` is
    'forward' from ingress to egress and 'reverse' on the return path.
    ``trace`` accumulates the names of every element that handled the
    packet -- the conformity and affinity tests assert on it.
    """

    flow: FiveTuple
    direction: str = "forward"
    labels: Labels | None = None
    size_bytes: int = 500
    payload: Any = None
    trace: list[str] = field(default_factory=list)

    def with_labels(self, labels: Labels | None) -> "Packet":
        self.labels = labels
        return self

    def record(self, element: str) -> None:
        self.trace.append(element)

    def copy(self) -> "Packet":
        return replace(self, trace=list(self.trace))


class LabelAllocator:
    """Allocates unique chain labels, as Global Switchboard does when it
    realizes a chain (Section 3, phase 2)."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self._by_chain: dict[str, int] = {}

    def allocate(self, chain_name: str) -> int:
        """Allocate (or return the existing) label for a chain."""
        if chain_name not in self._by_chain:
            self._by_chain[chain_name] = next(self._counter)
        return self._by_chain[chain_name]

    def release(self, chain_name: str) -> None:
        self._by_chain.pop(chain_name, None)

    def lookup(self, chain_name: str) -> int | None:
        return self._by_chain.get(chain_name)
