"""Flow-state migration between forwarders (the OpenNF-style transfer).

Section 5.3: "elastic scaling or failure of a forwarder may remap a VNF
instance to another forwarder, violating flow affinity.  To safely
change the VNF-to-forwarder mapping, flow table entries can be
transferred across forwarders using recent proposals such as OpenNF."

:func:`migrate_flows` implements the loss-free half of that proposal for
the simulated data plane: matching flow-table entries (optionally
filtered by chain) move from a source forwarder to a destination,
together with the VNF instances the entries reference, so that existing
connections keep their instance bindings when the fleet is resized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataplane.forwarder import Forwarder, ForwardingError


class MigrationError(Exception):
    """Raised when a flow migration cannot be performed safely."""


@dataclass
class MigrationReport:
    """Outcome of one migration."""

    entries_moved: int
    instances_moved: list[str]


def migrate_flows(
    src: Forwarder,
    dst: Forwarder,
    chain_label: int | None = None,
    move_instances: bool = True,
) -> MigrationReport:
    """Transfer flow state (and instance attachments) from src to dst.

    Entries whose ``local_instance`` refers to an instance attached at
    the source are only safe to move if the instance itself moves (or is
    already attached at the destination); with ``move_instances=False``
    such entries raise :class:`MigrationError` instead of silently
    breaking affinity.

    Both forwarders must be at the same site -- a VNF instance and its
    forwarder share an L2 domain (Section 5.1).
    """
    if src.site != dst.site:
        raise MigrationError(
            f"cannot migrate across sites ({src.site!r} -> {dst.site!r}): "
            "VNF instances and forwarders share an L2 domain"
        )
    if not hasattr(src.flow_table, "items"):
        raise MigrationError(
            "source flow table does not support enumeration (DHT-backed "
            "tables do not need migration)"
        )

    selected = [
        (key, entry)
        for key, entry in src.flow_table.items()
        if chain_label is None or key.labels.chain == chain_label
    ]

    needed_instances: set[str] = set()
    for _key, entry in selected:
        if entry.local_instance and entry.local_instance in src.attached:
            if entry.local_instance not in dst.attached:
                needed_instances.add(entry.local_instance)
    if needed_instances and not move_instances:
        raise MigrationError(
            f"entries reference instances not attached at {dst.name!r}: "
            f"{sorted(needed_instances)}"
        )

    moved_instances: list[str] = []
    for name in sorted(needed_instances):
        instance = src.attached[name]
        src.detach(name)
        try:
            dst.attach(instance)
        except ForwardingError as exc:  # pragma: no cover - site checked above
            raise MigrationError(str(exc)) from exc
        moved_instances.append(name)

    for key, entry in selected:
        dst.flow_table.adopt(key, entry)
        src.flow_table.remove(key.labels, key.flow)

    return MigrationReport(len(selected), moved_instances)


def drain_forwarder(
    src: Forwarder,
    dst: Forwarder,
) -> MigrationReport:
    """Fully evacuate a forwarder before decommissioning it: move every
    flow entry, every attached instance, and every rule."""
    report = migrate_flows(src, dst, chain_label=None, move_instances=True)
    # Any instances without active flows still need a forwarder.
    for name in list(src.attached):
        instance = src.attached[name]
        src.detach(name)
        if name not in dst.attached:
            dst.attach(instance)
            report.instances_moved.append(name)
    for (chain_label, egress_site), rule in src.rules.items():
        if (chain_label, egress_site) not in dst.rules:
            dst.install_rule(chain_label, egress_site, rule)
    src.rules.clear()
    return report
