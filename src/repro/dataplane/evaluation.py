"""Evaluate any routing solution on the E2E performance model.

The Figure 11 bench hand-builds an :class:`E2ETestbed` from scheme
placements; this module generalizes that into library surface: give it a
:class:`~repro.core.routes.RoutingSolution` (from SB-LP, SB-DP, or a
baseline) plus per-instance capacities, and it constructs the testbed --
one E2E route per (chain, site-path) with demand split by the path's
flow fractions -- and evaluates throughput and RTT under max-min
fairness, queueing, and optional wide-area loss.

Path decomposition: a solution stores per-stage *fractions*; routes for
the E2E model need *paths*.  The standard flow decomposition applies:
repeatedly peel off the path of maximum bottleneck fraction until the
chain's flow is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.routes import RoutingSolution
from repro.dataplane.e2e import E2EResult, E2ERoute, E2ETestbed, VnfInstanceSpec

_EPS = 1e-9


class EvaluationError(Exception):
    """Raised on inconsistent evaluation inputs."""


@dataclass(frozen=True)
class DecomposedPath:
    """One site path carrying a fraction of a chain's demand."""

    chain: str
    sites: tuple[str, ...]
    fraction: float


def decompose_paths(
    solution: RoutingSolution, chain_name: str, max_paths: int = 64
) -> list[DecomposedPath]:
    """Flow decomposition of one chain's stage fractions into paths."""
    model = solution.model
    chain = model.chains[chain_name]
    # Mutable copy of the stage flows.
    residual: list[dict[tuple[str, str], float]] = [
        dict(solution.stage_flows(chain_name, z))
        for z in range(1, chain.num_stages + 1)
    ]
    paths: list[DecomposedPath] = []
    for _ in range(max_paths):
        # Greedy widest path through the residual stage graph.
        path = [chain.ingress]
        amounts: list[float] = []
        ok = True
        for flows in residual:
            current = path[-1]
            candidates = {
                dst: frac
                for (src, dst), frac in flows.items()
                if src == current and frac > _EPS
            }
            if not candidates:
                ok = False
                break
            dst, _ = max(candidates.items(), key=lambda kv: (kv[1], kv[0]))
            amounts.append(candidates[dst])
            path.append(dst)
        if not ok or not amounts:
            break
        take = min(amounts)
        for z, (src, dst) in enumerate(zip(path, path[1:])):
            residual[z][(src, dst)] -= take
        paths.append(DecomposedPath(chain_name, tuple(path), take))
        if all(
            frac <= _EPS for flows in residual for frac in flows.values()
        ):
            break
    return paths


def evaluate_solution(
    solution: RoutingSolution,
    instance_capacity_mbps: float,
    demand_unit_mbps: float = 1.0,
    rtt_scale: float = 2.0,
    loss_per_wan_hop: float = 0.0,
    min_wan_latency_ms: float = 1.0,
) -> E2EResult:
    """Evaluate a TE solution's carried throughput and latency.

    Each (VNF, site) on any path becomes an instance of
    ``instance_capacity_mbps``; each decomposed path becomes an E2E
    route with demand ``fraction * chain demand * demand_unit_mbps``.
    RTTs between sites are ``rtt_scale`` times the model's one-way
    delays; hops longer than ``min_wan_latency_ms`` (one-way) optionally
    carry ``loss_per_wan_hop`` for the TCP bound.
    """
    if instance_capacity_mbps <= 0:
        raise EvaluationError("non-positive instance capacity")
    model = solution.model

    # RTT map over every (endpoint, endpoint) pair used below.
    endpoints = set(model.nodes) | set(model.sites)
    rtt = {}
    for a in endpoints:
        for b in endpoints:
            if a == b:
                continue
            rtt[(a, b)] = rtt_scale * model.site_latency(a, b)
    bed = E2ETestbed(rtt_ms=rtt)
    if loss_per_wan_hop > 0:
        for (a, b), value in rtt.items():
            if value / rtt_scale >= min_wan_latency_ms:
                bed.set_loss(a, b, loss_per_wan_hop)

    created: set[str] = set()
    route_count = 0
    for chain_name, chain in model.chains.items():
        demand = chain.stage_traffic(1) * demand_unit_mbps
        if demand <= 0:
            continue
        for path in decompose_paths(solution, chain_name):
            instances = []
            for position, site in enumerate(path.sites[1:-1], start=1):
                vnf_name = chain.vnf_at(position)
                inst = f"{vnf_name}@{site}"
                if inst not in created:
                    bed.add_instance(
                        VnfInstanceSpec(inst, site, instance_capacity_mbps)
                    )
                    created.add(inst)
                instances.append(inst)
            route_demand = path.fraction * demand
            if route_demand <= _EPS:
                continue
            route_count += 1
            bed.add_route(
                E2ERoute(
                    f"{chain_name}#{route_count}",
                    list(path.sites),
                    instances,
                    route_demand,
                )
            )
    return bed.evaluate()
