"""Demand estimation from forwarder traffic counters (Section 4.1).

"The forward (reverse) traffic for chain c at stage z ... is obtained
based on measurements by Switchboard forwarders for existing chains and
on customer estimates for the initial chain deployment."

Every forwarder keeps per-(chain label, egress site, direction) byte
counters; this module turns epoch-to-epoch counter deltas into smoothed
demand-rate estimates (EWMA) and into the demand factors consumed by
:func:`repro.controller.reoptimize.reoptimize` -- closing the
measure -> estimate -> re-optimize loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dataplane.forwarder import Forwarder


class MeasurementError(Exception):
    """Raised on invalid measurement operations."""


def chain_byte_counts(
    forwarders: Iterable[Forwarder], chain_label: int
) -> dict[str, int]:
    """Total bytes seen for a chain, by direction, at the *ingress-most*
    counting point.

    Every forwarder on the path counts the same packet once, so summing
    across forwarders would multiply-count by path length; instead the
    per-direction maximum over forwarders is the offered volume (the
    ingress forwarder sees all of it; downstream forwarders see at most
    that much after drops).
    """
    totals: dict[str, int] = {"forward": 0, "reverse": 0}
    for fwd in forwarders:
        for (label, _egress, direction), count in fwd.traffic_bytes.items():
            if label != chain_label:
                continue
            totals[direction] = max(totals.get(direction, 0), count)
    return totals


@dataclass
class DemandEstimate:
    """Smoothed per-direction rate estimate for one chain."""

    forward_rate: float = 0.0
    reverse_rate: float = 0.0

    @property
    def total_rate(self) -> float:
        return self.forward_rate + self.reverse_rate


@dataclass
class DemandEstimator:
    """EWMA demand estimator over per-epoch counter snapshots.

    Usage: call :meth:`observe` once per measurement epoch with the
    current cumulative counters; the estimator differences them against
    the previous snapshot and smooths the rates with factor ``alpha``
    (higher alpha reacts faster).
    """

    alpha: float = 0.3
    estimates: dict[int, DemandEstimate] = field(default_factory=dict)
    _previous: dict[int, dict[str, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise MeasurementError(f"alpha out of range: {self.alpha}")

    def observe(
        self,
        forwarders: Iterable[Forwarder],
        chain_labels: Iterable[int],
        epoch_seconds: float,
    ) -> dict[int, DemandEstimate]:
        """Ingest one epoch of counters; returns the updated estimates."""
        if epoch_seconds <= 0:
            raise MeasurementError(f"non-positive epoch {epoch_seconds}")
        forwarders = list(forwarders)
        for label in chain_labels:
            counts = chain_byte_counts(forwarders, label)
            previous = self._previous.get(label, {"forward": 0, "reverse": 0})
            fwd_rate = max(0, counts["forward"] - previous["forward"]) / epoch_seconds
            rev_rate = max(0, counts["reverse"] - previous["reverse"]) / epoch_seconds
            estimate = self.estimates.setdefault(label, DemandEstimate())
            if label in self._previous:
                estimate.forward_rate += self.alpha * (
                    fwd_rate - estimate.forward_rate
                )
                estimate.reverse_rate += self.alpha * (
                    rev_rate - estimate.reverse_rate
                )
            else:
                # First epoch: seed directly rather than smoothing from 0.
                estimate.forward_rate = fwd_rate
                estimate.reverse_rate = rev_rate
            self._previous[label] = counts
        return self.estimates

    def demand_factors(
        self,
        installed: dict[str, tuple[int, float]],
        floor: float = 0.1,
    ) -> dict[str, float]:
        """Demand factors for re-optimization.

        ``installed`` maps chain name -> (label, installed demand in
        bytes/s).  The factor is measured-rate / installed-demand,
        floored (a chain momentarily idle should not be re-routed to
        zero capacity).
        """
        factors = {}
        for name, (label, installed_demand) in installed.items():
            if installed_demand <= 0:
                raise MeasurementError(
                    f"chain {name!r}: non-positive installed demand"
                )
            estimate = self.estimates.get(label)
            if estimate is None:
                continue
            factors[name] = max(floor, estimate.total_rate / installed_demand)
        return factors
