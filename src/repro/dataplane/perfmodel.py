"""Forwarder performance models (Section 5.4, Figures 7 and 8).

The paper measures two forwarder implementations on physical hardware:
an OVS-based forwarder (Figure 7) and a DPDK-based forwarder on Xeon
E5-2470 + 40 GbE (Figure 8).  Neither experiment is runnable here, so we
model the effects that produce the published curves:

- **OVS** (Figure 7): per-packet cost of the pipeline stages.  Relative
  to a plain bridge, the overlay labels (VXLAN+MPLS push/pop) cost
  19-29% of throughput and the flow-affinity learn/match rules a further
  33-44%, with the overhead shrinking as concurrent flows grow (rule
  setup amortizes).  Beyond a few thousand flows the kernel flow cache
  thrashes, which is the "poor scalability" that motivated the DPDK
  rewrite.

- **DPDK** (Figure 8): per-core packet cost equals a base cost plus a
  flow-table lookup penalty paid on CPU-cache misses.  Few flows -> the
  whole table is cache-resident -> ~7 Mpps/core; 512 K flows/core ->
  roughly half the lookups miss -> ~3.5-4 Mpps/core; far beyond the
  cache size the per-core rate settles a bit above 3 Mpps.  Cores scale
  linearly (per-core SR-IOV virtual functions, no shared state).

The constants below are calibrated to the paper's reported endpoints;
the *shapes* (amortization, linear core scaling, cache-miss decay) are
emergent from the model, which is what the Figure 7/8 benches verify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class PerfModelError(Exception):
    """Raised on invalid performance-model inputs."""


def pps_to_gbps(pps: float, packet_bytes: int) -> float:
    """Convert a packet rate to line rate for a given packet size."""
    if packet_bytes <= 0:
        raise PerfModelError(f"non-positive packet size {packet_bytes}")
    return pps * packet_bytes * 8 / 1e9


@dataclass(frozen=True)
class OvsForwarderModel:
    """Throughput model of the OVS-based forwarder.

    ``base_pps`` is the plain-bridge packet rate.  Overheads are
    expressed as fractional throughput reductions; each decays from its
    1-flow value toward its many-flow value with time-constant
    ``amortization_flows`` as per-flow rule setup amortizes.
    """

    base_pps: float = 1.2e6
    label_overhead_high: float = 0.29
    label_overhead_low: float = 0.19
    affinity_overhead_high: float = 0.44
    affinity_overhead_low: float = 0.33
    amortization_flows: float = 15.0
    #: Flow count beyond which the kernel flow cache starts thrashing.
    cache_flows: float = 2000.0
    cache_decay_flows: float = 4000.0

    CONFIGS = ("bridge", "labels", "labels+affinity")

    def label_overhead(self, flows: int) -> float:
        """Fractional throughput cost of VXLAN+MPLS labels at a flow count."""
        return self._decay(
            flows, self.label_overhead_high, self.label_overhead_low
        )

    def affinity_overhead(self, flows: int) -> float:
        """Additional fractional cost of flow-affinity rules."""
        return self._decay(
            flows, self.affinity_overhead_high, self.affinity_overhead_low
        )

    def _decay(self, flows: int, high: float, low: float) -> float:
        if flows < 1:
            raise PerfModelError(f"need at least one flow, got {flows}")
        return low + (high - low) * math.exp(-(flows - 1) / self.amortization_flows)

    def _cache_factor(self, flows: int) -> float:
        if flows <= self.cache_flows:
            return 1.0
        return 1.0 / (1.0 + (flows - self.cache_flows) / self.cache_decay_flows)

    def throughput_pps(self, config: str, flows: int) -> float:
        """Steady-state packet rate for a pipeline config and flow count."""
        if config not in self.CONFIGS:
            raise PerfModelError(
                f"unknown config {config!r}; expected one of {self.CONFIGS}"
            )
        if flows < 1:
            raise PerfModelError(f"need at least one flow, got {flows}")
        pps = self.base_pps * self._cache_factor(flows)
        if config == "bridge":
            return pps
        pps *= 1.0 - self.label_overhead(flows)
        if config == "labels":
            return pps
        # Affinity rules also pay the flow-cache penalty sooner: every
        # connection installs a learn rule, doubling table pressure.
        return pps * (1.0 - self.affinity_overhead(flows)) * self._cache_factor(
            flows * 2
        )


@dataclass(frozen=True)
class DpdkForwarderModel:
    """Throughput/latency model of the DPDK forwarder.

    Per-packet cost on one core: ``base_cost_ns`` on a flow-table cache
    hit, plus ``miss_cost_ns`` on a miss.  The miss probability is the
    fraction of the flow table that does not fit in the core's share of
    CPU cache (uniform traffic over flows, as in the paper's generator).
    """

    base_cost_ns: float = 139.0
    miss_cost_ns: float = 190.0
    cached_entries: int = 256_000
    base_latency_us: float = 30.0
    max_latency_us: float = 1000.0

    def miss_rate(self, flows_per_core: int) -> float:
        if flows_per_core < 0:
            raise PerfModelError(f"negative flow count {flows_per_core}")
        if flows_per_core <= self.cached_entries:
            return 0.0
        return 1.0 - self.cached_entries / flows_per_core

    def per_core_pps(self, flows_per_core: int) -> float:
        """Single-core packet rate at a given flow-table occupancy."""
        cost_ns = self.base_cost_ns + self.miss_rate(flows_per_core) * self.miss_cost_ns
        return 1e9 / cost_ns

    def throughput_pps(self, cores: int, flows_per_core: int) -> float:
        """Aggregate packet rate: cores scale linearly (per-core NIC VFs)."""
        if cores < 1:
            raise PerfModelError(f"need at least one core, got {cores}")
        return cores * self.per_core_pps(flows_per_core)

    def steady_state_pps(self) -> float:
        """Per-core rate when the flow table vastly exceeds the cache."""
        return 1e9 / (self.base_cost_ns + self.miss_cost_ns)

    def latency_us(self, load_fraction: float) -> float:
        """Forwarding latency at a utilization level (M/M/1 queueing on
        top of the base processing latency, capped at the paper's
        observed 1 ms at maximum throughput)."""
        if load_fraction < 0:
            raise PerfModelError(f"negative load {load_fraction}")
        if load_fraction >= 1.0:
            return self.max_latency_us
        queueing = self.base_latency_us * load_fraction / (1.0 - load_fraction)
        return min(self.base_latency_us + queueing, self.max_latency_us)
