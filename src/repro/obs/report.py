"""Plain-text and JSON rendering of a metrics registry.

The text report groups metrics by kind (counters, gauges, histograms)
and appends the span summary -- per-span-name duration percentiles plus
the most recent individual spans indented by nesting depth.  The JSON
form (``registry_to_dict``) is the machine-readable twin, used by
``python -m repro metrics --json`` and by tests.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import Counter, Gauge, Histogram, format_labels
from repro.obs.registry import MetricsRegistry

#: How many individual spans the text report shows (newest last).
SPAN_TAIL = 40


def registry_to_dict(registry: MetricsRegistry) -> dict[str, Any]:
    out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for metric in registry.metrics():
        series = f"{metric.name}{format_labels(metric.labels)}"
        if isinstance(metric, Counter):
            out["counters"][series] = metric.value
        elif isinstance(metric, Gauge):
            out["gauges"][series] = metric.value
        elif isinstance(metric, Histogram):
            out["histograms"][series] = metric.to_dict()
    out["spans"] = [span.to_dict() for span in registry.spans]
    out["spans_dropped"] = registry.spans_dropped
    return out


def registry_to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    def default(value: Any) -> Any:
        if value != value or value in (float("inf"), float("-inf")):
            return None
        return str(value)

    return json.dumps(
        registry_to_dict(registry), indent=indent, default=default,
        allow_nan=False,
    )


def render_report(registry: MetricsRegistry, title: str = "metrics") -> str:
    counters = [m for m in registry.metrics() if isinstance(m, Counter)]
    gauges = [m for m in registry.metrics() if isinstance(m, Gauge)]
    histograms = [m for m in registry.metrics() if isinstance(m, Histogram)]

    lines = [f"== {title} =="]
    if counters:
        lines.append("-- counters --")
        lines.extend(m.render() for m in counters)
    if gauges:
        lines.append("-- gauges --")
        lines.extend(m.render() for m in gauges)
    if histograms:
        lines.append("-- histograms --")
        lines.extend(m.render() for m in histograms)
    if registry.spans:
        lines.append("-- spans (newest last) --")
        for span in registry.spans[-SPAN_TAIL:]:
            indent = "  " * span.depth
            lines.append(
                f"{indent}{span.name}{format_labels(tuple(sorted((k, str(v)) for k, v in span.labels.items())))}"
                f" {span.duration * 1e3:.3f} ms"
            )
        if registry.spans_dropped:
            lines.append(f"({registry.spans_dropped} older spans dropped)")
    return "\n".join(lines) + "\n"
