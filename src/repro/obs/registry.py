"""The metrics registry: one sink for counters, histograms, and spans.

A registry is explicitly *passed* to the subsystems that should report
into it -- there is no global default, so the zero-registry
configuration (every ``metrics`` parameter left ``None``) costs nothing
on hot paths beyond an ``is not None`` check.  That is what keeps the
instrumentation overhead on the Figure 9 benchmark within noise.

The clock is pluggable: ``MetricsRegistry()`` measures wall-clock
seconds (``time.perf_counter``), while
``MetricsRegistry.for_simulator(sim)`` measures *simulated* seconds, so
spans around the two-phase commit report the protocol's wide-area
latency rather than the host CPU time spent simulating it.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, TYPE_CHECKING

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelPairs,
    Metric,
    MetricsError,
    label_pairs,
)
from repro.obs.trace import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simnet.events import Simulator


class MetricsRegistry:
    """Holds every metric and finished span of one experiment run."""

    #: Cap on retained finished spans; beyond it only the histogram
    #: aggregation survives (the cap keeps week-long simulations from
    #: holding every 2PC round in memory).
    MAX_SPANS = 10_000

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock: Callable[[], float] = (
            clock if clock is not None else time.perf_counter
        )
        self._metrics: dict[tuple[str, LabelPairs], Metric] = {}
        self._span_stack: list[Span] = []
        self.spans: list[Span] = []
        self.spans_dropped = 0

    @classmethod
    def for_simulator(cls, sim: "Simulator") -> "MetricsRegistry":
        """A registry whose spans measure simulated time."""
        return cls(clock=lambda: sim.now)

    # -- metric accessors ------------------------------------------------

    def _get(self, factory, name: str, labels: dict[str, object]) -> Metric:
        pairs = label_pairs(labels)
        key = (name, pairs)
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, pairs)
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise MetricsError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- spans -----------------------------------------------------------

    def span(self, name: str, **labels: object) -> Span:
        """Start a nested span (use as a context manager)."""
        return Span(self, name, labels, on_stack=True)

    def start_span(self, name: str, **labels: object) -> Span:
        """Start a detached span (finish it explicitly from a later
        event handler); it never joins the nesting stack."""
        return Span(self, name, labels, on_stack=False)

    def _push_span(self, span: Span) -> None:
        if self._span_stack:
            span.parent = self._span_stack[-1]
            span.depth = span.parent.depth + 1
        self._span_stack.append(span)

    def _pop_span(self, span: Span) -> None:
        # Spans are context-managed, so mismatches indicate a bug in the
        # instrumented code; fail loudly rather than mis-attribute time.
        if not self._span_stack or self._span_stack[-1] is not span:
            raise MetricsError(
                f"span {span.name!r} finished out of order"
            )
        self._span_stack.pop()

    def _record_span(self, span: Span) -> None:
        self.histogram(f"span.{span.name}", **span.labels).observe(
            span.duration
        )
        if len(self.spans) < self.MAX_SPANS:
            self.spans.append(span)
        else:
            self.spans_dropped += 1

    # -- introspection / export ------------------------------------------

    def metrics(self) -> Iterable[Metric]:
        """All metrics, sorted by (name, labels) for stable reports."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def find(self, name: str) -> list[Metric]:
        """Every labelled series registered under ``name``."""
        return [m for (n, _), m in sorted(self._metrics.items()) if n == name]

    def value(self, name: str, **labels: object) -> float:
        """Convenience: current value of a counter/gauge series."""
        metric = self._metrics.get((name, label_pairs(labels)))
        if metric is None:
            raise MetricsError(f"no metric {name!r} with labels {labels}")
        if isinstance(metric, Histogram):
            raise MetricsError(f"{name!r} is a histogram; use find()")
        return metric.value
