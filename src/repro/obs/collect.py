"""Snapshot collectors: fold accumulated subsystem stats into gauges.

Hot paths mostly keep their existing cheap counters (``LinkStats``,
``FlowTable.hits``, ``Forwarder.packets_forwarded`` ...); these
collectors copy those totals into a registry at report time, so a run
gets a complete picture even for subsystems that were not built with a
live registry attached.  Collect is idempotent -- gauges are *set*, not
added -- so calling it repeatedly (e.g. periodically from a simulator
process) just refreshes the snapshot.

Snapshot gauges of cumulative totals carry a ``_total`` suffix so they
never collide with the live counters of the same subsystem (e.g. the
``link.delivered`` counter vs the ``link.delivered_total`` gauge);
point-in-time quantities (``link.in_flight``, ``flowtable.entries``)
keep plain names.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bus.broadcast import FullMeshBus
    from repro.bus.bus import GlobalMessageBus
    from repro.controller.protocol import BusDrivenInstaller
    from repro.dataplane.forwarder import DataPlane
    from repro.federation.coordinator import GlobalCoordinator
    from repro.resilience.failover import FailoverManager
    from repro.resilience.sweeper import ReconciliationSweeper
    from repro.simnet.network import SimNetwork


def collect_network(registry: MetricsRegistry, net: "SimNetwork") -> None:
    """Per-link delivery/drop/backlog gauges from ``LinkStats``."""
    for (src, dst), state in net._links.items():
        link = f"{src}->{dst}"
        stats = state.stats
        registry.gauge("link.sent_total", link=link).set(stats.sent)
        registry.gauge("link.delivered_total", link=link).set(stats.delivered)
        registry.gauge("link.dropped_total", link=link).set(stats.dropped)
        registry.gauge("link.in_flight", link=link).set(stats.in_flight)
        registry.gauge("link.bytes_sent_total", link=link).set(stats.bytes_sent)
        registry.gauge("link.bytes_dropped_total", link=link).set(
            stats.bytes_dropped
        )
        registry.gauge("link.queued_bytes", link=link).set(state.queued_bytes)


def collect_bus(
    registry: MetricsRegistry, bus: "GlobalMessageBus | FullMeshBus"
) -> None:
    """Topology-level pub/sub totals from ``BusStats``."""
    stats = bus.stats
    registry.gauge("bus.published_total").set(stats.published)
    registry.gauge("bus.wan_messages_total").set(stats.wan_messages)
    registry.gauge("bus.wan_drops_total").set(stats.wan_drops)
    registry.gauge("bus.delivered_total").set(stats.delivered)
    latency = registry.histogram("bus.collected_delivery_latency_s")
    for delivery in stats.deliveries:
        latency.observe(delivery.latency)


def collect_resilience(
    registry: MetricsRegistry,
    installer: "BusDrivenInstaller",
    failover: "FailoverManager | None" = None,
    sweeper: "ReconciliationSweeper | None" = None,
) -> None:
    """Control-plane reliability totals: RPC delivery effort, install
    outcomes, and (when running) failover/sweeper activity."""
    rpc = installer.rpc
    registry.gauge("rpc.sent_total").set(rpc.sent)
    registry.gauge("rpc.acked_total").set(rpc.acked)
    registry.gauge("rpc.retries_total").set(rpc.retries)
    registry.gauge("rpc.timeouts_total").set(rpc.timeouts)
    registry.gauge("rpc.duplicates_suppressed_total").set(
        rpc.duplicates_suppressed
    )
    registry.gauge("rpc.outstanding").set(rpc.outstanding())
    registry.gauge("install.deadline_aborts_total").set(
        installer.deadline_aborts
    )
    registry.gauge("install.aborted_total").set(installer.aborted)
    registry.gauge("resilience.inflight_installs").set(
        len(installer._pending)
    )
    if failover is not None:
        registry.gauge("failover.takeovers_total").set(failover.takeovers)
    if sweeper is not None:
        registry.gauge("sweeper.stale_reservations_total").set(
            sweeper.stale_reservations_released
        )
        registry.gauge("sweeper.stalled_installs_total").set(
            sweeper.stalled_installs_aborted
        )


def collect_bench(
    registry: MetricsRegistry, stats_by_suite: "Mapping[str, Any]"
) -> None:
    """Benchmark timing stats as per-suite gauges.

    ``stats_by_suite`` maps suite names to objects with the
    ``repro.bench.stats.SampleStats`` attributes (``n``, ``min``,
    ``max``, ``mean``, ``median``, ``stddev``); duck-typed so ``repro.obs``
    never imports ``repro.bench`` at runtime.  Used by
    ``python -m repro metrics`` to fold its solver micro-bench into the
    report and available to any harness that wants bench numbers next
    to its live counters.
    """
    for suite, stats in stats_by_suite.items():
        registry.gauge("bench.samples", suite=suite).set(stats.n)
        registry.gauge("bench.min_s", suite=suite).set(stats.min)
        registry.gauge("bench.max_s", suite=suite).set(stats.max)
        registry.gauge("bench.mean_s", suite=suite).set(stats.mean)
        registry.gauge("bench.median_s", suite=suite).set(stats.median)
        registry.gauge("bench.stddev_s", suite=suite).set(stats.stddev)


def collect_federation(
    registry: MetricsRegistry,
    coordinator: "GlobalCoordinator",
    failover=None,
    nodes=None,
) -> None:
    """Federated control-plane snapshot gauges.

    Live ``federation.*`` counters (2PC phases, install counts,
    failovers, ledger reconciliations, degraded-mode admissions, the
    ``federation.region_solve_s`` histogram) accumulate on the
    coordinator's own registry when one is attached; this collector
    adds the point-in-time shape of the federation -- shard/border
    structure, installed-chain split, segment population, and border
    ledger occupancy -- so a report is complete even for a coordinator
    built without metrics.

    ``failover`` (a :class:`~repro.federation.ha.FederationFailover`)
    and ``nodes`` (the deployed
    :class:`~repro.federation.nodes.RegionalNode` front ends) add the
    resilience totals: takeovers, reconciliations, degraded-mode intra
    admissions, and the per-region cross-shard queue depth.
    """
    stats = coordinator.stats()
    registry.gauge("federation.regions").set(stats["regions"])
    registry.gauge("federation.borders").set(stats["borders"])
    registry.gauge("federation.chains_intra").set(stats["chains_intra"])
    registry.gauge("federation.chains_cross").set(stats["chains_cross"])
    registry.gauge("federation.cross_shard_ratio").set(
        stats["cross_shard_ratio"]
    )
    for region, regional in sorted(coordinator.regionals.items()):
        registry.gauge("federation.region_chains", region=region).set(
            len(regional.model.chains)
        )
        registry.gauge("federation.region_segments", region=region).set(
            len(regional.committed_segments())
        )
        registry.gauge("federation.region_prepared", region=region).set(
            len(regional.prepared_segments())
        )
    for name, utilization in sorted(
        coordinator.border_utilization().items()
    ):
        registry.gauge("federation.border_utilization", border=name).set(
            utilization
        )
    if failover is not None:
        registry.gauge("federation.failovers_total").set(failover.takeovers)
    reconciliations = getattr(coordinator, "reconciliations", None)
    if reconciliations is not None:
        registry.gauge("federation.ledger_reconciliations_total").set(
            reconciliations
        )
    if nodes is not None:
        total_queued = 0
        total_degraded = 0
        for node in nodes:
            queued = len(node.queued())
            total_queued += queued
            total_degraded += node.degraded_admissions
            registry.gauge(
                "federation.queued_cross_shard", region=node.region
            ).set(queued)
        registry.gauge("federation.queued_cross_shard_total").set(
            total_queued
        )
        registry.gauge("federation.degraded_admissions_total").set(
            total_degraded
        )


def collect_dataplane(registry: MetricsRegistry, dataplane: "DataPlane") -> None:
    """Per-forwarder flow-table and packet gauges."""
    for name, fwd in dataplane.forwarders.items():
        registry.gauge("forwarder.packets_forwarded_total", forwarder=name).set(
            fwd.packets_forwarded
        )
        registry.gauge("forwarder.packets_dropped_total", forwarder=name).set(
            fwd.packets_dropped
        )
        registry.gauge("forwarder.rules", forwarder=name).set(len(fwd.rules))
        table = fwd.flow_table
        registry.gauge("flowtable.entries", forwarder=name).set(len(table))
        registry.gauge("flowtable.hits_total", forwarder=name).set(table.hits)
        registry.gauge("flowtable.misses_total", forwarder=name).set(
            table.misses
        )
        registry.gauge("flowtable.evictions_total", forwarder=name).set(
            table.evictions
        )


def collect_fuzz(registry: MetricsRegistry, report: Any) -> None:
    """Campaign-level gauges from a :class:`repro.scenarios.FuzzReport`.

    Per-case outcomes become labelled gauges so a metrics scrape of a
    nightly fuzz lane can alert on violations without parsing the
    report JSON.
    """
    registry.gauge("fuzz.seed").set(report.seed)
    registry.gauge("fuzz.cases_planned").set(report.cases_planned)
    registry.gauge("fuzz.cases_run").set(report.cases_run)
    registry.gauge("fuzz.budget_exhausted").set(
        1 if report.budget_exhausted else 0
    )
    registry.gauge("fuzz.passed").set(1 if report.passed else 0)
    total_violations = 0
    minimized = 0
    for case in report.cases:
        for stack in case.stacks:
            total_violations += len(stack.violations)
            registry.gauge(
                "fuzz.case_violations", case=case.index, stack=stack.stack
            ).set(len(stack.violations))
        registry.gauge("fuzz.case_workload_ops", case=case.index).set(
            case.workload_ops
        )
        registry.gauge("fuzz.case_fault_events", case=case.index).set(
            case.fault_events
        )
        if case.minimized is not None:
            minimized += 1
            registry.gauge("fuzz.case_minimized_items", case=case.index).set(
                case.minimized["items"]
            )
            registry.gauge(
                "fuzz.case_minimize_replays", case=case.index
            ).set(case.minimized["tests_run"])
    registry.gauge("fuzz.violations_total").set(total_violations)
    registry.gauge("fuzz.cases_minimized_total").set(minimized)
