"""Counters, gauges, and log-linear histograms.

The histogram is HDR-style log-linear: values are bucketed by binary
exponent, with ``SUBBUCKETS`` linear subdivisions per octave, so the
relative quantization error is bounded by ``1 / (2 * SUBBUCKETS)``
(~3% at the default 16) across the full dynamic range.  That is the
standard trick for latency distributions whose interesting mass spans
microseconds to seconds -- exactly the spread between a LAN hop and a
congested WAN uplink in the simulator.

Metrics are identified by ``(name, labels)`` where labels is a sorted
tuple of ``(key, value)`` pairs; the :class:`MetricsRegistry` in
:mod:`repro.obs.registry` interns one instance per identity so hot
paths can cache the handle and skip the registry lookup.
"""

from __future__ import annotations

import math
from typing import Iterator


class MetricsError(Exception):
    """Raised on invalid metric construction or use."""


LabelPairs = tuple[tuple[str, str], ...]


def label_pairs(labels: dict[str, object]) -> LabelPairs:
    """Normalize a labels dict into a hashable, sorted identity."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_labels(labels: LabelPairs) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count (messages, drops, rule installs)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}

    def render(self) -> str:
        value = int(self.value) if self.value == int(self.value) else self.value
        return f"{self.name}{format_labels(self.labels)} {value}"


class Gauge:
    """A value that can go up and down (queue occupancy, table size)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}

    def render(self) -> str:
        value = int(self.value) if self.value == int(self.value) else self.value
        return f"{self.name}{format_labels(self.labels)} {value}"


class Histogram:
    """A log-linear histogram of non-negative values.

    Buckets are keyed by ``(exponent, subbucket)`` flattened into one
    integer; zero (and anything below the smallest representable
    positive float) lands in a dedicated underflow bucket.  Quantiles
    are estimated from bucket midpoints, so they carry the bounded
    ~1/(2*SUBBUCKETS) relative error but never require storing samples.
    """

    SUBBUCKETS = 16

    __slots__ = ("name", "labels", "buckets", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if value < 0 or value != value:  # negative or NaN
            raise MetricsError(
                f"histogram {self.name!r} cannot observe {value!r}"
            )
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @classmethod
    def _index(cls, value: float) -> int:
        if value <= 0.0:
            return -(1 << 30)  # underflow bucket
        mantissa, exponent = math.frexp(value)  # mantissa in [0.5, 1)
        sub = int((mantissa - 0.5) * 2 * cls.SUBBUCKETS)
        return exponent * cls.SUBBUCKETS + sub

    @classmethod
    def _midpoint(cls, index: int) -> float:
        if index == -(1 << 30):
            return 0.0
        exponent, sub = divmod(index, cls.SUBBUCKETS)
        lo = math.ldexp(0.5 + sub / (2 * cls.SUBBUCKETS), exponent)
        hi = math.ldexp(0.5 + (sub + 1) / (2 * cls.SUBBUCKETS), exponent)
        return (lo + hi) / 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100])."""
        if not 0 <= q <= 100:
            raise MetricsError(f"percentile {q} outside [0, 100]")
        if not self.count:
            return math.nan
        # Rank of the target sample, 1-based, clamped to the population.
        rank = max(1, min(self.count, math.ceil(q / 100 * self.count)))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                # Clamp the midpoint estimate to the observed extremes so
                # single-bucket tails cannot report values never seen.
                return min(max(self._midpoint(index), self.min), self.max)
        return self.max

    def quantiles(self) -> dict[str, float]:
        return {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def to_dict(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        out.update(self.quantiles())
        return out

    def render(self) -> str:
        head = f"{self.name}{format_labels(self.labels)}"
        if not self.count:
            return f"{head} count=0"
        q = self.quantiles()
        return (
            f"{head} count={self.count} mean={self.mean:.6g} "
            f"p50={q['p50']:.6g} p90={q['p90']:.6g} p99={q['p99']:.6g} "
            f"min={self.min:.6g} max={self.max:.6g}"
        )


Metric = Counter | Gauge | Histogram


def iter_sorted(metrics: dict[tuple[str, LabelPairs], Metric]) -> Iterator[Metric]:
    for key in sorted(metrics):
        yield metrics[key]
