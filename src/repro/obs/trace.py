"""Lightweight tracing spans over a pluggable clock.

A span measures the duration of one named operation, optionally carrying
labels (``span("2pc.prepare", chain="corp")``).  Spans read time from
whatever clock their registry was built with, so the same code measures
wall-clock seconds in a live benchmark and *simulated* seconds when the
registry's clock is a :class:`~repro.simnet.events.Simulator`'s ``now``.

Two usage styles, matching the two shapes of instrumented code:

- synchronous code nests spans as context managers; the registry keeps
  the active-span stack, so children record their parent automatically;
- event-driven code (the bus-driven 2PC of
  :mod:`repro.controller.protocol`) starts a *detached* span when a
  stage's first message goes out and finishes it from the handler that
  observes the stage complete, possibly many simulated seconds and many
  unrelated events later.

Every finished span also feeds its duration into the histogram
``span.<name>`` on the owning registry, so repeated operations get
percentile summaries for free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import MetricsRegistry


class TraceError(Exception):
    """Raised on invalid span lifecycle transitions."""


class Span:
    """One timed operation.  Created via ``registry.span(...)`` (nested,
    context-manager) or ``registry.start_span(...)`` (detached)."""

    __slots__ = (
        "name", "labels", "registry", "start", "end",
        "parent", "depth", "_on_stack",
    )

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        labels: dict[str, object],
        on_stack: bool,
    ):
        self.registry = registry
        self.name = name
        self.labels = labels
        self.start = registry.clock()
        self.end: float | None = None
        self.parent: Span | None = None
        self.depth = 0
        self._on_stack = on_stack
        if on_stack:
            registry._push_span(self)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise TraceError(f"span {self.name!r} is still open")
        return self.end - self.start

    def finish(self) -> "Span":
        """Close the span, recording its duration.  Not idempotent --
        finishing twice is a lifecycle bug worth surfacing."""
        if self.end is not None:
            raise TraceError(f"span {self.name!r} finished twice")
        self.end = self.registry.clock()
        if self._on_stack:
            self.registry._pop_span(self)
        self.registry._record_span(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": {k: str(v) for k, v in sorted(self.labels.items())},
            "start": self.start,
            "end": self.end,
            "duration": self.duration if self.finished else None,
            "parent": self.parent.name if self.parent else None,
            "depth": self.depth,
        }

    def __repr__(self) -> str:
        state = f"{self.duration:.6g}s" if self.finished else "open"
        return f"Span({self.name!r}, {state})"
