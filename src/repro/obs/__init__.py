"""``repro.obs`` -- simulated-time-aware observability.

The measurement substrate the rest of the repo reports through: a
:class:`MetricsRegistry` holding counters, gauges, and log-linear
histograms; tracing :class:`~repro.obs.trace.Span` objects that nest and
record durations against a pluggable clock (wall or simulated); and a
plain-text/JSON reporter.

Wiring model: every instrumented subsystem takes an optional
``metrics=`` registry and does nothing when it is ``None`` -- there is
deliberately no process-global registry, so experiments compose and the
un-instrumented configuration stays free.  ``python -m repro metrics``
runs a full bus + two-phase-commit experiment against one registry and
prints the report; benchmarks opt in via the ``obs_registry`` fixture in
``benchmarks/_common.py`` (set ``REPRO_METRICS=1``).
"""

from repro.obs.collect import (
    collect_bench,
    collect_bus,
    collect_dataplane,
    collect_federation,
    collect_fuzz,
    collect_network,
    collect_resilience,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.report import registry_to_dict, registry_to_json, render_report
from repro.obs.trace import Span, TraceError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "Span",
    "TraceError",
    "collect_bench",
    "collect_bus",
    "collect_dataplane",
    "collect_federation",
    "collect_fuzz",
    "collect_network",
    "collect_resilience",
    "registry_to_dict",
    "registry_to_json",
    "render_report",
]
