"""Capacity planning: the two planning problems of Sections 4.2-4.3.

**Cloud capacity planning** (Figure 13b): given an additional compute
budget ``A`` to spread across sites, choose per-site additions ``a_s``
maximizing the uniform traffic-scale factor ``alpha`` that the network
can still route.  The paper adapts the chain-routing LP; the bilinear
``alpha * x`` product is linearized by substituting absolute flow
variables ``y = alpha * x``, after which every constraint is linear.

**VNF capacity planning** (Figure 13c): given a number of new sites
``y_f`` for each VNF, choose the placement ``S'_f`` (disjoint from the
existing ``S_f``) minimizing the aggregate weighted latency.  This is the
paper's mixed-integer program with binary placement variables ``w_fs``;
we solve it with ``scipy.optimize.milp`` (HiGHS branch-and-bound).

Baselines used by the Figure 13 benches -- uniform cloud provisioning and
random VNF placement -- live here too so every comparison shares one
implementation of the accounting.
"""

from __future__ import annotations

import random
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, linprog, milp
from scipy.sparse import csc_matrix, csr_matrix

from repro.core import highs as highs_backend
from repro.core.columns import ragged_gather
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.core.routes import RoutingSolution

_EPS = 1e-9


class CapacityPlanningError(Exception):
    """Raised when a planning program cannot be constructed or solved."""


# ---------------------------------------------------------------------------
# Cloud capacity planning
# ---------------------------------------------------------------------------


@dataclass
class CloudCapacityPlan:
    """Result of :func:`plan_cloud_capacity`."""

    alpha: float
    additional: dict[str, float]
    solution: RoutingSolution | None
    solve_seconds: float

    def planned_sites(self, model: NetworkModel) -> list[CloudSite]:
        """Site list with the planned additions applied."""
        return [
            CloudSite(s.name, s.node, s.capacity + self.additional.get(s.name, 0.0))
            for s in model.sites.values()
        ]


# ---------------------------------------------------------------------------
# Columnar assembly with structure caching (mirrors repro.core.lp)
# ---------------------------------------------------------------------------

_KIND_CONST = 0
_KIND_TOTAL = 1  # entry scales with (w_cz + v_cz)
_KIND_FWD = 2  # entry scales with w_cz
_KIND_REV = 3  # entry scales with v_cz


@dataclass
class _CapacityStructure:
    """Cloud-capacity LP structure that survives capacity/demand changes.

    Everything numeric that a budget sweep changes -- site capacities,
    per-site VNF capacities, headroom, the budget itself, and demand
    magnitudes -- is refreshed into the data vector and RHS per call;
    the sparsity pattern and row order are fixed.
    """

    n_flow: int
    n_total: int
    alpha_index: int
    site_names: list[str]  # dict order; site var i = n_flow + i
    # UB block (COO); demand-scaled entries carry a stage row id.
    ub_rows: np.ndarray
    ub_cols: np.ndarray
    ub_base: np.ndarray
    ub_kind: np.ndarray
    ub_stage: np.ndarray
    n_ub: int
    # Relief entries on the (VNF, site) rows: value -cap/site_cap is
    # recomputed from the current model each call.
    relief_rows: np.ndarray
    relief_cols: np.ndarray
    relief_pairs: list[tuple[str, str]]  # (vnf name, site name)
    # EQ block: fully demand-independent, rhs all zero.
    eq_rows: np.ndarray
    eq_cols: np.ndarray
    eq_data: np.ndarray
    n_eq: int
    # RHS refresh descriptors (row -> where the bound comes from).
    site_rows: list[tuple[int, str]]
    vnf_rows: list[tuple[int, str, str]]
    budget_row: int
    link_rows: list[tuple[int, str]]
    # Demand refresh table and extraction arrays.
    stage_key: list[tuple[str, int]]  # (chain name, z) per stage row
    var_stage: np.ndarray
    stage_chain_name: list[str]
    stage_z: np.ndarray
    var_src_name: np.ndarray  # object arrays of endpoint names
    var_dst_name: np.ndarray
    seed_columns: np.ndarray
    cg_solver: object | None = None

    def refreshed_stage_demands(
        self, model: NetworkModel
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        fwd = np.array(
            [model.chains[c].forward_traffic[z - 1] for c, z in self.stage_key]
        )
        rev = np.array(
            [model.chains[c].reverse_traffic[z - 1] for c, z in self.stage_key]
        )
        return fwd, rev, fwd + rev

    def refreshed_ub(
        self, model: NetworkModel, budget: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(rows, cols, data, b_ub) under current capacities/demands."""
        fwd, rev, total = self.refreshed_stage_demands(model)
        data = self.ub_base.copy()
        for kind, scale in (
            (_KIND_TOTAL, total),
            (_KIND_FWD, fwd),
            (_KIND_REV, rev),
        ):
            idx = np.flatnonzero(self.ub_kind == kind)
            if idx.size:
                data[idx] *= scale[self.ub_stage[idx]]
        relief = np.array(
            [
                -model.vnfs[v].site_capacity.get(s, 0.0)
                / model.sites[s].capacity
                for v, s in self.relief_pairs
            ]
        )
        rows = np.concatenate([self.ub_rows, self.relief_rows])
        cols = np.concatenate([self.ub_cols, self.relief_cols])
        data = np.concatenate([data, relief])

        b_ub = np.zeros(self.n_ub)
        for row, site in self.site_rows:
            b_ub[row] = model.sites[site].capacity
        for row, vnf, site in self.vnf_rows:
            b_ub[row] = model.vnfs[vnf].site_capacity.get(site, 0.0)
        b_ub[self.budget_row] = budget
        for row, link_name in self.link_rows:
            link = model.links[link_name]
            b_ub[row] = max(
                0.0, model.mlu_limit * link.bandwidth - link.background
            )
        return rows, cols, data, b_ub


_CAPACITY_CACHE: "OrderedDict[str, _CapacityStructure]" = OrderedDict()
_CAPACITY_CACHE_LIMIT = 16
_CAPACITY_REBUILDS = 0
_CAPACITY_REUSE_HITS = 0


def capacity_cache_stats() -> dict[str, int]:
    return {
        "matrix_reuse_hits": _CAPACITY_REUSE_HITS,
        "matrix_rebuilds": _CAPACITY_REBUILDS,
        "cached_structures": len(_CAPACITY_CACHE),
    }


def clear_capacity_cache() -> None:
    global _CAPACITY_REBUILDS, _CAPACITY_REUSE_HITS
    _CAPACITY_CACHE.clear()
    _CAPACITY_REBUILDS = 0
    _CAPACITY_REUSE_HITS = 0


def _inverse_permutation(rank: np.ndarray) -> np.ndarray:
    out = np.empty(len(rank), dtype=np.int64)
    out[rank] = np.arange(len(rank), dtype=np.int64)
    return out


def _build_capacity_structure(model: NetworkModel) -> _CapacityStructure:
    """Vectorized COO assembly of the cloud-capacity LP.

    Row order replicates the scalar reference: the equality block is
    coverage (chain dict order, with the ``-alpha`` coupling) then flow
    conservation; the inequality block is per-site rows sorted by name,
    (VNF, site) rows sorted by name, the budget row, then link rows
    sorted by name.
    """
    sub = model.substrate_columns()
    ch = model.chain_columns()
    vc = model.variable_columns()
    n_flow = vc.n_vars
    n_chains = len(ch.chain_names)
    n_nodes = sub.n_nodes
    n_sites = len(sub.site_names)
    alpha_index = n_flow + n_sites
    n_total = alpha_index + 1

    var_stage = vc.var_stage
    var_chain = ch.stage_chain[var_stage]
    var_z = ch.stage_z[var_stage]
    var_dst_vnf = ch.stage_dst_vnf[var_stage]
    var_src_vnf = ch.stage_src_vnf[var_stage]

    ub_rows: list[np.ndarray] = []
    ub_cols: list[np.ndarray] = []
    ub_base: list[np.ndarray] = []
    ub_kind: list[np.ndarray] = []
    ub_stage: list[np.ndarray] = []
    n_ub = 0

    # -- equality block: coverage (with -alpha) then conservation --------
    stage1_vars = np.flatnonzero(var_z == 1)
    eq_rows = [var_chain[stage1_vars], np.arange(n_chains, dtype=np.int64)]
    eq_cols = [stage1_vars, np.full(n_chains, alpha_index, dtype=np.int64)]
    eq_data = [np.ones(stage1_vars.size), -np.ones(n_chains)]
    n_eq = n_chains

    stage_has_cons = ch.stage_dst_vnf >= 0
    cons_per_stage = np.where(stage_has_cons, ch.dst_len, 0)
    cons_start = n_eq + np.cumsum(cons_per_stage) - cons_per_stage
    n_cons = int(cons_per_stage.sum())
    incoming = np.flatnonzero(var_dst_vnf >= 0)
    outgoing = np.flatnonzero(var_src_vnf >= 0)
    eq_rows.append(cons_start[var_stage[incoming]] + vc.var_dst_pos[incoming])
    eq_cols.append(incoming)
    eq_data.append(np.ones(incoming.size))
    eq_rows.append(cons_start[var_stage[outgoing] - 1] + vc.var_src_pos[outgoing])
    eq_cols.append(outgoing)
    eq_data.append(-np.ones(outgoing.size))
    n_eq += n_cons

    # -- compute rows ----------------------------------------------------
    cmp_vars = np.concatenate([incoming, outgoing])
    cmp_vnf = np.concatenate([var_dst_vnf[incoming], var_src_vnf[outgoing]])
    cmp_site = (
        np.concatenate([vc.var_dst_ep[incoming], vc.var_src_ep[outgoing]])
        - n_nodes
    )
    site_rows: list[tuple[int, str]] = []
    vnf_rows: list[tuple[int, str, str]] = []
    relief_rows: list[int] = []
    relief_cols: list[int] = []
    relief_pairs: list[tuple[str, str]] = []
    if cmp_vars.size:
        site_order = _inverse_permutation(sub.site_rank)
        vnf_order = _inverse_permutation(sub.vnf_rank)

        # Per-site rows first (sorted by site name), relief -1.0 on a_s.
        uniq_sites, site_inverse = np.unique(
            sub.site_rank[cmp_site], return_inverse=True
        )
        ub_rows.append(site_inverse + n_ub)
        ub_cols.append(cmp_vars)
        ub_base.append(sub.vnf_load[cmp_vnf])
        ub_kind.append(np.full(cmp_vars.size, _KIND_TOTAL, dtype=np.int8))
        ub_stage.append(var_stage[cmp_vars])
        present_sites = site_order[uniq_sites]
        ub_rows.append(n_ub + np.arange(len(present_sites), dtype=np.int64))
        ub_cols.append(n_flow + present_sites)
        ub_base.append(-np.ones(len(present_sites)))
        ub_kind.append(np.full(len(present_sites), _KIND_CONST, dtype=np.int8))
        ub_stage.append(np.full(len(present_sites), -1, dtype=np.int64))
        site_rows = [
            (n_ub + i, sub.site_names[int(s)])
            for i, s in enumerate(present_sites)
        ]
        n_ub += len(present_sites)

        # (VNF, site) rows sorted by (vnf name, site name); the relief
        # coefficient -cap/site_cap is refreshed per call.
        site_stride = max(n_sites, 1)
        pair_key = sub.vnf_rank[cmp_vnf] * site_stride + sub.site_rank[cmp_site]
        uniq_pairs, pair_inverse = np.unique(pair_key, return_inverse=True)
        ub_rows.append(pair_inverse + n_ub)
        ub_cols.append(cmp_vars)
        ub_base.append(sub.vnf_load[cmp_vnf])
        ub_kind.append(np.full(cmp_vars.size, _KIND_TOTAL, dtype=np.int8))
        ub_stage.append(var_stage[cmp_vars])
        row_vnf = vnf_order[uniq_pairs // site_stride]
        row_site = site_order[uniq_pairs % site_stride]
        for i, (vi, si) in enumerate(zip(row_vnf, row_site)):
            vname = sub.vnf_names[int(vi)]
            sname = sub.site_names[int(si)]
            vnf_rows.append((n_ub + i, vname, sname))
            if model.sites[sname].capacity > 0:
                relief_rows.append(n_ub + i)
                relief_cols.append(n_flow + int(si))
                relief_pairs.append((vname, sname))
        n_ub += len(uniq_pairs)

    # -- budget row ------------------------------------------------------
    budget_row = n_ub
    ub_rows.append(np.full(n_sites, budget_row, dtype=np.int64))
    ub_cols.append(n_flow + np.arange(n_sites, dtype=np.int64))
    ub_base.append(np.ones(n_sites))
    ub_kind.append(np.full(n_sites, _KIND_CONST, dtype=np.int8))
    ub_stage.append(np.full(n_sites, -1, dtype=np.int64))
    n_ub += 1

    # -- link rows -------------------------------------------------------
    link_rows: list[tuple[int, str]] = []
    if sub.link_names and len(sub.pair_start):
        ep_node = sub.endpoint_node
        n1 = ep_node[vc.var_src_ep]
        n2 = ep_node[vc.var_dst_ep]
        parts_vars: list[np.ndarray] = []
        parts_link: list[np.ndarray] = []
        parts_frac: list[np.ndarray] = []
        parts_kind: list[np.ndarray] = []
        for kind, demand, a, b in (
            (_KIND_FWD, ch.stage_fwd, n1, n2),
            (_KIND_REV, ch.stage_rev, n2, n1),
        ):
            mask = demand[var_stage] > 0
            pid = sub.pair_id[a, b]
            sel = np.flatnonzero(mask & (pid >= 0))
            pids = pid[sel]
            lens = sub.pair_len[pids]
            pool_idx, rows_of = ragged_gather(sub.pair_start[pids], lens)
            parts_vars.append(sel[rows_of])
            parts_link.append(sub.pool_link[pool_idx])
            parts_frac.append(sub.pool_frac[pool_idx])
            parts_kind.append(np.full(pool_idx.size, kind, dtype=np.int8))
        lnk_vars = np.concatenate(parts_vars)
        if lnk_vars.size:
            lnk_link = np.concatenate(parts_link)
            uniq_links, link_inverse = np.unique(
                sub.link_rank[lnk_link], return_inverse=True
            )
            link_order = _inverse_permutation(sub.link_rank)
            present = link_order[uniq_links]
            ub_rows.append(link_inverse + n_ub)
            ub_cols.append(lnk_vars)
            ub_base.append(np.concatenate(parts_frac))
            ub_kind.append(np.concatenate(parts_kind))
            ub_stage.append(var_stage[lnk_vars])
            link_rows = [
                (n_ub + i, sub.link_names[int(li)])
                for i, li in enumerate(present)
            ]
            n_ub += len(present)

    def concat(parts: list[np.ndarray], dtype) -> np.ndarray:
        if not parts:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(parts).astype(dtype, copy=False)

    # Column-generation seeds: stage-1 flows, the cheapest few flows of
    # every later stage, every site addition, and alpha itself.
    counts = np.diff(vc.stage_var_start)
    order = np.lexsort((vc.var_latency, var_stage))
    pos_in_stage = np.arange(n_flow, dtype=np.int64) - np.repeat(
        vc.stage_var_start[:-1], counts
    )
    cheap = order[pos_in_stage < 4]
    seed_columns = np.unique(
        np.concatenate(
            [
                stage1_vars,
                cheap,
                n_flow + np.arange(n_sites, dtype=np.int64),
                [alpha_index],
            ]
        )
    )

    stage_key = [
        (ch.chain_names[int(c)], int(z))
        for c, z in zip(ch.stage_chain, ch.stage_z)
    ]
    endpoint_names = np.array(sub.endpoint_names, dtype=object)

    return _CapacityStructure(
        n_flow=n_flow,
        n_total=n_total,
        alpha_index=alpha_index,
        site_names=list(sub.site_names),
        ub_rows=concat(ub_rows, np.int64),
        ub_cols=concat(ub_cols, np.int64),
        ub_base=concat(ub_base, float),
        ub_kind=concat(ub_kind, np.int8),
        ub_stage=concat(ub_stage, np.int64),
        n_ub=n_ub,
        relief_rows=np.array(relief_rows, dtype=np.int64),
        relief_cols=np.array(relief_cols, dtype=np.int64),
        relief_pairs=relief_pairs,
        eq_rows=concat(eq_rows, np.int64),
        eq_cols=concat(eq_cols, np.int64),
        eq_data=concat(eq_data, float),
        n_eq=n_eq,
        site_rows=site_rows,
        vnf_rows=vnf_rows,
        budget_row=budget_row,
        link_rows=link_rows,
        stage_key=stage_key,
        var_stage=var_stage,
        stage_chain_name=[ch.chain_names[int(c)] for c in ch.stage_chain],
        stage_z=ch.stage_z,
        var_src_name=endpoint_names[vc.var_src_ep],
        var_dst_name=endpoint_names[vc.var_dst_ep],
        seed_columns=seed_columns,
    )


def _capacity_structure_for(model: NetworkModel) -> _CapacityStructure:
    global _CAPACITY_REBUILDS, _CAPACITY_REUSE_HITS
    key = model.capacity_structure_digest()
    structure = _CAPACITY_CACHE.get(key)
    if structure is not None:
        _CAPACITY_CACHE.move_to_end(key)
        _CAPACITY_REUSE_HITS += 1
        return structure
    structure = _build_capacity_structure(model)
    _CAPACITY_REBUILDS += 1
    _CAPACITY_CACHE[key] = structure
    while len(_CAPACITY_CACHE) > _CAPACITY_CACHE_LIMIT:
        _CAPACITY_CACHE.popitem(last=False)
    return structure


def plan_cloud_capacity(
    model: NetworkModel, budget: float
) -> CloudCapacityPlan:
    """Distribute ``budget`` extra compute across sites to maximize the
    traffic scale factor ``alpha`` (all chains scaled uniformly).

    Variables: ``y_{c z n1 n2}`` (absolute flow fractions scaled by
    alpha), ``a_s`` (per-site additions), and ``alpha``.
    """
    if budget < 0:
        raise CapacityPlanningError(f"negative budget {budget}")
    if not model.chains:
        raise CapacityPlanningError("model has no chains")

    structure = _capacity_structure_for(model)
    rows, cols, data, b_ub = structure.refreshed_ub(model, budget)
    n = structure.n_total
    cost = np.zeros(n)
    cost[structure.alpha_index] = -1.0  # maximize alpha

    x = None
    elapsed = 0.0
    if highs_backend.direct_backend_available():
        n_rows = structure.n_ub + structure.n_eq
        all_rows = np.concatenate([rows, structure.eq_rows + structure.n_ub])
        all_cols = np.concatenate([cols, structure.eq_cols])
        all_data = np.concatenate([data, structure.eq_data])
        matrix = csc_matrix((all_data, (all_rows, all_cols)), shape=(n_rows, n))
        row_lower = np.concatenate(
            [np.full(structure.n_ub, -np.inf), np.zeros(structure.n_eq)]
        )
        row_upper = np.concatenate([b_ub, np.zeros(structure.n_eq)])
        if structure.cg_solver is None:
            structure.cg_solver = highs_backend.ColumnGenSolver()
        start = time.perf_counter()
        try:
            x, _ = structure.cg_solver.solve(
                cost,
                matrix,
                row_lower,
                row_upper,
                np.zeros(n),
                np.full(n, np.inf),
                seed_columns=structure.seed_columns,
            )
        except highs_backend.ColumnGenError:
            x = None
        elapsed = time.perf_counter() - start

    if x is None:
        a_ub = csr_matrix((data, (rows, cols)), shape=(structure.n_ub, n))
        a_eq = csr_matrix(
            (structure.eq_data, (structure.eq_rows, structure.eq_cols)),
            shape=(structure.n_eq, n),
        )
        start = time.perf_counter()
        result = linprog(
            cost,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=np.zeros(structure.n_eq),
            bounds=[(0.0, None)] * n,
            method="highs",
        )
        elapsed = time.perf_counter() - start
        if not result.success:
            raise CapacityPlanningError(
                f"cloud capacity LP failed: {result.message}"
            )
        x = np.asarray(result.x)

    alpha = float(x[structure.alpha_index])
    additional = {
        s: float(x[structure.n_flow + i])
        for i, s in enumerate(structure.site_names)
        if x[structure.n_flow + i] > _EPS
    }

    solution = None
    if alpha > _EPS:
        solution = RoutingSolution(model)
        flows = x[: structure.n_flow]
        for i in np.flatnonzero(flows / alpha > RoutingSolution.EPSILON):
            k = int(structure.var_stage[i])
            solution.add_flow(
                structure.stage_chain_name[k],
                int(structure.stage_z[k]),
                structure.var_src_name[i],
                structure.var_dst_name[i],
                min(float(flows[i]) / alpha, 1.0),
            )
    return CloudCapacityPlan(alpha, additional, solution, elapsed)


@dataclass
class _ScalarCloudProgram:
    """The scalar-assembled cloud-capacity LP (for equivalence tests)."""

    cost: np.ndarray
    a_ub: csr_matrix
    b_ub: np.ndarray
    a_eq: csr_matrix
    b_eq: np.ndarray
    vars_list: list[tuple[str, int, str, str]]
    site_index: dict[str, int]
    alpha_index: int
    n_total: int


def _scalar_cloud_program(
    model: NetworkModel, budget: float
) -> _ScalarCloudProgram:
    """The original per-variable Python-loop assembly, kept verbatim."""
    var_index: dict[tuple[str, int, str, str], int] = {}
    vars_list: list[tuple[str, int, str, str]] = []
    for cname, chain in model.chains.items():
        for z in range(1, chain.num_stages + 1):
            for src in model.stage_sources(chain, z):
                for dst in model.stage_destinations(chain, z):
                    var_index[(cname, z, src, dst)] = len(vars_list)
                    vars_list.append((cname, z, src, dst))

    n_flow = len(vars_list)
    sites = list(model.sites)
    site_index = {s: n_flow + i for i, s in enumerate(sites)}
    alpha_index = n_flow + len(sites)
    n = alpha_index + 1

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    b_ub: list[float] = []
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_data: list[float] = []
    b_eq: list[float] = []

    def add_ub(coeffs: dict[int, float], bound: float) -> None:
        row = len(b_ub)
        for col, val in coeffs.items():
            rows.append(row)
            cols.append(col)
            data.append(val)
        b_ub.append(bound)

    def add_eq(coeffs: dict[int, float], value: float) -> None:
        row = len(b_eq)
        for col, val in coeffs.items():
            eq_rows.append(row)
            eq_cols.append(col)
            eq_data.append(val)
        b_eq.append(value)

    # Coverage: stage-1 flow sums to alpha for every chain.
    for cname, chain in model.chains.items():
        coeffs = {
            var_index[(cname, 1, src, dst)]: 1.0
            for src in model.stage_sources(chain, 1)
            for dst in model.stage_destinations(chain, 1)
        }
        coeffs[alpha_index] = -1.0
        add_eq(coeffs, 0.0)

    # Flow conservation.
    for cname, chain in model.chains.items():
        for z in range(1, chain.num_stages):
            for site in model.stage_destinations(chain, z):
                coeffs: dict[int, float] = {}
                for src in model.stage_sources(chain, z):
                    coeffs[var_index[(cname, z, src, site)]] = 1.0
                for dst in model.stage_destinations(chain, z + 1):
                    idx = var_index[(cname, z + 1, site, dst)]
                    coeffs[idx] = coeffs.get(idx, 0.0) - 1.0
                add_eq(coeffs, 0.0)

    # Compute loads per (VNF, site) and per site.
    vnf_site_coeffs: dict[tuple[str, str], dict[int, float]] = {}
    for i, (cname, z, src, dst) in enumerate(vars_list):
        chain = model.chains[cname]
        traffic = chain.stage_traffic(z)
        if z < chain.num_stages:
            vnf = chain.vnf_at(z)
            load = model.vnfs[vnf].load_per_unit * traffic
            coeffs = vnf_site_coeffs.setdefault((vnf, dst), {})
            coeffs[i] = coeffs.get(i, 0.0) + load
        if z > 1:
            vnf = chain.vnf_at(z - 1)
            load = model.vnfs[vnf].load_per_unit * traffic
            coeffs = vnf_site_coeffs.setdefault((vnf, src), {})
            coeffs[i] = coeffs.get(i, 0.0) + load

    # Per-site totals get the a_s relief; per-VNF capacities scale with
    # the site's relative growth (the paper assumes site capacity is
    # divided among its VNF instances, so extra site capacity grows each
    # hosted VNF proportionally).
    site_coeffs: dict[str, dict[int, float]] = {}
    for (_vnf, site), coeffs in vnf_site_coeffs.items():
        merged = site_coeffs.setdefault(site, {})
        for col, val in coeffs.items():
            merged[col] = merged.get(col, 0.0) + val
    for site, coeffs in sorted(site_coeffs.items()):
        coeffs = dict(coeffs)
        coeffs[site_index[site]] = -1.0
        add_ub(coeffs, model.sites[site].capacity)

    for (vnf, site), coeffs in sorted(vnf_site_coeffs.items()):
        cap = model.vnfs[vnf].site_capacity.get(site, 0.0)
        site_cap = model.sites[site].capacity
        coeffs = dict(coeffs)
        if site_cap > 0:
            # VNF share of the site grows in proportion to the addition.
            coeffs[site_index[site]] = -cap / site_cap
        add_ub(coeffs, cap)

    # Budget.
    add_ub({site_index[s]: 1.0 for s in sites}, budget)

    # Link capacity under scaled traffic.
    if model.links and model.routing:
        link_coeffs: dict[str, dict[int, float]] = {}
        for i, (cname, z, src, dst) in enumerate(vars_list):
            chain = model.chains[cname]
            fwd = chain.forward_traffic[z - 1]
            rev = chain.reverse_traffic[z - 1]
            n1, n2 = model.endpoint_node(src), model.endpoint_node(dst)
            if fwd > 0:
                for link_name, frac in model.links_between(n1, n2).items():
                    c = link_coeffs.setdefault(link_name, {})
                    c[i] = c.get(i, 0.0) + fwd * frac
            if rev > 0:
                for link_name, frac in model.links_between(n2, n1).items():
                    c = link_coeffs.setdefault(link_name, {})
                    c[i] = c.get(i, 0.0) + rev * frac
        for link_name, coeffs in sorted(link_coeffs.items()):
            link = model.links[link_name]
            add_ub(
                coeffs,
                max(0.0, model.mlu_limit * link.bandwidth - link.background),
            )

    cost = np.zeros(n)
    cost[alpha_index] = -1.0  # maximize alpha

    return _ScalarCloudProgram(
        cost=cost,
        a_ub=csr_matrix((data, (rows, cols)), shape=(len(b_ub), n)),
        b_ub=np.array(b_ub),
        a_eq=csr_matrix((eq_data, (eq_rows, eq_cols)), shape=(len(b_eq), n)),
        b_eq=np.array(b_eq),
        vars_list=vars_list,
        site_index=site_index,
        alpha_index=alpha_index,
        n_total=n,
    )


def plan_cloud_capacity_reference(
    model: NetworkModel, budget: float
) -> CloudCapacityPlan:
    """The pre-vectorization scalar path (ground truth for tests)."""
    if budget < 0:
        raise CapacityPlanningError(f"negative budget {budget}")
    if not model.chains:
        raise CapacityPlanningError("model has no chains")

    program = _scalar_cloud_program(model, budget)
    vars_list = program.vars_list
    site_index = program.site_index
    alpha_index = program.alpha_index
    sites = list(model.sites)

    start = time.perf_counter()
    result = linprog(
        program.cost,
        A_ub=program.a_ub,
        b_ub=program.b_ub,
        A_eq=program.a_eq,
        b_eq=program.b_eq,
        bounds=[(0.0, None)] * program.n_total,
        method="highs",
    )
    elapsed = time.perf_counter() - start
    if not result.success:
        raise CapacityPlanningError(f"cloud capacity LP failed: {result.message}")

    alpha = float(result.x[alpha_index])
    additional = {
        s: float(result.x[site_index[s]])
        for s in sites
        if result.x[site_index[s]] > _EPS
    }

    solution = None
    if alpha > _EPS:
        solution = RoutingSolution(model)
        for i, (cname, z, src, dst) in enumerate(vars_list):
            frac = float(result.x[i]) / alpha
            if frac > RoutingSolution.EPSILON:
                solution.add_flow(cname, z, src, dst, min(frac, 1.0))
    return CloudCapacityPlan(alpha, additional, solution, elapsed)


def uniform_cloud_plan(model: NetworkModel, budget: float) -> CloudCapacityPlan:
    """Baseline: spread the budget evenly across all sites, then measure
    the achievable alpha with the routing LP substrate."""
    if not model.sites:
        raise CapacityPlanningError("model has no sites")
    share = budget / len(model.sites)
    additional = {s: share for s in model.sites}
    alpha, solution = _max_alpha_fixed_capacity(model, additional)
    return CloudCapacityPlan(alpha, additional, solution, 0.0)


def max_alpha(model: NetworkModel) -> float:
    """The uniform traffic-scale factor the current capacities support."""
    alpha, _ = _max_alpha_fixed_capacity(model, {})
    return alpha


def _max_alpha_fixed_capacity(
    model: NetworkModel, additional: dict[str, float]
) -> tuple[float, RoutingSolution | None]:
    """Solve the alpha-maximization with capacities fixed (budget spent)."""
    sites = [
        CloudSite(s.name, s.node, s.capacity + additional.get(s.name, 0.0))
        for s in model.sites.values()
    ]
    grown = model.copy_with_sites(sites)
    # Scale each VNF's per-site capacity with its site's growth, matching
    # the proportional model used in plan_cloud_capacity.
    vnfs = []
    for vnf in grown.vnfs.values():
        caps = {}
        for site, cap in vnf.site_capacity.items():
            base = model.sites[site].capacity
            extra = additional.get(site, 0.0)
            factor = (base + extra) / base if base > 0 else 1.0
            caps[site] = cap * factor
        vnfs.append(VNF(vnf.name, vnf.load_per_unit, caps))
    grown = grown.copy_with_vnfs(vnfs)
    plan = plan_cloud_capacity(grown, budget=0.0)
    return plan.alpha, plan.solution


# ---------------------------------------------------------------------------
# VNF capacity planning (MIP)
# ---------------------------------------------------------------------------


@dataclass
class VnfPlacementPlan:
    """Result of :func:`plan_vnf_placement`."""

    #: VNF name -> list of newly selected sites.
    new_sites: dict[str, list[str]]
    objective: float
    solution: RoutingSolution | None
    solve_seconds: float
    status: str = "optimal"
    new_site_capacity: dict[tuple[str, str], float] = field(default_factory=dict)

    def apply(self, model: NetworkModel) -> NetworkModel:
        """Return a model with the planned deployments added."""
        vnfs = []
        for vnf in model.vnfs.values():
            extra = {
                site: self.new_site_capacity.get((vnf.name, site), 0.0)
                for site in self.new_sites.get(vnf.name, [])
            }
            vnfs.append(vnf.with_sites(extra) if extra else vnf)
        return model.copy_with_vnfs(vnfs)


def plan_vnf_placement(
    model: NetworkModel,
    new_sites_per_vnf: dict[str, int],
    new_site_capacity: float,
    time_limit: float | None = 60.0,
) -> VnfPlacementPlan:
    """Choose new deployment sites for VNFs minimizing weighted latency.

    Implements the paper's MIP: binary ``w_fs`` decides whether VNF ``f``
    is newly placed at site ``s`` (restricted to sites outside the
    existing ``S_f``), a linking constraint forbids routing load onto an
    unopened site, and at most ``new_sites_per_vnf[f]`` sites open per
    VNF.  Every new deployment receives ``new_site_capacity``.
    """
    for vnf_name in new_sites_per_vnf:
        if vnf_name not in model.vnfs:
            raise CapacityPlanningError(f"unknown VNF {vnf_name!r}")

    # Extended catalog: planned VNFs become available everywhere.
    extended_vnfs = []
    candidate_sites: dict[str, list[str]] = {}
    for vnf in model.vnfs.values():
        quota = new_sites_per_vnf.get(vnf.name, 0)
        if quota <= 0:
            extended_vnfs.append(vnf)
            continue
        extra_sites = [s for s in model.sites if s not in vnf.site_capacity]
        candidate_sites[vnf.name] = extra_sites
        extended_vnfs.append(
            vnf.with_sites({s: new_site_capacity for s in extra_sites})
        )
    extended = model.copy_with_vnfs(extended_vnfs)

    var_index: dict[tuple[str, int, str, str], int] = {}
    vars_list: list[tuple[str, int, str, str]] = []
    for cname, chain in extended.chains.items():
        for z in range(1, chain.num_stages + 1):
            for src in extended.stage_sources(chain, z):
                for dst in extended.stage_destinations(chain, z):
                    var_index[(cname, z, src, dst)] = len(vars_list)
                    vars_list.append((cname, z, src, dst))
    n_flow = len(vars_list)

    w_index: dict[tuple[str, str], int] = {}
    for vnf_name, sites in candidate_sites.items():
        for site in sites:
            w_index[(vnf_name, site)] = n_flow + len(w_index)
    n = n_flow + len(w_index)

    cost = np.zeros(n)
    for i, (cname, z, src, dst) in enumerate(vars_list):
        chain = extended.chains[cname]
        cost[i] = chain.stage_traffic(z) * extended.site_latency(src, dst)

    constraints: list[LinearConstraint] = []
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    lower: list[float] = []
    upper: list[float] = []

    def add_row(coeffs: dict[int, float], lb: float, ub: float) -> None:
        row = len(lower)
        for col, val in coeffs.items():
            rows.append(row)
            cols.append(col)
            data.append(val)
        lower.append(lb)
        upper.append(ub)

    # Coverage (full routing) and flow conservation.
    for cname, chain in extended.chains.items():
        coeffs = {
            var_index[(cname, 1, src, dst)]: 1.0
            for src in extended.stage_sources(chain, 1)
            for dst in extended.stage_destinations(chain, 1)
        }
        add_row(coeffs, 1.0, 1.0)
        for z in range(1, chain.num_stages):
            for site in extended.stage_destinations(chain, z):
                coeffs = {}
                for src in extended.stage_sources(chain, z):
                    coeffs[var_index[(cname, z, src, site)]] = 1.0
                for dst in extended.stage_destinations(chain, z + 1):
                    idx = var_index[(cname, z + 1, site, dst)]
                    coeffs[idx] = coeffs.get(idx, 0.0) - 1.0
                add_row(coeffs, 0.0, 0.0)

    # Loads and linking.
    vnf_site_coeffs: dict[tuple[str, str], dict[int, float]] = {}
    for i, (cname, z, src, dst) in enumerate(vars_list):
        chain = extended.chains[cname]
        traffic = chain.stage_traffic(z)
        if z < chain.num_stages:
            vnf = chain.vnf_at(z)
            load = extended.vnfs[vnf].load_per_unit * traffic
            c = vnf_site_coeffs.setdefault((vnf, dst), {})
            c[i] = c.get(i, 0.0) + load
        if z > 1:
            vnf = chain.vnf_at(z - 1)
            load = extended.vnfs[vnf].load_per_unit * traffic
            c = vnf_site_coeffs.setdefault((vnf, src), {})
            c[i] = c.get(i, 0.0) + load

    for (vnf_name, site), coeffs in sorted(vnf_site_coeffs.items()):
        cap = extended.vnfs[vnf_name].site_capacity.get(site, 0.0)
        if (vnf_name, site) in w_index:
            # New site: load <= cap * w (load only when the site opens).
            coeffs = dict(coeffs)
            coeffs[w_index[(vnf_name, site)]] = -cap
            add_row(coeffs, -np.inf, 0.0)
        else:
            add_row(coeffs, -np.inf, cap)

    site_coeffs: dict[str, dict[int, float]] = {}
    for (_vnf_name, site), coeffs in vnf_site_coeffs.items():
        merged = site_coeffs.setdefault(site, {})
        for col, val in coeffs.items():
            merged[col] = merged.get(col, 0.0) + val
    for site, coeffs in sorted(site_coeffs.items()):
        add_row(coeffs, -np.inf, extended.sites[site].capacity)

    # Placement quota per VNF.
    for vnf_name, sites in candidate_sites.items():
        coeffs = {w_index[(vnf_name, s)]: 1.0 for s in sites}
        add_row(coeffs, 0.0, float(new_sites_per_vnf[vnf_name]))

    matrix = csr_matrix((data, (rows, cols)), shape=(len(lower), n))
    constraints.append(
        LinearConstraint(matrix, np.array(lower), np.array(upper))
    )

    integrality = np.zeros(n)
    for idx in w_index.values():
        integrality[idx] = 1
    lb = np.zeros(n)
    ub = np.ones(n)

    options = {"time_limit": time_limit} if time_limit else {}
    start = time.perf_counter()
    result = milp(
        cost,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
        options=options,
    )
    elapsed = time.perf_counter() - start

    if result.x is None:
        return VnfPlacementPlan({}, float("inf"), None, elapsed, status="infeasible")

    new_sites: dict[str, list[str]] = {}
    capacities: dict[tuple[str, str], float] = {}
    for (vnf_name, site), idx in w_index.items():
        if result.x[idx] > 0.5:
            new_sites.setdefault(vnf_name, []).append(site)
            capacities[(vnf_name, site)] = new_site_capacity

    solution = RoutingSolution(extended)
    for i, (cname, z, src, dst) in enumerate(vars_list):
        value = float(result.x[i])
        if value > RoutingSolution.EPSILON:
            solution.add_flow(cname, z, src, dst, value)
    status = "optimal" if result.success else "feasible"
    return VnfPlacementPlan(
        new_sites, float(result.fun), solution, elapsed, status, capacities
    )


def random_vnf_placement(
    model: NetworkModel,
    new_sites_per_vnf: dict[str, int],
    new_site_capacity: float,
    rng: random.Random,
) -> VnfPlacementPlan:
    """Baseline for Figure 13c: pick the new sites uniformly at random."""
    new_sites: dict[str, list[str]] = {}
    capacities: dict[tuple[str, str], float] = {}
    for vnf_name, quota in new_sites_per_vnf.items():
        vnf = model.vnfs[vnf_name]
        candidates = [s for s in model.sites if s not in vnf.site_capacity]
        chosen = rng.sample(candidates, min(quota, len(candidates)))
        new_sites[vnf_name] = chosen
        for site in chosen:
            capacities[(vnf_name, site)] = new_site_capacity
    return VnfPlacementPlan(new_sites, float("nan"), None, 0.0, "random", capacities)


__all__ = [
    "CapacityPlanningError",
    "CloudCapacityPlan",
    "VnfPlacementPlan",
    "capacity_cache_stats",
    "clear_capacity_cache",
    "max_alpha",
    "plan_cloud_capacity",
    "plan_cloud_capacity_reference",
    "plan_vnf_placement",
    "random_vnf_placement",
    "uniform_cloud_plan",
]
