"""Capacity planning: the two planning problems of Sections 4.2-4.3.

**Cloud capacity planning** (Figure 13b): given an additional compute
budget ``A`` to spread across sites, choose per-site additions ``a_s``
maximizing the uniform traffic-scale factor ``alpha`` that the network
can still route.  The paper adapts the chain-routing LP; the bilinear
``alpha * x`` product is linearized by substituting absolute flow
variables ``y = alpha * x``, after which every constraint is linear.

**VNF capacity planning** (Figure 13c): given a number of new sites
``y_f`` for each VNF, choose the placement ``S'_f`` (disjoint from the
existing ``S_f``) minimizing the aggregate weighted latency.  This is the
paper's mixed-integer program with binary placement variables ``w_fs``;
we solve it with ``scipy.optimize.milp`` (HiGHS branch-and-bound).

Baselines used by the Figure 13 benches -- uniform cloud provisioning and
random VNF placement -- live here too so every comparison shares one
implementation of the accounting.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, linprog, milp
from scipy.sparse import csr_matrix

from repro.core.model import CloudSite, NetworkModel, VNF
from repro.core.routes import RoutingSolution

_EPS = 1e-9


class CapacityPlanningError(Exception):
    """Raised when a planning program cannot be constructed or solved."""


# ---------------------------------------------------------------------------
# Cloud capacity planning
# ---------------------------------------------------------------------------


@dataclass
class CloudCapacityPlan:
    """Result of :func:`plan_cloud_capacity`."""

    alpha: float
    additional: dict[str, float]
    solution: RoutingSolution | None
    solve_seconds: float

    def planned_sites(self, model: NetworkModel) -> list[CloudSite]:
        """Site list with the planned additions applied."""
        return [
            CloudSite(s.name, s.node, s.capacity + self.additional.get(s.name, 0.0))
            for s in model.sites.values()
        ]


def plan_cloud_capacity(
    model: NetworkModel, budget: float
) -> CloudCapacityPlan:
    """Distribute ``budget`` extra compute across sites to maximize the
    traffic scale factor ``alpha`` (all chains scaled uniformly).

    Variables: ``y_{c z n1 n2}`` (absolute flow fractions scaled by
    alpha), ``a_s`` (per-site additions), and ``alpha``.
    """
    if budget < 0:
        raise CapacityPlanningError(f"negative budget {budget}")
    if not model.chains:
        raise CapacityPlanningError("model has no chains")

    var_index: dict[tuple[str, int, str, str], int] = {}
    vars_list: list[tuple[str, int, str, str]] = []
    for cname, chain in model.chains.items():
        for z in range(1, chain.num_stages + 1):
            for src in model.stage_sources(chain, z):
                for dst in model.stage_destinations(chain, z):
                    var_index[(cname, z, src, dst)] = len(vars_list)
                    vars_list.append((cname, z, src, dst))

    n_flow = len(vars_list)
    sites = list(model.sites)
    site_index = {s: n_flow + i for i, s in enumerate(sites)}
    alpha_index = n_flow + len(sites)
    n = alpha_index + 1

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    b_ub: list[float] = []
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_data: list[float] = []
    b_eq: list[float] = []

    def add_ub(coeffs: dict[int, float], bound: float) -> None:
        row = len(b_ub)
        for col, val in coeffs.items():
            rows.append(row)
            cols.append(col)
            data.append(val)
        b_ub.append(bound)

    def add_eq(coeffs: dict[int, float], value: float) -> None:
        row = len(b_eq)
        for col, val in coeffs.items():
            eq_rows.append(row)
            eq_cols.append(col)
            eq_data.append(val)
        b_eq.append(value)

    # Coverage: stage-1 flow sums to alpha for every chain.
    for cname, chain in model.chains.items():
        coeffs = {
            var_index[(cname, 1, src, dst)]: 1.0
            for src in model.stage_sources(chain, 1)
            for dst in model.stage_destinations(chain, 1)
        }
        coeffs[alpha_index] = -1.0
        add_eq(coeffs, 0.0)

    # Flow conservation.
    for cname, chain in model.chains.items():
        for z in range(1, chain.num_stages):
            for site in model.stage_destinations(chain, z):
                coeffs: dict[int, float] = {}
                for src in model.stage_sources(chain, z):
                    coeffs[var_index[(cname, z, src, site)]] = 1.0
                for dst in model.stage_destinations(chain, z + 1):
                    idx = var_index[(cname, z + 1, site, dst)]
                    coeffs[idx] = coeffs.get(idx, 0.0) - 1.0
                add_eq(coeffs, 0.0)

    # Compute loads per (VNF, site) and per site.
    vnf_site_coeffs: dict[tuple[str, str], dict[int, float]] = {}
    for i, (cname, z, src, dst) in enumerate(vars_list):
        chain = model.chains[cname]
        traffic = chain.stage_traffic(z)
        if z < chain.num_stages:
            vnf = chain.vnf_at(z)
            load = model.vnfs[vnf].load_per_unit * traffic
            coeffs = vnf_site_coeffs.setdefault((vnf, dst), {})
            coeffs[i] = coeffs.get(i, 0.0) + load
        if z > 1:
            vnf = chain.vnf_at(z - 1)
            load = model.vnfs[vnf].load_per_unit * traffic
            coeffs = vnf_site_coeffs.setdefault((vnf, src), {})
            coeffs[i] = coeffs.get(i, 0.0) + load

    # Per-site totals get the a_s relief; per-VNF capacities scale with
    # the site's relative growth (the paper assumes site capacity is
    # divided among its VNF instances, so extra site capacity grows each
    # hosted VNF proportionally).
    site_coeffs: dict[str, dict[int, float]] = {}
    for (_vnf, site), coeffs in vnf_site_coeffs.items():
        merged = site_coeffs.setdefault(site, {})
        for col, val in coeffs.items():
            merged[col] = merged.get(col, 0.0) + val
    for site, coeffs in sorted(site_coeffs.items()):
        coeffs = dict(coeffs)
        coeffs[site_index[site]] = -1.0
        add_ub(coeffs, model.sites[site].capacity)

    for (vnf, site), coeffs in sorted(vnf_site_coeffs.items()):
        cap = model.vnfs[vnf].site_capacity.get(site, 0.0)
        site_cap = model.sites[site].capacity
        coeffs = dict(coeffs)
        if site_cap > 0:
            # VNF share of the site grows in proportion to the addition.
            coeffs[site_index[site]] = -cap / site_cap
        add_ub(coeffs, cap)

    # Budget.
    add_ub({site_index[s]: 1.0 for s in sites}, budget)

    # Link capacity under scaled traffic.
    if model.links and model.routing:
        link_coeffs: dict[str, dict[int, float]] = {}
        for i, (cname, z, src, dst) in enumerate(vars_list):
            chain = model.chains[cname]
            fwd = chain.forward_traffic[z - 1]
            rev = chain.reverse_traffic[z - 1]
            n1, n2 = model.endpoint_node(src), model.endpoint_node(dst)
            if fwd > 0:
                for link_name, frac in model.links_between(n1, n2).items():
                    c = link_coeffs.setdefault(link_name, {})
                    c[i] = c.get(i, 0.0) + fwd * frac
            if rev > 0:
                for link_name, frac in model.links_between(n2, n1).items():
                    c = link_coeffs.setdefault(link_name, {})
                    c[i] = c.get(i, 0.0) + rev * frac
        for link_name, coeffs in sorted(link_coeffs.items()):
            link = model.links[link_name]
            add_ub(
                coeffs,
                max(0.0, model.mlu_limit * link.bandwidth - link.background),
            )

    cost = np.zeros(n)
    cost[alpha_index] = -1.0  # maximize alpha

    bounds = [(0.0, None)] * n
    a_ub = csr_matrix((data, (rows, cols)), shape=(len(b_ub), n))
    a_eq = csr_matrix((eq_data, (eq_rows, eq_cols)), shape=(len(b_eq), n))

    start = time.perf_counter()
    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=np.array(b_ub),
        A_eq=a_eq,
        b_eq=np.array(b_eq),
        bounds=bounds,
        method="highs",
    )
    elapsed = time.perf_counter() - start
    if not result.success:
        raise CapacityPlanningError(f"cloud capacity LP failed: {result.message}")

    alpha = float(result.x[alpha_index])
    additional = {
        s: float(result.x[site_index[s]])
        for s in sites
        if result.x[site_index[s]] > _EPS
    }

    solution = None
    if alpha > _EPS:
        solution = RoutingSolution(model)
        for i, (cname, z, src, dst) in enumerate(vars_list):
            frac = float(result.x[i]) / alpha
            if frac > RoutingSolution.EPSILON:
                solution.add_flow(cname, z, src, dst, min(frac, 1.0))
    return CloudCapacityPlan(alpha, additional, solution, elapsed)


def uniform_cloud_plan(model: NetworkModel, budget: float) -> CloudCapacityPlan:
    """Baseline: spread the budget evenly across all sites, then measure
    the achievable alpha with the routing LP substrate."""
    if not model.sites:
        raise CapacityPlanningError("model has no sites")
    share = budget / len(model.sites)
    additional = {s: share for s in model.sites}
    alpha, solution = _max_alpha_fixed_capacity(model, additional)
    return CloudCapacityPlan(alpha, additional, solution, 0.0)


def max_alpha(model: NetworkModel) -> float:
    """The uniform traffic-scale factor the current capacities support."""
    alpha, _ = _max_alpha_fixed_capacity(model, {})
    return alpha


def _max_alpha_fixed_capacity(
    model: NetworkModel, additional: dict[str, float]
) -> tuple[float, RoutingSolution | None]:
    """Solve the alpha-maximization with capacities fixed (budget spent)."""
    sites = [
        CloudSite(s.name, s.node, s.capacity + additional.get(s.name, 0.0))
        for s in model.sites.values()
    ]
    grown = model.copy_with_sites(sites)
    # Scale each VNF's per-site capacity with its site's growth, matching
    # the proportional model used in plan_cloud_capacity.
    vnfs = []
    for vnf in grown.vnfs.values():
        caps = {}
        for site, cap in vnf.site_capacity.items():
            base = model.sites[site].capacity
            extra = additional.get(site, 0.0)
            factor = (base + extra) / base if base > 0 else 1.0
            caps[site] = cap * factor
        vnfs.append(VNF(vnf.name, vnf.load_per_unit, caps))
    grown = grown.copy_with_vnfs(vnfs)
    plan = plan_cloud_capacity(grown, budget=0.0)
    return plan.alpha, plan.solution


# ---------------------------------------------------------------------------
# VNF capacity planning (MIP)
# ---------------------------------------------------------------------------


@dataclass
class VnfPlacementPlan:
    """Result of :func:`plan_vnf_placement`."""

    #: VNF name -> list of newly selected sites.
    new_sites: dict[str, list[str]]
    objective: float
    solution: RoutingSolution | None
    solve_seconds: float
    status: str = "optimal"
    new_site_capacity: dict[tuple[str, str], float] = field(default_factory=dict)

    def apply(self, model: NetworkModel) -> NetworkModel:
        """Return a model with the planned deployments added."""
        vnfs = []
        for vnf in model.vnfs.values():
            extra = {
                site: self.new_site_capacity.get((vnf.name, site), 0.0)
                for site in self.new_sites.get(vnf.name, [])
            }
            vnfs.append(vnf.with_sites(extra) if extra else vnf)
        return model.copy_with_vnfs(vnfs)


def plan_vnf_placement(
    model: NetworkModel,
    new_sites_per_vnf: dict[str, int],
    new_site_capacity: float,
    time_limit: float | None = 60.0,
) -> VnfPlacementPlan:
    """Choose new deployment sites for VNFs minimizing weighted latency.

    Implements the paper's MIP: binary ``w_fs`` decides whether VNF ``f``
    is newly placed at site ``s`` (restricted to sites outside the
    existing ``S_f``), a linking constraint forbids routing load onto an
    unopened site, and at most ``new_sites_per_vnf[f]`` sites open per
    VNF.  Every new deployment receives ``new_site_capacity``.
    """
    for vnf_name in new_sites_per_vnf:
        if vnf_name not in model.vnfs:
            raise CapacityPlanningError(f"unknown VNF {vnf_name!r}")

    # Extended catalog: planned VNFs become available everywhere.
    extended_vnfs = []
    candidate_sites: dict[str, list[str]] = {}
    for vnf in model.vnfs.values():
        quota = new_sites_per_vnf.get(vnf.name, 0)
        if quota <= 0:
            extended_vnfs.append(vnf)
            continue
        extra_sites = [s for s in model.sites if s not in vnf.site_capacity]
        candidate_sites[vnf.name] = extra_sites
        extended_vnfs.append(
            vnf.with_sites({s: new_site_capacity for s in extra_sites})
        )
    extended = model.copy_with_vnfs(extended_vnfs)

    var_index: dict[tuple[str, int, str, str], int] = {}
    vars_list: list[tuple[str, int, str, str]] = []
    for cname, chain in extended.chains.items():
        for z in range(1, chain.num_stages + 1):
            for src in extended.stage_sources(chain, z):
                for dst in extended.stage_destinations(chain, z):
                    var_index[(cname, z, src, dst)] = len(vars_list)
                    vars_list.append((cname, z, src, dst))
    n_flow = len(vars_list)

    w_index: dict[tuple[str, str], int] = {}
    for vnf_name, sites in candidate_sites.items():
        for site in sites:
            w_index[(vnf_name, site)] = n_flow + len(w_index)
    n = n_flow + len(w_index)

    cost = np.zeros(n)
    for i, (cname, z, src, dst) in enumerate(vars_list):
        chain = extended.chains[cname]
        cost[i] = chain.stage_traffic(z) * extended.site_latency(src, dst)

    constraints: list[LinearConstraint] = []
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    lower: list[float] = []
    upper: list[float] = []

    def add_row(coeffs: dict[int, float], lb: float, ub: float) -> None:
        row = len(lower)
        for col, val in coeffs.items():
            rows.append(row)
            cols.append(col)
            data.append(val)
        lower.append(lb)
        upper.append(ub)

    # Coverage (full routing) and flow conservation.
    for cname, chain in extended.chains.items():
        coeffs = {
            var_index[(cname, 1, src, dst)]: 1.0
            for src in extended.stage_sources(chain, 1)
            for dst in extended.stage_destinations(chain, 1)
        }
        add_row(coeffs, 1.0, 1.0)
        for z in range(1, chain.num_stages):
            for site in extended.stage_destinations(chain, z):
                coeffs = {}
                for src in extended.stage_sources(chain, z):
                    coeffs[var_index[(cname, z, src, site)]] = 1.0
                for dst in extended.stage_destinations(chain, z + 1):
                    idx = var_index[(cname, z + 1, site, dst)]
                    coeffs[idx] = coeffs.get(idx, 0.0) - 1.0
                add_row(coeffs, 0.0, 0.0)

    # Loads and linking.
    vnf_site_coeffs: dict[tuple[str, str], dict[int, float]] = {}
    for i, (cname, z, src, dst) in enumerate(vars_list):
        chain = extended.chains[cname]
        traffic = chain.stage_traffic(z)
        if z < chain.num_stages:
            vnf = chain.vnf_at(z)
            load = extended.vnfs[vnf].load_per_unit * traffic
            c = vnf_site_coeffs.setdefault((vnf, dst), {})
            c[i] = c.get(i, 0.0) + load
        if z > 1:
            vnf = chain.vnf_at(z - 1)
            load = extended.vnfs[vnf].load_per_unit * traffic
            c = vnf_site_coeffs.setdefault((vnf, src), {})
            c[i] = c.get(i, 0.0) + load

    for (vnf_name, site), coeffs in sorted(vnf_site_coeffs.items()):
        cap = extended.vnfs[vnf_name].site_capacity.get(site, 0.0)
        if (vnf_name, site) in w_index:
            # New site: load <= cap * w (load only when the site opens).
            coeffs = dict(coeffs)
            coeffs[w_index[(vnf_name, site)]] = -cap
            add_row(coeffs, -np.inf, 0.0)
        else:
            add_row(coeffs, -np.inf, cap)

    site_coeffs: dict[str, dict[int, float]] = {}
    for (_vnf_name, site), coeffs in vnf_site_coeffs.items():
        merged = site_coeffs.setdefault(site, {})
        for col, val in coeffs.items():
            merged[col] = merged.get(col, 0.0) + val
    for site, coeffs in sorted(site_coeffs.items()):
        add_row(coeffs, -np.inf, extended.sites[site].capacity)

    # Placement quota per VNF.
    for vnf_name, sites in candidate_sites.items():
        coeffs = {w_index[(vnf_name, s)]: 1.0 for s in sites}
        add_row(coeffs, 0.0, float(new_sites_per_vnf[vnf_name]))

    matrix = csr_matrix((data, (rows, cols)), shape=(len(lower), n))
    constraints.append(
        LinearConstraint(matrix, np.array(lower), np.array(upper))
    )

    integrality = np.zeros(n)
    for idx in w_index.values():
        integrality[idx] = 1
    lb = np.zeros(n)
    ub = np.ones(n)

    options = {"time_limit": time_limit} if time_limit else {}
    start = time.perf_counter()
    result = milp(
        cost,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
        options=options,
    )
    elapsed = time.perf_counter() - start

    if result.x is None:
        return VnfPlacementPlan({}, float("inf"), None, elapsed, status="infeasible")

    new_sites: dict[str, list[str]] = {}
    capacities: dict[tuple[str, str], float] = {}
    for (vnf_name, site), idx in w_index.items():
        if result.x[idx] > 0.5:
            new_sites.setdefault(vnf_name, []).append(site)
            capacities[(vnf_name, site)] = new_site_capacity

    solution = RoutingSolution(extended)
    for i, (cname, z, src, dst) in enumerate(vars_list):
        value = float(result.x[i])
        if value > RoutingSolution.EPSILON:
            solution.add_flow(cname, z, src, dst, value)
    status = "optimal" if result.success else "feasible"
    return VnfPlacementPlan(
        new_sites, float(result.fun), solution, elapsed, status, capacities
    )


def random_vnf_placement(
    model: NetworkModel,
    new_sites_per_vnf: dict[str, int],
    new_site_capacity: float,
    rng: random.Random,
) -> VnfPlacementPlan:
    """Baseline for Figure 13c: pick the new sites uniformly at random."""
    new_sites: dict[str, list[str]] = {}
    capacities: dict[tuple[str, str], float] = {}
    for vnf_name, quota in new_sites_per_vnf.items():
        vnf = model.vnfs[vnf_name]
        candidates = [s for s in model.sites if s not in vnf.site_capacity]
        chosen = rng.sample(candidates, min(quota, len(candidates)))
        new_sites[vnf_name] = chosen
        for site in chosen:
            capacities[(vnf_name, site)] = new_site_capacity
    return VnfPlacementPlan(new_sites, float("nan"), None, 0.0, "random", capacities)


__all__ = [
    "CapacityPlanningError",
    "CloudCapacityPlan",
    "VnfPlacementPlan",
    "max_alpha",
    "plan_cloud_capacity",
    "plan_vnf_placement",
    "random_vnf_placement",
    "uniform_cloud_plan",
]
