"""Routing solutions: the ``x_{c z n1 n2}`` variables and derived metrics.

Every traffic-engineering scheme in this repository -- SB-LP, SB-DP,
ANYCAST, COMPUTE-AWARE, and the ablations -- produces a
:class:`RoutingSolution`.  All evaluation metrics (the weighted-latency
objective of Equation 3, site and VNF loads of Equation 4, link traffic of
Equations 6-7, carried throughput) are computed here so that schemes are
compared on identical accounting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.model import Chain, ModelError, NetworkModel


class RoutingError(Exception):
    """Raised on malformed routing solutions."""


@dataclass(frozen=True)
class StageFlow:
    """One routing assignment: a fraction of a chain's stage-``z`` traffic
    sent from ``src`` to ``dst`` (site names, or the raw ingress/egress
    node at the chain ends)."""

    chain: str
    stage: int
    src: str
    dst: str
    fraction: float


class RoutingSolution:
    """A (possibly partial) routing for every chain in a model.

    ``fraction(c, z, n1, n2)`` is the paper's ``x_{c z n1 n2}``: the share
    of chain ``c``'s stage-``z`` demand routed from ``n1`` to ``n2``.
    Fractions below ``EPSILON`` are treated as zero and dropped.

    A solution may intentionally route less than the full demand of a
    chain (the max-throughput LP and the capacity-limited heuristics do
    this); :meth:`routed_fraction` exposes how much was carried.
    """

    EPSILON = 1e-9

    def __init__(self, model: NetworkModel):
        self.model = model
        # (chain, stage) -> {(src, dst): fraction}
        self._flows: dict[tuple[str, int], dict[tuple[str, str], float]] = (
            defaultdict(dict)
        )

    # -- construction ---------------------------------------------------

    def add_flow(
        self, chain: str, stage: int, src: str, dst: str, fraction: float
    ) -> None:
        """Accumulate ``fraction`` of stage traffic onto the (src, dst) pair."""
        if chain not in self.model.chains:
            raise RoutingError(f"unknown chain {chain!r}")
        c = self.model.chains[chain]
        if not 1 <= stage <= c.num_stages:
            raise RoutingError(f"chain {chain!r}: stage {stage} out of range")
        if fraction < -self.EPSILON:
            raise RoutingError(f"negative flow fraction {fraction}")
        if fraction <= self.EPSILON:
            return
        key = (src, dst)
        stage_flows = self._flows[(chain, stage)]
        stage_flows[key] = stage_flows.get(key, 0.0) + fraction

    def add_path(self, chain: str, sites: Sequence[str], fraction: float) -> None:
        """Add a full chain path (ingress, site_1, ..., site_k, egress).

        ``sites`` must have one entry per chain node, i.e.
        ``len(chain.vnfs) + 2`` entries; consecutive entries become one
        stage flow each.  This is how the DP heuristic and the per-hop
        baselines emit their routes.
        """
        c = self.model.chains[chain]
        expected = len(c.vnfs) + 2
        if len(sites) != expected:
            raise RoutingError(
                f"chain {chain!r}: path needs {expected} hops, got {len(sites)}"
            )
        for z, (src, dst) in enumerate(zip(sites, sites[1:]), start=1):
            self.add_flow(chain, z, src, dst, fraction)

    def set_flow(
        self, chain: str, stage: int, src: str, dst: str, fraction: float
    ) -> None:
        """Overwrite (or remove, when ~0) a single stage flow."""
        if chain not in self.model.chains:
            raise RoutingError(f"unknown chain {chain!r}")
        if fraction < -self.EPSILON:
            raise RoutingError(f"negative flow fraction {fraction}")
        stage_flows = self._flows[(chain, stage)]
        if fraction <= self.EPSILON:
            stage_flows.pop((src, dst), None)
        else:
            stage_flows[(src, dst)] = fraction

    def clear_chain(self, chain: str) -> None:
        """Remove every flow of a chain (route rollback / teardown)."""
        if chain not in self.model.chains:
            raise RoutingError(f"unknown chain {chain!r}")
        stages = self.model.chains[chain].num_stages
        for z in range(1, stages + 1):
            self._flows.pop((chain, z), None)

    # -- lookups ----------------------------------------------------------

    def fraction(self, chain: str, stage: int, src: str, dst: str) -> float:
        return self._flows.get((chain, stage), {}).get((src, dst), 0.0)

    def stage_flows(self, chain: str, stage: int) -> dict[tuple[str, str], float]:
        return dict(self._flows.get((chain, stage), {}))

    def flows(self) -> Iterator[StageFlow]:
        """Iterate every non-zero stage flow."""
        for (chain, stage), pairs in self._flows.items():
            for (src, dst), fraction in pairs.items():
                yield StageFlow(chain, stage, src, dst, fraction)

    def routed_fraction(self, chain: str) -> float:
        """Share of the chain's demand actually carried (stage-1 flow sum)."""
        return sum(self._flows.get((chain, 1), {}).values())

    # -- metrics ------------------------------------------------------------

    def total_weighted_latency(self) -> float:
        """The Equation 3 objective: sum over flows of
        ``(w_cz + v_cz) * d_{n1 n2} * x``."""
        total = 0.0
        for flow in self.flows():
            c = self.model.chains[flow.chain]
            demand = c.stage_traffic(flow.stage)
            total += demand * self.model.site_latency(flow.src, flow.dst) * flow.fraction
        return total

    def chain_latency(self, chain: str) -> float:
        """Expected one-way path latency of a chain's carried traffic.

        Per stage, the expected hop delay weighted by flow fractions
        (normalized by the carried fraction), summed over stages.  Returns
        ``inf`` for a chain carrying no traffic.
        """
        routed = self.routed_fraction(chain)
        if routed <= self.EPSILON:
            return float("inf")
        c = self.model.chains[chain]
        total = 0.0
        for z in range(1, c.num_stages + 1):
            stage_total = 0.0
            for (src, dst), frac in self._flows.get((chain, z), {}).items():
                stage_total += self.model.site_latency(src, dst) * frac
            total += stage_total / routed
        return total

    def mean_latency(self) -> float:
        """Traffic-weighted mean chain latency over carried traffic."""
        num, den = 0.0, 0.0
        for name, chain in self.model.chains.items():
            routed = self.routed_fraction(name)
            if routed <= self.EPSILON:
                continue
            carried = routed * chain.stage_traffic(1)
            num += carried * self.chain_latency(name)
            den += carried
        return num / den if den > 0 else float("inf")

    def throughput(self) -> float:
        """Total chain demand carried (stage-1 forward+reverse traffic)."""
        return sum(
            self.routed_fraction(name) * chain.stage_traffic(1)
            for name, chain in self.model.chains.items()
        )

    def vnf_site_loads(self) -> dict[tuple[str, str], float]:
        """Load of each (VNF, site): ``l_f`` times traffic received at the
        VNF's stage plus traffic sent at the following stage (Equation 4)."""
        loads: dict[tuple[str, str], float] = defaultdict(float)
        for flow in self.flows():
            c = self.model.chains[flow.chain]
            demand = c.stage_traffic(flow.stage) * flow.fraction
            # Traffic received by the VNF terminating stage z (if not egress).
            if flow.stage < c.num_stages:
                vnf = c.vnf_at(flow.stage)
                loads[(vnf, flow.dst)] += self.model.vnfs[vnf].load_per_unit * demand
            # Traffic sent by the VNF originating stage z (if not ingress).
            if flow.stage > 1:
                vnf = c.vnf_at(flow.stage - 1)
                loads[(vnf, flow.src)] += self.model.vnfs[vnf].load_per_unit * demand
        return dict(loads)

    def site_loads(self) -> dict[str, float]:
        """Total load per cloud site, summed across VNFs."""
        loads: dict[str, float] = defaultdict(float)
        for (_vnf, site), load in self.vnf_site_loads().items():
            loads[site] += load
        return dict(loads)

    def pair_traffic(self) -> dict[tuple[str, str], float]:
        """``sum_c T_{c n1 n2}`` of Equation 7: total Switchboard traffic
        between node pairs, combining forward and reverse directions.

        Reverse-direction traffic for a stage flow ``n1 -> n2`` travels
        ``n2 -> n1``.  Keys are network *nodes* (sites resolved).
        """
        traffic: dict[tuple[str, str], float] = defaultdict(float)
        for flow in self.flows():
            c = self.model.chains[flow.chain]
            fwd = c.forward_traffic[flow.stage - 1] * flow.fraction
            rev = c.reverse_traffic[flow.stage - 1] * flow.fraction
            src = self.model.endpoint_node(flow.src)
            dst = self.model.endpoint_node(flow.dst)
            if fwd > 0:
                traffic[(src, dst)] += fwd
            if rev > 0:
                traffic[(dst, src)] += rev
        return dict(traffic)

    def link_traffic(self) -> dict[str, float]:
        """Switchboard traffic per physical link via routing fractions
        ``r_{n1 n2 e}`` (the summand of Equation 6)."""
        per_link: dict[str, float] = defaultdict(float)
        for (n1, n2), volume in self.pair_traffic().items():
            for link_name, frac in self.model.links_between(n1, n2).items():
                per_link[link_name] += volume * frac
        return dict(per_link)

    def link_utilization(self) -> dict[str, float]:
        """Utilization (background + Switchboard) of every physical link."""
        traffic = self.link_traffic()
        return {
            name: (link.background + traffic.get(name, 0.0)) / link.bandwidth
            for name, link in self.model.links.items()
        }

    def max_link_utilization(self) -> float:
        """The network cost metric the MLU budget ``beta`` constrains."""
        utils = self.link_utilization()
        return max(utils.values()) if utils else 0.0

    # -- validation -----------------------------------------------------------

    def violations(self, tol: float = 1e-6) -> list[str]:
        """Check structural and capacity invariants; return human-readable
        descriptions of violations (empty list == valid).

        Checks: endpoint validity per stage (Equations 1-2), flow
        conservation (Equation 5), routed fraction <= 1, site capacity,
        VNF-site capacity (Equation 4), and the MLU budget (Equation 6)
        when links are modelled.
        """
        problems: list[str] = []
        for name, chain in self.model.chains.items():
            problems.extend(self._check_chain(name, chain, tol))

        for site_name, load in self.site_loads().items():
            site = self.model.sites.get(site_name)
            if site is None:
                problems.append(f"load on unknown site {site_name!r}")
            elif load > site.capacity + tol:
                problems.append(
                    f"site {site_name!r} overloaded: {load:.6g} > {site.capacity:.6g}"
                )

        for (vnf_name, site_name), load in self.vnf_site_loads().items():
            cap = self.model.vnfs[vnf_name].site_capacity.get(site_name)
            if cap is None:
                problems.append(
                    f"VNF {vnf_name!r} routed at non-deployment site {site_name!r}"
                )
            elif load > cap + tol:
                problems.append(
                    f"VNF {vnf_name!r} at {site_name!r} overloaded: "
                    f"{load:.6g} > {cap:.6g}"
                )

        if self.model.links:
            for link_name, util in self.link_utilization().items():
                if util > self.model.mlu_limit + tol:
                    problems.append(
                        f"link {link_name!r} exceeds MLU budget: "
                        f"{util:.6g} > {self.model.mlu_limit:.6g}"
                    )
        return problems

    def _check_chain(self, name: str, chain: Chain, tol: float) -> Iterable[str]:
        problems: list[str] = []
        routed = self.routed_fraction(name)
        if routed > 1 + tol:
            problems.append(f"chain {name!r} routes {routed:.6g} > 1 of its demand")

        for z in range(1, chain.num_stages + 1):
            try:
                sources = set(self.model.stage_sources(chain, z))
                dests = set(self.model.stage_destinations(chain, z))
            except ModelError as exc:
                problems.append(str(exc))
                continue
            for (src, dst), frac in self._flows.get((name, z), {}).items():
                if src not in sources:
                    problems.append(
                        f"chain {name!r} stage {z}: invalid source {src!r}"
                    )
                if dst not in dests:
                    problems.append(
                        f"chain {name!r} stage {z}: invalid destination {dst!r}"
                    )
                if frac < -tol:
                    problems.append(
                        f"chain {name!r} stage {z}: negative fraction {frac:.6g}"
                    )

        # Flow conservation (Equation 5) at every intermediate VNF site.
        for z in range(1, chain.num_stages):
            incoming: dict[str, float] = defaultdict(float)
            outgoing: dict[str, float] = defaultdict(float)
            for (_src, dst), frac in self._flows.get((name, z), {}).items():
                incoming[dst] += frac
            for (src, _dst), frac in self._flows.get((name, z + 1), {}).items():
                outgoing[src] += frac
            for site in set(incoming) | set(outgoing):
                if abs(incoming[site] - outgoing[site]) > tol:
                    problems.append(
                        f"chain {name!r}: flow conservation broken at stage "
                        f"{z}->{z + 1}, site {site!r}: in={incoming[site]:.6g} "
                        f"out={outgoing[site]:.6g}"
                    )
        return problems

    def validate(self, tol: float = 1e-6) -> None:
        """Raise :class:`RoutingError` listing all violations, if any."""
        problems = self.violations(tol)
        if problems:
            raise RoutingError("; ".join(problems))

    def __repr__(self) -> str:
        n_flows = sum(len(p) for p in self._flows.values())
        return (
            f"RoutingSolution(chains={len(self.model.chains)}, flows={n_flows}, "
            f"throughput={self.throughput():.6g})"
        )
