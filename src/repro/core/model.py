"""The Switchboard network model (Table 1 of the paper).

The model captures four groups of parameters:

- *network*: nodes ``N``, pairwise delays ``d``, links ``E`` with
  bandwidths ``b_e``, background traffic ``g_e``, the routing fractions
  ``r_{n1 n2 e}`` (which fraction of traffic between two nodes crosses a
  link), and the maximum-link-utilization limit ``beta``;
- *cloud*: sites ``S`` (a subset of nodes) with compute capacity ``m_s``;
- *VNF*: the catalog ``F``, the sites ``S_f`` where each VNF is deployed
  with per-site capacity ``m_sf``, and the load per unit traffic ``l_f``;
- *chain*: customer chains ``C`` with ingress/egress nodes, ordered VNF
  lists ``F_c``, and per-stage forward/reverse traffic ``w_cz`` /
  ``v_cz``.

Stages are numbered ``z = 1 .. |F_c| + 1`` as in the paper: stage ``z``
is the logical link from the ``(z-1)``-th chain node to the ``z``-th,
where node 0 is the ingress and node ``|F_c| + 1`` is the egress.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence


class ModelError(Exception):
    """Raised when model construction or validation fails."""


@dataclass(frozen=True)
class CloudSite:
    """A cloud site colocated with network node ``node``.

    ``capacity`` is the maximum total compute load ``m_s`` across all VNFs
    hosted at the site (in abstract load units; the paper leaves the unit
    to the operator).
    """

    name: str
    node: str
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ModelError(f"site {self.name!r}: negative capacity")


@dataclass(frozen=True)
class VNF:
    """A VNF service in the catalog ``F``.

    ``load_per_unit`` is ``l_f``: compute load generated per unit of
    traffic through the VNF (the simulations in Section 7.3 call this
    CPU/byte).  ``site_capacity`` maps each deployment site in ``S_f`` to
    the VNF's capacity ``m_sf`` there.
    """

    name: str
    load_per_unit: float
    site_capacity: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.load_per_unit < 0:
            raise ModelError(f"VNF {self.name!r}: negative load_per_unit")
        for site, cap in self.site_capacity.items():
            if cap < 0:
                raise ModelError(
                    f"VNF {self.name!r}: negative capacity at site {site!r}"
                )
        object.__setattr__(self, "site_capacity", dict(self.site_capacity))

    @property
    def sites(self) -> list[str]:
        """The deployment sites ``S_f``."""
        return list(self.site_capacity)

    def with_sites(self, extra: Mapping[str, float]) -> "VNF":
        """Return a copy deployed at additional sites (capacity planning)."""
        merged = dict(self.site_capacity)
        for site, cap in extra.items():
            merged[site] = merged.get(site, 0.0) + cap
        return VNF(self.name, self.load_per_unit, merged)


@dataclass(frozen=True)
class Link:
    """A directed physical link ``e`` with bandwidth ``b_e`` and
    non-Switchboard background traffic ``g_e`` (same unit as bandwidth)."""

    name: str
    src: str
    dst: str
    bandwidth: float
    background: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ModelError(f"link {self.name!r}: non-positive bandwidth")
        if self.background < 0:
            raise ModelError(f"link {self.name!r}: negative background traffic")


@dataclass(frozen=True)
class Chain:
    """A customer service chain ``c``.

    ``forward_traffic`` / ``reverse_traffic`` are the per-stage demands
    ``w_cz`` / ``v_cz`` for stages ``1 .. len(vnfs) + 1``.  Scalars are
    broadcast to all stages (the common case: VNFs that neither compress
    nor amplify traffic).
    """

    name: str
    ingress: str
    egress: str
    vnfs: tuple[str, ...]
    forward_traffic: tuple[float, ...]
    reverse_traffic: tuple[float, ...]

    def __init__(
        self,
        name: str,
        ingress: str,
        egress: str,
        vnfs: Sequence[str],
        forward_traffic: float | Sequence[float] = 1.0,
        reverse_traffic: float | Sequence[float] = 0.0,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "ingress", ingress)
        object.__setattr__(self, "egress", egress)
        object.__setattr__(self, "vnfs", tuple(vnfs))
        stages = len(self.vnfs) + 1
        object.__setattr__(
            self, "forward_traffic", _per_stage(forward_traffic, stages, name)
        )
        object.__setattr__(
            self, "reverse_traffic", _per_stage(reverse_traffic, stages, name)
        )

    @property
    def num_stages(self) -> int:
        """``|F_c| + 1`` logical links between chain nodes."""
        return len(self.vnfs) + 1

    def stage_traffic(self, z: int) -> float:
        """Combined forward + reverse demand ``w_cz + v_cz`` at stage ``z``."""
        self._check_stage(z)
        return self.forward_traffic[z - 1] + self.reverse_traffic[z - 1]

    def vnf_at(self, position: int) -> str:
        """The ``position``-th VNF (1-based): ``f_cz``."""
        if not 1 <= position <= len(self.vnfs):
            raise ModelError(
                f"chain {self.name!r}: VNF position {position} out of range"
            )
        return self.vnfs[position - 1]

    def _check_stage(self, z: int) -> None:
        if not 1 <= z <= self.num_stages:
            raise ModelError(f"chain {self.name!r}: stage {z} out of range")

    def scaled(self, factor: float) -> "Chain":
        """Return a copy with all stage demands multiplied by ``factor``."""
        return Chain(
            self.name,
            self.ingress,
            self.egress,
            self.vnfs,
            tuple(w * factor for w in self.forward_traffic),
            tuple(v * factor for v in self.reverse_traffic),
        )


def _per_stage(
    value: float | Sequence[float], stages: int, chain: str
) -> tuple[float, ...]:
    if isinstance(value, (int, float)):
        values = (float(value),) * stages
    else:
        values = tuple(float(v) for v in value)
        if len(values) != stages:
            raise ModelError(
                f"chain {chain!r}: expected {stages} per-stage demands, "
                f"got {len(values)}"
            )
    if any(v < 0 for v in values):
        raise ModelError(f"chain {chain!r}: negative traffic demand")
    return values


class NetworkModel:
    """The full model consumed by the traffic-engineering algorithms.

    Parameters
    ----------
    nodes:
        Network node names ``N``.
    latency:
        ``(n1, n2) -> one-way delay``.  Missing pairs default to the
        symmetric entry if present; diagonal defaults to 0.
    sites:
        Cloud sites ``S``; each must reference a known node.
    vnfs:
        The VNF catalog ``F``; each deployment site must be a known site.
    chains:
        Customer chains ``C``; every chain VNF must be in the catalog and
        ingress/egress must be known nodes.
    links / routing:
        Optional physical substrate: links ``E`` and routing fractions
        ``r_{n1 n2 e}`` as ``(n1, n2) -> {link_name: fraction}``.
    mlu_limit:
        The operator's maximum-link-utilization budget ``beta``.
    """

    def __init__(
        self,
        nodes: Iterable[str],
        latency: Mapping[tuple[str, str], float],
        sites: Iterable[CloudSite] = (),
        vnfs: Iterable[VNF] = (),
        chains: Iterable[Chain] = (),
        links: Iterable[Link] = (),
        routing: Mapping[tuple[str, str], Mapping[str, float]] | None = None,
        mlu_limit: float = 1.0,
    ):
        self.nodes: list[str] = list(dict.fromkeys(nodes))
        if not self.nodes:
            raise ModelError("model needs at least one node")
        node_set = set(self.nodes)

        self._latency: dict[tuple[str, str], float] = {}
        for (n1, n2), d in latency.items():
            if n1 not in node_set or n2 not in node_set:
                raise ModelError(f"latency entry references unknown node: {n1}->{n2}")
            if d < 0:
                raise ModelError(f"negative latency {n1}->{n2}")
            self._latency[(n1, n2)] = float(d)

        self.sites: dict[str, CloudSite] = {}
        for site in sites:
            if site.node not in node_set:
                raise ModelError(f"site {site.name!r} on unknown node {site.node!r}")
            if site.name in self.sites:
                raise ModelError(f"duplicate site {site.name!r}")
            self.sites[site.name] = site

        self.vnfs: dict[str, VNF] = {}
        for vnf in vnfs:
            if vnf.name in self.vnfs:
                raise ModelError(f"duplicate VNF {vnf.name!r}")
            for s in vnf.site_capacity:
                if s not in self.sites:
                    raise ModelError(f"VNF {vnf.name!r} at unknown site {s!r}")
            self.vnfs[vnf.name] = vnf

        self.links: dict[str, Link] = {}
        for link in links:
            if link.src not in node_set or link.dst not in node_set:
                raise ModelError(f"link {link.name!r} references unknown node")
            if link.name in self.links:
                raise ModelError(f"duplicate link {link.name!r}")
            self.links[link.name] = link

        self.routing: dict[tuple[str, str], dict[str, float]] = {}
        if routing is not None:
            for (n1, n2), fractions in routing.items():
                for link_name, frac in fractions.items():
                    if link_name not in self.links:
                        raise ModelError(
                            f"routing for ({n1},{n2}) uses unknown link {link_name!r}"
                        )
                    if frac < 0 or frac > 1 + 1e-9:
                        raise ModelError(
                            f"routing fraction out of range for ({n1},{n2},{link_name})"
                        )
                self.routing[(n1, n2)] = dict(fractions)

        if mlu_limit <= 0:
            raise ModelError("mlu_limit must be positive")
        self.mlu_limit = float(mlu_limit)

        # Lazily built caches; the substrate ones are inherited by
        # copy_with_chains since that shares this substrate.
        self._substrate_columns = None
        self._chain_columns = None
        self._variable_columns = None
        self._substrate_doc: dict | None = None
        # The node list is immutable after construction; cache the set so
        # per-chain validation stays O(1) on 100k-chain workloads.
        self._node_set = node_set

        self.chains: dict[str, Chain] = {}
        for chain in chains:
            self.add_chain(chain)

    # -- chain management ----------------------------------------------

    def add_chain(self, chain: Chain) -> None:
        if chain.name in self.chains:
            raise ModelError(f"duplicate chain {chain.name!r}")
        if chain.ingress not in self._node_set:
            raise ModelError(
                f"chain {chain.name!r}: unknown ingress {chain.ingress!r}"
            )
        if chain.egress not in self._node_set:
            raise ModelError(f"chain {chain.name!r}: unknown egress {chain.egress!r}")
        for vnf_name in chain.vnfs:
            vnf = self.vnfs.get(vnf_name)
            if vnf is None:
                raise ModelError(f"chain {chain.name!r}: unknown VNF {vnf_name!r}")
            if not vnf.site_capacity:
                raise ModelError(
                    f"chain {chain.name!r}: VNF {vnf_name!r} has no deployment sites"
                )
        self.chains[chain.name] = chain
        self._chain_columns = None
        self._variable_columns = None

    def remove_chain(self, name: str) -> None:
        if name not in self.chains:
            raise ModelError(f"unknown chain {name!r}")
        del self.chains[name]
        self._chain_columns = None
        self._variable_columns = None

    def invalidate_substrate(self) -> None:
        """Drop every cached substrate-derived view.

        Must be called after mutating substrate state in place (the only
        sanctioned case is ``controller.failures`` flipping ``_latency``
        entries); chain columns are dropped too because they embed
        substrate indices, and the substrate document cache because
        digests must reflect the new latencies.
        """
        self._substrate_columns = None
        self._chain_columns = None
        self._variable_columns = None
        self._substrate_doc = None

    # -- columnar views -------------------------------------------------

    def substrate_columns(self):
        """Cached :class:`~repro.core.columns.SubstrateColumns` view."""
        if self._substrate_columns is None:
            from repro.core.columns import SubstrateColumns

            self._substrate_columns = SubstrateColumns(self)
        return self._substrate_columns

    def chain_columns(self):
        """Cached :class:`~repro.core.columns.ChainColumns` view."""
        if self._chain_columns is None:
            from repro.core.columns import ChainColumns

            self._chain_columns = ChainColumns(self, self.substrate_columns())
        return self._chain_columns

    def variable_columns(self):
        """Cached LP variable expansion (see ``core/columns.py``)."""
        if self._variable_columns is None:
            from repro.core.columns import build_variable_columns

            self._variable_columns = build_variable_columns(
                self.substrate_columns(), self.chain_columns()
            )
        return self._variable_columns

    # -- lookups --------------------------------------------------------

    def latency(self, n1: str, n2: str) -> float:
        """One-way delay ``d_{n1 n2}`` (symmetric fallback, 0 diagonal)."""
        if (n1, n2) in self._latency:
            return self._latency[(n1, n2)]
        if (n2, n1) in self._latency:
            return self._latency[(n2, n1)]
        if n1 == n2:
            return 0.0
        raise ModelError(f"no latency entry for {n1!r} -> {n2!r}")

    def site_node(self, site: str) -> str:
        return self.sites[site].node

    def site_latency(self, a: str, b: str) -> float:
        """Delay between two endpoints given as site names *or* node names."""
        return self.latency(self.endpoint_node(a), self.endpoint_node(b))

    def endpoint_node(self, name: str) -> str:
        """Resolve a site name or node name to its network node."""
        if name in self.sites:
            return self.sites[name].node
        return name

    def vnf_sites(self, vnf_name: str) -> list[str]:
        """Deployment sites ``S_f`` of a VNF."""
        return self.vnfs[vnf_name].sites

    # -- stage endpoints (Equations 1 and 2) -----------------------------

    def stage_sources(self, chain: Chain, z: int) -> list[str]:
        """``N^src_cz``: ingress node at stage 1, else sites of VNF z-1.

        Site names are returned for VNF stages and the raw node name for
        the ingress, mirroring the paper's mixed node/site formulation.
        """
        chain._check_stage(z)
        if z == 1:
            return [chain.ingress]
        return self.vnf_sites(chain.vnf_at(z - 1))

    def stage_destinations(self, chain: Chain, z: int) -> list[str]:
        """``N^dst_cz``: egress node at the last stage, else sites of VNF z."""
        chain._check_stage(z)
        if z == chain.num_stages:
            return [chain.egress]
        return self.vnf_sites(chain.vnf_at(z))

    # -- link routing -----------------------------------------------------

    def route_fraction(self, n1: str, n2: str, link_name: str) -> float:
        """``r_{n1 n2 e}``: fraction of ``n1``->``n2`` traffic crossing a link."""
        return self.routing.get((n1, n2), {}).get(link_name, 0.0)

    def links_between(self, n1: str, n2: str) -> dict[str, float]:
        """All links carrying ``n1``->``n2`` traffic with their fractions."""
        return dict(self.routing.get((n1, n2), {}))

    def link_headroom(self, link: Link) -> float:
        """Capacity available to Switchboard on a link under the MLU budget."""
        return max(0.0, self.mlu_limit * link.bandwidth - link.background)

    # -- identity ---------------------------------------------------------

    def digest(self, chains: Iterable[str] | None = None) -> str:
        """A stable content hash of the model (hex SHA-256).

        The digest covers everything the traffic-engineering algorithms
        read: nodes, latencies, sites, VNF catalog and deployments,
        links, routing fractions, the MLU budget, and every chain with
        its per-stage demands.  Two models built independently from the
        same parameters produce the same digest, regardless of insertion
        order, so the digest is usable as a solver-cache key and for
        snapshot tests across serialization round-trips.

        ``chains`` optionally restricts the chain portion of the digest
        to a subset (unknown names raise :class:`ModelError`); the
        substrate portion is always included.  This is how the solver
        farm keys partition results without copying the model.
        """
        if chains is None:
            chain_names = sorted(self.chains)
        else:
            chain_names = sorted(set(chains))
            unknown = [n for n in chain_names if n not in self.chains]
            if unknown:
                raise ModelError(f"digest over unknown chains: {unknown}")
        document = dict(self._substrate_document())
        document["chains"] = [
            (
                c.name,
                c.ingress,
                c.egress,
                list(c.vnfs),
                list(c.forward_traffic),
                list(c.reverse_traffic),
            )
            for c in (self.chains[n] for n in chain_names)
        ]
        payload = json.dumps(document, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def substrate_digest(self) -> str:
        """A stable content hash of the substrate alone (hex SHA-256).

        Covers nodes, latencies, sites, the VNF catalog, links, routing
        fractions, and the MLU budget -- everything except the chains.
        Used by :class:`repro.scale.partition.PartitionPlan` to detect
        substrate edits (``fail_link``/``restore_link``) that must
        invalidate a stored partitioning even though the chain set is
        unchanged, and by ``repro.federation`` as the shard-map identity.
        """
        payload = json.dumps(
            self._substrate_document(), separators=(",", ":"), sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _substrate_document(self) -> dict:
        """The substrate portion of the digest document (cached).

        Sorting and flattening the substrate dominates digest cost on
        repeated calls (the solver farm digests once per partition), so
        the already-sorted fragments are built once and shared with
        ``copy_with_chains`` copies.
        """
        if self._substrate_doc is None:
            self._substrate_doc = {
                "nodes": sorted(self.nodes),
                "latency": sorted(
                    (n1, n2, d) for (n1, n2), d in self._latency.items()
                ),
                "sites": sorted(
                    (s.name, s.node, s.capacity) for s in self.sites.values()
                ),
                "vnfs": sorted(
                    (v.name, v.load_per_unit, sorted(v.site_capacity.items()))
                    for v in self.vnfs.values()
                ),
                "links": sorted(
                    (link.name, link.src, link.dst, link.bandwidth, link.background)
                    for link in self.links.values()
                ),
                "routing": sorted(
                    (n1, n2, sorted(fractions.items()))
                    for (n1, n2), fractions in self.routing.items()
                ),
                "mlu_limit": self.mlu_limit,
            }
        return self._substrate_doc

    def structure_digest(self) -> str:
        """Hash of the LP matrix *structure* this model induces.

        Unlike :meth:`digest`, demand magnitudes are excluded (only
        their zero/non-zero pattern matters to matrix sparsity) and
        chains are listed in iteration order (which fixes variable
        order).  Two models with equal structure digests produce
        constraint matrices with identical sparsity patterns and
        identical demand-independent entries, which is the contract the
        LP matrix caches rely on (see DESIGN.md).
        """
        document = dict(self._substrate_document())
        document["chain_structure"] = [
            (
                c.name,
                c.ingress,
                c.egress,
                list(c.vnfs),
                [w > 0 for w in c.forward_traffic],
                [v > 0 for v in c.reverse_traffic],
            )
            for c in self.chains.values()
        ]
        payload = json.dumps(document, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def capacity_structure_digest(self) -> str:
        """Hash of the capacity-planning LP structure this model induces.

        Like :meth:`structure_digest`, but site capacities and per-site
        VNF capacities are reduced to positivity flags: the cloud
        capacity planner refreshes those magnitudes into the RHS and the
        relief coefficients on every solve, so a budget sweep over
        proportionally grown models reuses one cached matrix structure.
        """
        document = dict(self._substrate_document())
        document["sites"] = sorted(
            (s.name, s.node, s.capacity > 0) for s in self.sites.values()
        )
        document["vnfs"] = sorted(
            (v.name, v.load_per_unit, sorted(v.site_capacity))
            for v in self.vnfs.values()
        )
        document["chain_structure"] = [
            (
                c.name,
                c.ingress,
                c.egress,
                list(c.vnfs),
                [w > 0 for w in c.forward_traffic],
                [v > 0 for v in c.reverse_traffic],
            )
            for c in self.chains.values()
        ]
        payload = json.dumps(document, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- aggregate views --------------------------------------------------

    def total_demand(self) -> float:
        """Sum of stage-1 forward+reverse demand across chains (offered load)."""
        return sum(c.stage_traffic(1) for c in self.chains.values())

    def copy_with_chains(self, chains: Iterable[Chain]) -> "NetworkModel":
        """A model sharing this substrate but with a different chain set."""
        clone = NetworkModel(
            nodes=self.nodes,
            latency=self._latency,
            sites=self.sites.values(),
            vnfs=self.vnfs.values(),
            chains=chains,
            links=self.links.values(),
            routing=self.routing,
            mlu_limit=self.mlu_limit,
        )
        # The substrate is shared, so its caches carry over.
        clone._substrate_columns = self._substrate_columns
        clone._substrate_doc = self._substrate_doc
        return clone

    def copy_with_vnfs(self, vnfs: Iterable[VNF]) -> "NetworkModel":
        """A model sharing this substrate but with a different VNF catalog."""
        return NetworkModel(
            nodes=self.nodes,
            latency=self._latency,
            sites=self.sites.values(),
            vnfs=vnfs,
            chains=self.chains.values(),
            links=self.links.values(),
            routing=self.routing,
            mlu_limit=self.mlu_limit,
        )

    def copy_with_sites(self, sites: Iterable[CloudSite]) -> "NetworkModel":
        """A model sharing this substrate but with different site capacities."""
        return NetworkModel(
            nodes=self.nodes,
            latency=self._latency,
            sites=sites,
            vnfs=self.vnfs.values(),
            chains=self.chains.values(),
            links=self.links.values(),
            routing=self.routing,
            mlu_limit=self.mlu_limit,
        )

    def __repr__(self) -> str:
        return (
            f"NetworkModel(nodes={len(self.nodes)}, sites={len(self.sites)}, "
            f"vnfs={len(self.vnfs)}, chains={len(self.chains)}, "
            f"links={len(self.links)})"
        )
