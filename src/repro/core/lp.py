"""SB-LP: the linear-programming chain routing of Section 4.3.

The decision variables are the paper's ``x_{c z n1 n2}`` -- the fraction
of chain ``c``'s stage-``z`` demand routed from ``n1`` to ``n2`` -- and
the formulation implements:

- the weighted-latency objective (Equation 3),
- per-site and per-(VNF, site) compute constraints (Equation 4),
- flow conservation at every intermediate site (Equation 5),
- the network-cost / MLU constraint over physical links (Equations 6-7).

Two objectives are provided, matching how the paper uses SB-LP in its
evaluation: ``MIN_LATENCY`` (Figure 12c and the E2E latency comparisons)
requires all demand to be carried and minimizes Equation 3, while
``MAX_THROUGHPUT`` (Figures 11/12a/12b) allows partial routing, maximizes
carried demand, and breaks ties toward lower latency.

The paper solves these programs with CPLEX inside OpenDaylight; we use
the HiGHS solver scipy ships, which solves the identical program.

Assembly and reuse
------------------
Constraint matrices are assembled as COO triplets from the columnar
model views (:mod:`repro.core.columns`) instead of per-variable Python
loops, and the assembled *structure* (sparsity pattern, demand-
independent coefficients, RHS, variable order) is cached keyed on
:meth:`NetworkModel.structure_digest`.  A re-solve after a demand change
-- a ``reoptimize()`` round, the solver farm's incremental ``resolve``
-- only refreshes the demand-scaled entries of the data vector with a
few vectorized multiplies.  ``MAX_THROUGHPUT`` programs (feasible at
zero flow) are solved through warm-started column generation
(:mod:`repro.core.highs`); the other objectives go through
``scipy.optimize.linprog`` on the cached matrix.

``solve_chain_routing_lp_reference`` keeps the original scalar assembly
and ``linprog`` solve as the ground truth the vectorized path is
property-tested against (equal matrices within 1e-9).
"""

from __future__ import annotations

import enum
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csc_matrix, csr_matrix

from repro.core import highs as highs_backend
from repro.core.columns import ragged_gather
from repro.core.model import NetworkModel
from repro.core.routes import RoutingSolution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry


class LpError(Exception):
    """Raised when the LP cannot be constructed."""


class LpObjective(enum.Enum):
    """Objective selection for :func:`solve_chain_routing_lp`.

    ``MIN_MLU`` minimizes the maximum link utilization -- the network
    operator's cost function of Section 4.1 ("a commonly used cost
    function for traffic engineering") -- while routing all demand; it
    turns the Equation 6 budget ``beta`` into the decision variable.
    """

    MIN_LATENCY = "min_latency"
    MAX_THROUGHPUT = "max_throughput"
    MIN_MLU = "min_mlu"


@dataclass
class LpResult:
    """Outcome of an SB-LP solve."""

    status: str
    objective: float | None
    solution: RoutingSolution | None
    num_variables: int
    num_constraints: int
    solve_seconds: float

    @property
    def ok(self) -> bool:
        return self.status == "optimal"


class _VariableSpace:
    """Index map for the sparse ``x_{c z n1 n2}`` variables."""

    def __init__(self, model: NetworkModel):
        self.model = model
        self.index: dict[tuple[str, int, str, str], int] = {}
        self.vars: list[tuple[str, int, str, str]] = []
        for name, chain in model.chains.items():
            for z in range(1, chain.num_stages + 1):
                for src in model.stage_sources(chain, z):
                    for dst in model.stage_destinations(chain, z):
                        key = (name, z, src, dst)
                        self.index[key] = len(self.vars)
                        self.vars.append(key)

    def __len__(self) -> int:
        return len(self.vars)


# ---------------------------------------------------------------------------
# Columnar assembly with structure caching
# ---------------------------------------------------------------------------

# Data-entry kinds: how a cached base coefficient scales with the current
# demands.  KIND_CONST entries never change on a cache hit.
_KIND_CONST = 0
_KIND_TOTAL = 1  # base * (w_cz + v_cz)
_KIND_FWD = 2  # base * w_cz
_KIND_REV = 3  # base * v_cz


@dataclass
class _MatrixStructure:
    """Everything about the LP that survives demand changes."""

    n_flow: int
    n_total: int
    beta_index: int | None
    # UB block (COO); entries scale with demand by kind.
    ub_rows: np.ndarray
    ub_cols: np.ndarray
    ub_base: np.ndarray
    ub_kind: np.ndarray
    ub_stage: np.ndarray
    b_ub: np.ndarray
    # EQ block: all entries demand-independent.
    eq_rows: np.ndarray
    eq_cols: np.ndarray
    eq_data: np.ndarray
    b_eq: np.ndarray
    # Per-variable structure for cost/extraction.
    var_stage: np.ndarray
    var_latency: np.ndarray
    stage1_vars: np.ndarray
    seed_columns: np.ndarray
    # Pre-split refresh index arrays (by kind).
    idx_total: np.ndarray = field(default=None)  # type: ignore[assignment]
    idx_fwd: np.ndarray = field(default=None)  # type: ignore[assignment]
    idx_rev: np.ndarray = field(default=None)  # type: ignore[assignment]
    # Warm-startable solver retained across solves of this structure.
    cg_solver: object | None = None

    def __post_init__(self) -> None:
        self.idx_total = np.flatnonzero(self.ub_kind == _KIND_TOTAL)
        self.idx_fwd = np.flatnonzero(self.ub_kind == _KIND_FWD)
        self.idx_rev = np.flatnonzero(self.ub_kind == _KIND_REV)

    def refreshed_ub_data(self, ch) -> np.ndarray:
        """UB data vector under the chain columns' current demands."""
        data = self.ub_base.copy()
        if self.idx_total.size:
            data[self.idx_total] *= ch.stage_total[self.ub_stage[self.idx_total]]
        if self.idx_fwd.size:
            data[self.idx_fwd] *= ch.stage_fwd[self.ub_stage[self.idx_fwd]]
        if self.idx_rev.size:
            data[self.idx_rev] *= ch.stage_rev[self.ub_stage[self.idx_rev]]
        return data


_MATRIX_CACHE: "OrderedDict[tuple, _MatrixStructure]" = OrderedDict()
_MATRIX_CACHE_LIMIT = 32
_MATRIX_REBUILDS = 0
_MATRIX_REUSE_HITS = 0


def matrix_cache_stats() -> dict[str, int]:
    """Warm-start observability: cache hit/rebuild counters."""
    return {
        "matrix_reuse_hits": _MATRIX_REUSE_HITS,
        "matrix_rebuilds": _MATRIX_REBUILDS,
        "cached_structures": len(_MATRIX_CACHE),
    }


def clear_matrix_cache() -> None:
    """Drop all cached constraint-matrix structures (tests)."""
    global _MATRIX_REBUILDS, _MATRIX_REUSE_HITS
    _MATRIX_CACHE.clear()
    _MATRIX_REBUILDS = 0
    _MATRIX_REUSE_HITS = 0


def _inverse_permutation(rank: np.ndarray) -> np.ndarray:
    out = np.empty(len(rank), dtype=np.int64)
    out[rank] = np.arange(len(rank), dtype=np.int64)
    return out


def _build_structure(
    model: NetworkModel, objective: LpObjective, enforce_mlu: bool
) -> _MatrixStructure:
    """Vectorized COO assembly of the SB-LP constraint matrix.

    Row and entry order replicate the scalar reference assembly exactly
    (see ``_scalar_program``): coverage rows first (dict order), then --
    in the equality block -- flow conservation; the inequality block
    continues with (VNF, site) rows sorted by name, per-site rows sorted
    by name, and link rows sorted by link name.
    """
    sub = model.substrate_columns()
    ch = model.chain_columns()
    vc = model.variable_columns()
    n = vc.n_vars
    n_chains = len(ch.chain_names)
    n_nodes = sub.n_nodes
    n_sites = len(sub.site_names)

    beta_index = n if objective is LpObjective.MIN_MLU else None
    n_total = n + (1 if beta_index is not None else 0)

    var_stage = vc.var_stage
    var_chain = ch.stage_chain[var_stage]
    var_z = ch.stage_z[var_stage]
    var_dst_vnf = ch.stage_dst_vnf[var_stage]
    var_src_vnf = ch.stage_src_vnf[var_stage]

    ub_rows: list[np.ndarray] = []
    ub_cols: list[np.ndarray] = []
    ub_base: list[np.ndarray] = []
    ub_kind: list[np.ndarray] = []
    ub_stage: list[np.ndarray] = []
    b_ub: list[np.ndarray] = []
    eq_rows: list[np.ndarray] = []
    eq_cols: list[np.ndarray] = []
    eq_data: list[np.ndarray] = []
    b_eq: list[np.ndarray] = []
    n_ub = 0
    n_eq = 0

    def add_ub_block(
        rows: np.ndarray,
        cols: np.ndarray,
        base: np.ndarray,
        kind: int | np.ndarray,
        stage: np.ndarray,
        bounds: np.ndarray,
    ) -> None:
        nonlocal n_ub
        ub_rows.append(np.asarray(rows, dtype=np.int64) + n_ub)
        ub_cols.append(np.asarray(cols, dtype=np.int64))
        ub_base.append(np.asarray(base, dtype=float))
        if np.isscalar(kind):
            ub_kind.append(np.full(len(rows), kind, dtype=np.int8))
        else:
            ub_kind.append(np.asarray(kind, dtype=np.int8))
        ub_stage.append(np.asarray(stage, dtype=np.int64))
        b_ub.append(np.asarray(bounds, dtype=float))
        n_ub += len(bounds)

    # -- demand coverage on stage-1 flows --------------------------------
    stage1_vars = np.flatnonzero(var_z == 1)
    cover_rows = var_chain[stage1_vars]
    cover_data = np.ones(stage1_vars.size)
    if objective is LpObjective.MAX_THROUGHPUT:
        add_ub_block(
            cover_rows,
            stage1_vars,
            cover_data,
            _KIND_CONST,
            np.full(stage1_vars.size, -1, dtype=np.int64),
            np.ones(n_chains),
        )
    else:
        eq_rows.append(cover_rows)
        eq_cols.append(stage1_vars)
        eq_data.append(cover_data)
        b_eq.append(np.ones(n_chains))
        n_eq += n_chains

    # -- flow conservation (Equation 5) ----------------------------------
    stage_has_cons = ch.stage_dst_vnf >= 0  # z < num_stages
    cons_per_stage = np.where(stage_has_cons, ch.dst_len, 0)
    cons_start = n_eq + np.cumsum(cons_per_stage) - cons_per_stage
    n_cons = int(cons_per_stage.sum())
    incoming = np.flatnonzero(var_dst_vnf >= 0)
    outgoing = np.flatnonzero(var_src_vnf >= 0)
    eq_rows.append(cons_start[var_stage[incoming]] + vc.var_dst_pos[incoming])
    eq_cols.append(incoming)
    eq_data.append(np.ones(incoming.size))
    eq_rows.append(cons_start[var_stage[outgoing] - 1] + vc.var_src_pos[outgoing])
    eq_cols.append(outgoing)
    eq_data.append(-np.ones(outgoing.size))
    b_eq.append(np.zeros(n_cons))
    n_eq += n_cons

    # -- compute constraints (Equation 4) --------------------------------
    cmp_vars = np.concatenate([incoming, outgoing])
    cmp_vnf = np.concatenate([var_dst_vnf[incoming], var_src_vnf[outgoing]])
    cmp_site = (
        np.concatenate([vc.var_dst_ep[incoming], vc.var_src_ep[outgoing]])
        - n_nodes
    )
    if cmp_vars.size and (cmp_site < 0).any():
        raise LpError("internal: VNF stage endpoint is not a site")
    if cmp_vars.size:
        site_stride = max(n_sites, 1)
        pair_key = sub.vnf_rank[cmp_vnf] * site_stride + sub.site_rank[cmp_site]
        uniq_pairs, pair_inverse = np.unique(pair_key, return_inverse=True)
        vnf_order = _inverse_permutation(sub.vnf_rank)
        site_order = _inverse_permutation(sub.site_rank)
        row_vnf = vnf_order[uniq_pairs // site_stride]
        row_site = site_order[uniq_pairs % site_stride]
        caps = np.array(
            [
                sub.vnf_site_cap.get((int(v), int(s)), np.nan)
                for v, s in zip(row_vnf, row_site)
            ]
        )
        if np.isnan(caps).any():
            bad = int(np.argmax(np.isnan(caps)))
            raise LpError(
                "internal: VNF "
                f"{sub.vnf_names[int(row_vnf[bad])]!r} routed at "
                f"non-deployment site {sub.site_names[int(row_site[bad])]!r}"
            )
        add_ub_block(
            pair_inverse,
            cmp_vars,
            sub.vnf_load[cmp_vnf],
            _KIND_TOTAL,
            var_stage[cmp_vars],
            caps,
        )

        # Per-site totals over the same entries.
        uniq_sites, site_inverse = np.unique(
            sub.site_rank[cmp_site], return_inverse=True
        )
        add_ub_block(
            site_inverse,
            cmp_vars,
            sub.vnf_load[cmp_vnf],
            _KIND_TOTAL,
            var_stage[cmp_vars],
            sub.site_capacity[site_order[uniq_sites]],
        )

    # -- network cost (Equations 6-7) ------------------------------------
    if (enforce_mlu or beta_index is not None) and sub.link_names and len(
        sub.pair_start
    ):
        ep_node = sub.endpoint_node
        n1 = ep_node[vc.var_src_ep]
        n2 = ep_node[vc.var_dst_ep]
        parts_vars: list[np.ndarray] = []
        parts_link: list[np.ndarray] = []
        parts_frac: list[np.ndarray] = []
        parts_kind: list[np.ndarray] = []
        for kind, demand, a, b in (
            (_KIND_FWD, ch.stage_fwd, n1, n2),
            (_KIND_REV, ch.stage_rev, n2, n1),
        ):
            mask = demand[var_stage] > 0
            pid = sub.pair_id[a, b]
            sel = np.flatnonzero(mask & (pid >= 0))
            pids = pid[sel]
            lens = sub.pair_len[pids]
            pool_idx, rows_of = ragged_gather(sub.pair_start[pids], lens)
            parts_vars.append(sel[rows_of])
            parts_link.append(sub.pool_link[pool_idx])
            parts_frac.append(sub.pool_frac[pool_idx])
            parts_kind.append(np.full(pool_idx.size, kind, dtype=np.int8))
        lnk_vars = np.concatenate(parts_vars)
        lnk_link = np.concatenate(parts_link)
        lnk_frac = np.concatenate(parts_frac)
        lnk_kind = np.concatenate(parts_kind)
        if lnk_vars.size:
            uniq_links, link_inverse = np.unique(
                sub.link_rank[lnk_link], return_inverse=True
            )
            link_order = _inverse_permutation(sub.link_rank)
            present = link_order[uniq_links]
            if beta_index is not None:
                bounds = -sub.link_background[present]
            else:
                bounds = sub.headroom()[present]
            base_row = n_ub
            add_ub_block(
                link_inverse,
                lnk_vars,
                lnk_frac,
                lnk_kind,
                var_stage[lnk_vars],
                bounds,
            )
            if beta_index is not None:
                # beta coefficient on every present-link row.
                ub_rows.append(base_row + np.arange(len(present), dtype=np.int64))
                ub_cols.append(np.full(len(present), beta_index, dtype=np.int64))
                ub_base.append(-sub.link_bandwidth[present])
                ub_kind.append(np.full(len(present), _KIND_CONST, dtype=np.int8))
                ub_stage.append(np.full(len(present), -1, dtype=np.int64))
        else:
            present = np.zeros(0, dtype=np.int64)
        if beta_index is not None:
            # Links Switchboard never touches still bound beta from below
            # (model dict order, matching the scalar reference).
            present_set = set(int(p) for p in present)
            absent = [
                li
                for li in range(len(sub.link_names))
                if li not in present_set and sub.link_background[li] > 0
            ]
            if absent:
                absent_arr = np.array(absent, dtype=np.int64)
                add_ub_block(
                    np.arange(len(absent), dtype=np.int64),
                    np.full(len(absent), beta_index, dtype=np.int64),
                    -sub.link_bandwidth[absent_arr],
                    _KIND_CONST,
                    np.full(len(absent), -1, dtype=np.int64),
                    -sub.link_background[absent_arr],
                )

    def concat(parts: list[np.ndarray], dtype) -> np.ndarray:
        if not parts:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(parts).astype(dtype, copy=False)

    # Seed columns for column generation: every stage-1 variable plus the
    # few lowest-latency variables of every other stage.
    counts = np.diff(vc.stage_var_start)
    order = np.lexsort((vc.var_latency, var_stage))
    pos_in_stage = np.arange(n, dtype=np.int64) - np.repeat(
        vc.stage_var_start[:-1], counts
    )
    cheap = order[pos_in_stage < 4]
    seed_columns = np.unique(np.concatenate([stage1_vars, cheap]))

    return _MatrixStructure(
        n_flow=n,
        n_total=n_total,
        beta_index=beta_index,
        ub_rows=concat(ub_rows, np.int64),
        ub_cols=concat(ub_cols, np.int64),
        ub_base=concat(ub_base, float),
        ub_kind=concat(ub_kind, np.int8),
        ub_stage=concat(ub_stage, np.int64),
        b_ub=concat(b_ub, float),
        eq_rows=concat(eq_rows, np.int64),
        eq_cols=concat(eq_cols, np.int64),
        eq_data=concat(eq_data, float),
        b_eq=concat(b_eq, float),
        var_stage=var_stage,
        var_latency=vc.var_latency,
        stage1_vars=stage1_vars,
        seed_columns=seed_columns,
    )


def _structure_for(
    model: NetworkModel,
    objective: LpObjective,
    enforce_mlu: bool,
    metrics: "MetricsRegistry | None",
) -> _MatrixStructure:
    global _MATRIX_REBUILDS, _MATRIX_REUSE_HITS
    key = (model.structure_digest(), objective.value, bool(enforce_mlu))
    structure = _MATRIX_CACHE.get(key)
    if structure is not None:
        _MATRIX_CACHE.move_to_end(key)
        _MATRIX_REUSE_HITS += 1
        if metrics is not None:
            metrics.counter("lp.matrix_reuse_hits").inc()
        return structure
    structure = _build_structure(model, objective, enforce_mlu)
    _MATRIX_REBUILDS += 1
    if metrics is not None:
        metrics.counter("lp.matrix_rebuilds").inc()
    _MATRIX_CACHE[key] = structure
    while len(_MATRIX_CACHE) > _MATRIX_CACHE_LIMIT:
        _MATRIX_CACHE.popitem(last=False)
    return structure


def _cost_vector(
    structure: _MatrixStructure,
    ch,
    objective: LpObjective,
    latency_tiebreak: float,
) -> np.ndarray:
    n = structure.n_flow
    var_traffic = ch.stage_total[structure.var_stage]
    weighted_latency = var_traffic * structure.var_latency
    latency_scale = float(np.max(weighted_latency)) if n else 1.0
    latency_scale = latency_scale or 1.0
    cost = np.zeros(structure.n_total)
    if objective is LpObjective.MIN_LATENCY:
        cost[:n] = weighted_latency
    elif objective is LpObjective.MIN_MLU:
        cost[structure.beta_index] = 1.0
        cost[:n] += (latency_tiebreak / latency_scale) * weighted_latency
    else:
        s1 = structure.stage1_vars
        np.subtract.at(cost, s1, ch.stage_total[structure.var_stage[s1]])
        min_demand = float(ch.stage_total[ch.stage_z == 1].min())
        cost[:n] += (
            latency_tiebreak * min_demand / latency_scale
        ) * weighted_latency
    return cost


def solve_chain_routing_lp(
    model: NetworkModel,
    objective: LpObjective = LpObjective.MIN_LATENCY,
    enforce_mlu: bool = True,
    latency_tiebreak: float = 1e-6,
    metrics: "MetricsRegistry | None" = None,
) -> LpResult:
    """Solve the chain-routing problem optimally.

    Parameters
    ----------
    model:
        The network model.  All chains in ``model.chains`` are routed
        jointly (this whole-network view is what distinguishes SB-LP from
        the distributed baselines).
    objective:
        ``MIN_LATENCY`` or ``MAX_THROUGHPUT`` (see module docstring).
    enforce_mlu:
        Apply the Equation 6 link constraint when the model defines links
        and routing fractions.
    latency_tiebreak:
        Relative weight of the latency term added to the max-throughput
        objective so that, among equal-throughput solutions, the lowest
        latency one is returned.
    """
    if not model.chains:
        raise LpError("model has no chains to route")
    if objective is LpObjective.MIN_MLU and not (model.links and model.routing):
        raise LpError("MIN_MLU requires links and routing fractions")

    structure = _structure_for(model, objective, enforce_mlu, metrics)
    ch = model.chain_columns()
    cost = _cost_vector(structure, ch, objective, latency_tiebreak)
    data_ub = structure.refreshed_ub_data(ch)
    n = structure.n_flow
    n_total = structure.n_total
    n_constraints = len(structure.b_ub) + len(structure.b_eq)

    x = None
    objective_value = None
    status = "optimal"
    elapsed = 0.0
    if (
        objective is LpObjective.MAX_THROUGHPUT
        and highs_backend.direct_backend_available()
    ):
        n_rows = len(structure.b_ub) + len(structure.b_eq)
        rows = np.concatenate(
            [structure.ub_rows, structure.eq_rows + len(structure.b_ub)]
        )
        cols = np.concatenate([structure.ub_cols, structure.eq_cols])
        data = np.concatenate([data_ub, structure.eq_data])
        matrix = csc_matrix((data, (rows, cols)), shape=(n_rows, n_total))
        row_lower = np.concatenate(
            [np.full(len(structure.b_ub), -np.inf), structure.b_eq]
        )
        row_upper = np.concatenate([structure.b_ub, structure.b_eq])
        if structure.cg_solver is None:
            structure.cg_solver = highs_backend.ColumnGenSolver()
        start = time.perf_counter()
        try:
            x, objective_value = structure.cg_solver.solve(
                cost,
                matrix,
                row_lower,
                row_upper,
                np.zeros(n_total),
                np.ones(n_total),
                seed_columns=structure.seed_columns,
            )
        except highs_backend.ColumnGenError:
            x = None  # fall through to linprog below
        elapsed = time.perf_counter() - start

    if x is None:
        a_ub = (
            csr_matrix(
                (data_ub, (structure.ub_rows, structure.ub_cols)),
                shape=(len(structure.b_ub), n_total),
            )
            if len(structure.b_ub)
            else None
        )
        a_eq = (
            csr_matrix(
                (structure.eq_data, (structure.eq_rows, structure.eq_cols)),
                shape=(len(structure.b_eq), n_total),
            )
            if len(structure.b_eq)
            else None
        )
        bounds: list[tuple[float, float | None]] = [(0.0, 1.0)] * n
        if structure.beta_index is not None:
            bounds.append((0.0, None))
        start = time.perf_counter()
        result = linprog(
            cost,
            A_ub=a_ub,
            b_ub=structure.b_ub if a_ub is not None else None,
            A_eq=a_eq,
            b_eq=structure.b_eq if a_eq is not None else None,
            bounds=bounds,
            method="highs",
        )
        elapsed = time.perf_counter() - start
        if not result.success:
            status = (
                "infeasible" if result.status == 2 else f"failed({result.status})"
            )
        else:
            x = np.asarray(result.x)
            if structure.beta_index is not None:
                objective_value = float(x[structure.beta_index])
            else:
                objective_value = float(result.fun)

    if metrics is not None:
        # Wall-clock solver time: here the interesting duration is how
        # long HiGHS takes on the host, not simulated seconds.
        metrics.histogram(
            "solver.lp_solve_s", objective=objective.value
        ).observe(elapsed)
        metrics.counter(
            "solver.lp_solves",
            objective=objective.value,
            ok=str(bool(x is not None)).lower(),
        ).inc()

    if x is None:
        return LpResult(status, None, None, n_total, n_constraints, elapsed)

    if objective is LpObjective.MIN_MLU:
        objective_value = float(x[structure.beta_index])

    solution = _extract_solution(model, x[:n])
    return LpResult(
        "optimal", objective_value, solution, n_total, n_constraints, elapsed
    )


def _extract_solution(model: NetworkModel, x: np.ndarray) -> RoutingSolution:
    """Build a :class:`RoutingSolution` from the flow-variable values."""
    sub = model.substrate_columns()
    ch = model.chain_columns()
    vc = model.variable_columns()
    solution = RoutingSolution(model)
    for i in np.flatnonzero(x > RoutingSolution.EPSILON):
        k = int(vc.var_stage[i])
        solution.add_flow(
            ch.chain_names[int(ch.stage_chain[k])],
            int(ch.stage_z[k]),
            sub.endpoint_names[int(vc.var_src_ep[i])],
            sub.endpoint_names[int(vc.var_dst_ep[i])],
            float(x[i]),
        )
    return solution


# ---------------------------------------------------------------------------
# Scalar reference implementation (pre-vectorization)
# ---------------------------------------------------------------------------


@dataclass
class _ScalarProgram:
    """The fully assembled reference program (for equivalence tests)."""

    cost: np.ndarray
    a_ub: csr_matrix | None
    b_ub: np.ndarray | None
    a_eq: csr_matrix | None
    b_eq: np.ndarray | None
    bounds: list[tuple[float, float | None]]
    space: _VariableSpace
    n_total: int


def _scalar_program(
    model: NetworkModel,
    objective: LpObjective,
    enforce_mlu: bool,
    latency_tiebreak: float,
) -> _ScalarProgram:
    """The original per-variable Python-loop assembly, kept verbatim."""
    space = _VariableSpace(model)
    n = len(space)
    # MIN_MLU adds the utilization variable beta after the flow variables.
    beta_index = n if objective is LpObjective.MIN_MLU else None
    n_total = n + (1 if beta_index is not None else 0)

    cost = np.zeros(n_total)
    demand_weight = np.zeros(n)  # (w_cz + v_cz) per variable
    latencies = np.zeros(n)
    for i, (cname, z, src, dst) in enumerate(space.vars):
        chain = model.chains[cname]
        demand_weight[i] = chain.stage_traffic(z)
        latencies[i] = model.site_latency(src, dst)

    weighted_latency = demand_weight * latencies

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_data: list[float] = []
    b_ub: list[float] = []
    b_eq: list[float] = []

    def add_ub(coeffs: dict[int, float], bound: float) -> None:
        row = len(b_ub)
        for col, val in coeffs.items():
            rows.append(row)
            cols.append(col)
            data.append(val)
        b_ub.append(bound)

    def add_eq(coeffs: dict[int, float], value: float) -> None:
        row = len(b_eq)
        for col, val in coeffs.items():
            eq_rows.append(row)
            eq_cols.append(col)
            eq_data.append(val)
        b_eq.append(value)

    # Demand-coverage constraints on stage-1 flows.
    for cname, chain in model.chains.items():
        coeffs: dict[int, float] = {}
        for src in model.stage_sources(chain, 1):
            for dst in model.stage_destinations(chain, 1):
                coeffs[space.index[(cname, 1, src, dst)]] = 1.0
        if objective is LpObjective.MAX_THROUGHPUT:
            add_ub(coeffs, 1.0)
        else:
            add_eq(coeffs, 1.0)

    # Flow conservation (Equation 5) at each intermediate site.
    for cname, chain in model.chains.items():
        for z in range(1, chain.num_stages):
            for site in model.stage_destinations(chain, z):
                coeffs = {}
                for src in model.stage_sources(chain, z):
                    coeffs[space.index[(cname, z, src, site)]] = 1.0
                for dst in model.stage_destinations(chain, z + 1):
                    idx = space.index[(cname, z + 1, site, dst)]
                    coeffs[idx] = coeffs.get(idx, 0.0) - 1.0
                add_eq(coeffs, 0.0)

    # Compute constraints (Equation 4): per (VNF, site) and per site.
    vnf_site_coeffs: dict[tuple[str, str], dict[int, float]] = {}
    for i, (cname, z, src, dst) in enumerate(space.vars):
        chain = model.chains[cname]
        traffic = chain.stage_traffic(z)
        if z < chain.num_stages:
            vnf_name = chain.vnf_at(z)
            load = model.vnfs[vnf_name].load_per_unit * traffic
            coeffs = vnf_site_coeffs.setdefault((vnf_name, dst), {})
            coeffs[i] = coeffs.get(i, 0.0) + load
        if z > 1:
            vnf_name = chain.vnf_at(z - 1)
            load = model.vnfs[vnf_name].load_per_unit * traffic
            coeffs = vnf_site_coeffs.setdefault((vnf_name, src), {})
            coeffs[i] = coeffs.get(i, 0.0) + load

    for (vnf_name, site), coeffs in sorted(vnf_site_coeffs.items()):
        cap = model.vnfs[vnf_name].site_capacity.get(site)
        if cap is None:
            raise LpError(
                f"internal: VNF {vnf_name!r} routed at non-deployment site {site!r}"
            )
        add_ub(coeffs, cap)

    site_coeffs: dict[str, dict[int, float]] = {}
    for (_vnf_name, site), coeffs in vnf_site_coeffs.items():
        merged = site_coeffs.setdefault(site, {})
        for col, val in coeffs.items():
            merged[col] = merged.get(col, 0.0) + val
    for site, coeffs in sorted(site_coeffs.items()):
        add_ub(coeffs, model.sites[site].capacity)

    # Network cost (Equations 6-7): per-link MLU budget, or -- for
    # MIN_MLU -- the same inequality with beta as a variable.
    if (enforce_mlu or beta_index is not None) and model.links and model.routing:
        link_coeffs: dict[str, dict[int, float]] = {}
        for i, (cname, z, src, dst) in enumerate(space.vars):
            chain = model.chains[cname]
            fwd = chain.forward_traffic[z - 1]
            rev = chain.reverse_traffic[z - 1]
            n1 = model.endpoint_node(src)
            n2 = model.endpoint_node(dst)
            if fwd > 0:
                for link_name, frac in model.links_between(n1, n2).items():
                    coeffs = link_coeffs.setdefault(link_name, {})
                    coeffs[i] = coeffs.get(i, 0.0) + fwd * frac
            if rev > 0:
                for link_name, frac in model.links_between(n2, n1).items():
                    coeffs = link_coeffs.setdefault(link_name, {})
                    coeffs[i] = coeffs.get(i, 0.0) + rev * frac
        for link_name, coeffs in sorted(link_coeffs.items()):
            link = model.links[link_name]
            if beta_index is not None:
                # g_e + traffic_e <= beta * b_e
                coeffs = dict(coeffs)
                coeffs[beta_index] = -link.bandwidth
                add_ub(coeffs, -link.background)
                continue
            # Background traffic may already exceed the MLU budget on a
            # link; Switchboard cannot reduce it, so its own traffic
            # there is simply forced to zero rather than making the
            # whole program infeasible.
            headroom = max(
                0.0, model.mlu_limit * link.bandwidth - link.background
            )
            add_ub(coeffs, headroom)
        if beta_index is not None:
            # Links Switchboard never touches still bound beta from below.
            for link_name, link in model.links.items():
                if link_name not in link_coeffs and link.background > 0:
                    add_ub({beta_index: -link.bandwidth}, -link.background)

    # Objective vector.
    padded_latency = np.zeros(n_total)
    padded_latency[:n] = weighted_latency
    latency_scale = float(np.max(weighted_latency)) or 1.0
    if objective is LpObjective.MIN_LATENCY:
        cost = padded_latency
    elif objective is LpObjective.MIN_MLU:
        cost[beta_index] = 1.0
        cost = cost + (latency_tiebreak / latency_scale) * padded_latency
    else:
        # Maximize carried stage-1 demand; minimize latency as a tiebreak.
        for cname, chain in model.chains.items():
            for src in model.stage_sources(chain, 1):
                for dst in model.stage_destinations(chain, 1):
                    cost[space.index[(cname, 1, src, dst)]] -= chain.stage_traffic(1)
        min_demand = min(c.stage_traffic(1) for c in model.chains.values())
        cost = cost + (latency_tiebreak * min_demand / latency_scale) * padded_latency

    a_ub = csr_matrix(
        (data, (rows, cols)), shape=(len(b_ub), n_total)
    ) if b_ub else None
    a_eq = csr_matrix(
        (eq_data, (eq_rows, eq_cols)), shape=(len(b_eq), n_total)
    ) if b_eq else None

    bounds: list[tuple[float, float | None]] = [(0.0, 1.0)] * n
    if beta_index is not None:
        bounds.append((0.0, None))

    return _ScalarProgram(
        cost=cost,
        a_ub=a_ub,
        b_ub=np.array(b_ub) if b_ub else None,
        a_eq=a_eq,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=bounds,
        space=space,
        n_total=n_total,
    )


def solve_chain_routing_lp_reference(
    model: NetworkModel,
    objective: LpObjective = LpObjective.MIN_LATENCY,
    enforce_mlu: bool = True,
    latency_tiebreak: float = 1e-6,
    metrics: "MetricsRegistry | None" = None,
) -> LpResult:
    """The pre-vectorization scalar path: loop assembly + ``linprog``.

    Kept as the ground truth for equivalence property tests; prefer
    :func:`solve_chain_routing_lp` everywhere else.
    """
    if not model.chains:
        raise LpError("model has no chains to route")
    if objective is LpObjective.MIN_MLU and not (model.links and model.routing):
        raise LpError("MIN_MLU requires links and routing fractions")

    program = _scalar_program(model, objective, enforce_mlu, latency_tiebreak)
    space = program.space
    n = len(space)
    beta_index = n if objective is LpObjective.MIN_MLU else None

    start = time.perf_counter()
    result = linprog(
        program.cost,
        A_ub=program.a_ub,
        b_ub=program.b_ub,
        A_eq=program.a_eq,
        b_eq=program.b_eq,
        bounds=program.bounds,
        method="highs",
    )
    elapsed = time.perf_counter() - start
    n_constraints = (0 if program.b_ub is None else len(program.b_ub)) + (
        0 if program.b_eq is None else len(program.b_eq)
    )
    if metrics is not None:
        metrics.histogram(
            "solver.lp_solve_s", objective=objective.value
        ).observe(elapsed)
        metrics.counter(
            "solver.lp_solves",
            objective=objective.value,
            ok=str(bool(result.success)).lower(),
        ).inc()

    if not result.success:
        status = "infeasible" if result.status == 2 else f"failed({result.status})"
        return LpResult(status, None, None, program.n_total, n_constraints, elapsed)

    solution = RoutingSolution(model)
    for i, (cname, z, src, dst) in enumerate(space.vars):
        value = float(result.x[i])
        if value > RoutingSolution.EPSILON:
            solution.add_flow(cname, z, src, dst, value)
    if beta_index is not None:
        objective_value = float(result.x[beta_index])  # the achieved MLU
    else:
        objective_value = float(result.fun)
    return LpResult(
        "optimal", objective_value, solution, program.n_total, n_constraints, elapsed
    )
