"""SB-LP: the linear-programming chain routing of Section 4.3.

The decision variables are the paper's ``x_{c z n1 n2}`` -- the fraction
of chain ``c``'s stage-``z`` demand routed from ``n1`` to ``n2`` -- and
the formulation implements:

- the weighted-latency objective (Equation 3),
- per-site and per-(VNF, site) compute constraints (Equation 4),
- flow conservation at every intermediate site (Equation 5),
- the network-cost / MLU constraint over physical links (Equations 6-7).

Two objectives are provided, matching how the paper uses SB-LP in its
evaluation: ``MIN_LATENCY`` (Figure 12c and the E2E latency comparisons)
requires all demand to be carried and minimizes Equation 3, while
``MAX_THROUGHPUT`` (Figures 11/12a/12b) allows partial routing, maximizes
carried demand, and breaks ties toward lower latency.

The paper solves these programs with CPLEX inside OpenDaylight; we use
``scipy.optimize.linprog`` (HiGHS), which solves the identical program.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.model import NetworkModel
from repro.core.routes import RoutingSolution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry


class LpError(Exception):
    """Raised when the LP cannot be constructed."""


class LpObjective(enum.Enum):
    """Objective selection for :func:`solve_chain_routing_lp`.

    ``MIN_MLU`` minimizes the maximum link utilization -- the network
    operator's cost function of Section 4.1 ("a commonly used cost
    function for traffic engineering") -- while routing all demand; it
    turns the Equation 6 budget ``beta`` into the decision variable.
    """

    MIN_LATENCY = "min_latency"
    MAX_THROUGHPUT = "max_throughput"
    MIN_MLU = "min_mlu"


@dataclass
class LpResult:
    """Outcome of an SB-LP solve."""

    status: str
    objective: float | None
    solution: RoutingSolution | None
    num_variables: int
    num_constraints: int
    solve_seconds: float

    @property
    def ok(self) -> bool:
        return self.status == "optimal"


class _VariableSpace:
    """Index map for the sparse ``x_{c z n1 n2}`` variables."""

    def __init__(self, model: NetworkModel):
        self.model = model
        self.index: dict[tuple[str, int, str, str], int] = {}
        self.vars: list[tuple[str, int, str, str]] = []
        for name, chain in model.chains.items():
            for z in range(1, chain.num_stages + 1):
                for src in model.stage_sources(chain, z):
                    for dst in model.stage_destinations(chain, z):
                        key = (name, z, src, dst)
                        self.index[key] = len(self.vars)
                        self.vars.append(key)

    def __len__(self) -> int:
        return len(self.vars)


def solve_chain_routing_lp(
    model: NetworkModel,
    objective: LpObjective = LpObjective.MIN_LATENCY,
    enforce_mlu: bool = True,
    latency_tiebreak: float = 1e-6,
    metrics: "MetricsRegistry | None" = None,
) -> LpResult:
    """Solve the chain-routing problem optimally.

    Parameters
    ----------
    model:
        The network model.  All chains in ``model.chains`` are routed
        jointly (this whole-network view is what distinguishes SB-LP from
        the distributed baselines).
    objective:
        ``MIN_LATENCY`` or ``MAX_THROUGHPUT`` (see module docstring).
    enforce_mlu:
        Apply the Equation 6 link constraint when the model defines links
        and routing fractions.
    latency_tiebreak:
        Relative weight of the latency term added to the max-throughput
        objective so that, among equal-throughput solutions, the lowest
        latency one is returned.
    """
    if not model.chains:
        raise LpError("model has no chains to route")
    if objective is LpObjective.MIN_MLU and not (model.links and model.routing):
        raise LpError("MIN_MLU requires links and routing fractions")

    space = _VariableSpace(model)
    n = len(space)
    # MIN_MLU adds the utilization variable beta after the flow variables.
    beta_index = n if objective is LpObjective.MIN_MLU else None
    n_total = n + (1 if beta_index is not None else 0)

    cost = np.zeros(n_total)
    demand_weight = np.zeros(n)  # (w_cz + v_cz) per variable
    latencies = np.zeros(n)
    for i, (cname, z, src, dst) in enumerate(space.vars):
        chain = model.chains[cname]
        demand_weight[i] = chain.stage_traffic(z)
        latencies[i] = model.site_latency(src, dst)

    weighted_latency = demand_weight * latencies

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_data: list[float] = []
    b_ub: list[float] = []
    b_eq: list[float] = []

    def add_ub(coeffs: dict[int, float], bound: float) -> None:
        row = len(b_ub)
        for col, val in coeffs.items():
            rows.append(row)
            cols.append(col)
            data.append(val)
        b_ub.append(bound)

    def add_eq(coeffs: dict[int, float], value: float) -> None:
        row = len(b_eq)
        for col, val in coeffs.items():
            eq_rows.append(row)
            eq_cols.append(col)
            eq_data.append(val)
        b_eq.append(value)

    # Demand-coverage constraints on stage-1 flows.
    for cname, chain in model.chains.items():
        coeffs: dict[int, float] = {}
        for src in model.stage_sources(chain, 1):
            for dst in model.stage_destinations(chain, 1):
                coeffs[space.index[(cname, 1, src, dst)]] = 1.0
        if objective is LpObjective.MAX_THROUGHPUT:
            add_ub(coeffs, 1.0)
        else:
            add_eq(coeffs, 1.0)

    # Flow conservation (Equation 5) at each intermediate site.
    for cname, chain in model.chains.items():
        for z in range(1, chain.num_stages):
            for site in model.stage_destinations(chain, z):
                coeffs = {}
                for src in model.stage_sources(chain, z):
                    coeffs[space.index[(cname, z, src, site)]] = 1.0
                for dst in model.stage_destinations(chain, z + 1):
                    idx = space.index[(cname, z + 1, site, dst)]
                    coeffs[idx] = coeffs.get(idx, 0.0) - 1.0
                add_eq(coeffs, 0.0)

    # Compute constraints (Equation 4): per (VNF, site) and per site.
    vnf_site_coeffs: dict[tuple[str, str], dict[int, float]] = {}
    for i, (cname, z, src, dst) in enumerate(space.vars):
        chain = model.chains[cname]
        traffic = chain.stage_traffic(z)
        if z < chain.num_stages:
            vnf_name = chain.vnf_at(z)
            load = model.vnfs[vnf_name].load_per_unit * traffic
            coeffs = vnf_site_coeffs.setdefault((vnf_name, dst), {})
            coeffs[i] = coeffs.get(i, 0.0) + load
        if z > 1:
            vnf_name = chain.vnf_at(z - 1)
            load = model.vnfs[vnf_name].load_per_unit * traffic
            coeffs = vnf_site_coeffs.setdefault((vnf_name, src), {})
            coeffs[i] = coeffs.get(i, 0.0) + load

    for (vnf_name, site), coeffs in sorted(vnf_site_coeffs.items()):
        cap = model.vnfs[vnf_name].site_capacity.get(site)
        if cap is None:
            raise LpError(
                f"internal: VNF {vnf_name!r} routed at non-deployment site {site!r}"
            )
        add_ub(coeffs, cap)

    site_coeffs: dict[str, dict[int, float]] = {}
    for (_vnf_name, site), coeffs in vnf_site_coeffs.items():
        merged = site_coeffs.setdefault(site, {})
        for col, val in coeffs.items():
            merged[col] = merged.get(col, 0.0) + val
    for site, coeffs in sorted(site_coeffs.items()):
        add_ub(coeffs, model.sites[site].capacity)

    # Network cost (Equations 6-7): per-link MLU budget, or -- for
    # MIN_MLU -- the same inequality with beta as a variable.
    if (enforce_mlu or beta_index is not None) and model.links and model.routing:
        link_coeffs: dict[str, dict[int, float]] = {}
        for i, (cname, z, src, dst) in enumerate(space.vars):
            chain = model.chains[cname]
            fwd = chain.forward_traffic[z - 1]
            rev = chain.reverse_traffic[z - 1]
            n1 = model.endpoint_node(src)
            n2 = model.endpoint_node(dst)
            if fwd > 0:
                for link_name, frac in model.links_between(n1, n2).items():
                    coeffs = link_coeffs.setdefault(link_name, {})
                    coeffs[i] = coeffs.get(i, 0.0) + fwd * frac
            if rev > 0:
                for link_name, frac in model.links_between(n2, n1).items():
                    coeffs = link_coeffs.setdefault(link_name, {})
                    coeffs[i] = coeffs.get(i, 0.0) + rev * frac
        for link_name, coeffs in sorted(link_coeffs.items()):
            link = model.links[link_name]
            if beta_index is not None:
                # g_e + traffic_e <= beta * b_e
                coeffs = dict(coeffs)
                coeffs[beta_index] = -link.bandwidth
                add_ub(coeffs, -link.background)
                continue
            # Background traffic may already exceed the MLU budget on a
            # link; Switchboard cannot reduce it, so its own traffic
            # there is simply forced to zero rather than making the
            # whole program infeasible.
            headroom = max(
                0.0, model.mlu_limit * link.bandwidth - link.background
            )
            add_ub(coeffs, headroom)
        if beta_index is not None:
            # Links Switchboard never touches still bound beta from below.
            for link_name, link in model.links.items():
                if link_name not in link_coeffs and link.background > 0:
                    add_ub({beta_index: -link.bandwidth}, -link.background)

    # Objective vector.
    padded_latency = np.zeros(n_total)
    padded_latency[:n] = weighted_latency
    latency_scale = float(np.max(weighted_latency)) or 1.0
    if objective is LpObjective.MIN_LATENCY:
        cost = padded_latency
    elif objective is LpObjective.MIN_MLU:
        cost[beta_index] = 1.0
        cost = cost + (latency_tiebreak / latency_scale) * padded_latency
    else:
        # Maximize carried stage-1 demand; minimize latency as a tiebreak.
        for cname, chain in model.chains.items():
            for src in model.stage_sources(chain, 1):
                for dst in model.stage_destinations(chain, 1):
                    cost[space.index[(cname, 1, src, dst)]] -= chain.stage_traffic(1)
        min_demand = min(c.stage_traffic(1) for c in model.chains.values())
        cost = cost + (latency_tiebreak * min_demand / latency_scale) * padded_latency

    a_ub = csr_matrix(
        (data, (rows, cols)), shape=(len(b_ub), n_total)
    ) if b_ub else None
    a_eq = csr_matrix(
        (eq_data, (eq_rows, eq_cols)), shape=(len(b_eq), n_total)
    ) if b_eq else None

    bounds: list[tuple[float, float | None]] = [(0.0, 1.0)] * n
    if beta_index is not None:
        bounds.append((0.0, None))

    start = time.perf_counter()
    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=a_eq,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    elapsed = time.perf_counter() - start
    n_constraints = len(b_ub) + len(b_eq)
    if metrics is not None:
        # Wall-clock solver time: here the interesting duration is how
        # long HiGHS takes on the host, not simulated seconds.
        metrics.histogram(
            "solver.lp_solve_s", objective=objective.value
        ).observe(elapsed)
        metrics.counter(
            "solver.lp_solves",
            objective=objective.value,
            ok=str(bool(result.success)).lower(),
        ).inc()

    if not result.success:
        status = "infeasible" if result.status == 2 else f"failed({result.status})"
        return LpResult(status, None, None, n_total, n_constraints, elapsed)

    solution = RoutingSolution(model)
    for i, (cname, z, src, dst) in enumerate(space.vars):
        value = float(result.x[i])
        if value > RoutingSolution.EPSILON:
            solution.add_flow(cname, z, src, dst, value)
    if beta_index is not None:
        objective_value = float(result.x[beta_index])  # the achieved MLU
    else:
        objective_value = float(result.fun)
    return LpResult(
        "optimal", objective_value, solution, n_total, n_constraints, elapsed
    )
