"""Distributed load-balancing baselines from Sections 7.2 and 7.3.

- **ANYCAST** routes each chain hop-by-hop to the VNF site with the
  lowest propagation delay, ignoring both compute capacity and network
  load (Section 7.2: "similar to anycast routing").
- **COMPUTE-AWARE** also considers sites in latency order, but skips a
  site whose VNF lacks sufficient *compute* capacity; it remains blind to
  network link load.

Both schemes lack Switchboard's visibility across chains, VNFs, and
sites, which is exactly what Figures 11 and 12 quantify.  Because these
schemes route without admission control, their offered routing can
oversubscribe resources; :func:`scale_to_capacity` converts an offered
routing into the *carried* routing by scaling each chain down by the
worst oversubscription ratio it traverses (a proportional-fairness
congestion model), which is how the throughput numbers in the benches
are produced.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.model import Chain, NetworkModel
from repro.core.routes import RoutingSolution

_EPS = 1e-9


def route_anycast(model: NetworkModel) -> RoutingSolution:
    """Route every chain to the nearest VNF instance per hop.

    The returned solution is *offered* routing: capacities are ignored
    entirely.  Pass it through :func:`scale_to_capacity` for carried
    throughput, as the Figure 11/12 benches do.
    """
    solution = RoutingSolution(model)
    for name, chain in model.chains.items():
        path = _nearest_site_path(model, chain)
        if path is not None:
            solution.add_path(name, path, 1.0)
    return solution


def _nearest_site_path(model: NetworkModel, chain: Chain) -> list[str] | None:
    path = [chain.ingress]
    current = chain.ingress
    for z in range(1, chain.num_stages + 1):
        dests = model.stage_destinations(chain, z)
        if not dests:
            return None
        best = min(
            dests,
            key=lambda dst, at=current: (model.site_latency(at, dst), dst),
        )
        path.append(best)
        current = best
    return path


def route_compute_aware(model: NetworkModel) -> RoutingSolution:
    """Latency-ordered site selection with a compute-capacity check.

    Chains are processed sequentially; each hop picks the nearest site
    whose VNF still has enough residual compute for the chain's entire
    demand at that site (matching the paper's description: "it does not
    pick a site if it does not have sufficient compute capacity").  If no
    site fits the whole demand, the least-loaded-by-latency-order site is
    split across: the chain takes whatever fraction the best site can
    carry and overflows the rest to the next site in latency order.
    Network link load is never consulted.
    """
    solution = RoutingSolution(model)
    vnf_load: dict[tuple[str, str], float] = defaultdict(float)
    site_load: dict[str, float] = defaultdict(float)

    for chain in model.chains.values():
        _route_one_compute_aware(model, chain, solution, vnf_load, site_load)
        _trim_to_goodput(solution, chain)
    return solution


def _trim_to_goodput(solution: RoutingSolution, chain: Chain) -> None:
    """Restore flow conservation after mid-chain admission failures.

    Greedy per-hop admission can strand traffic at a VNF whose downstream
    stage had no capacity; such traffic still *consumed* upstream compute
    (the load dictionaries keep it) but is not delivered.  The returned
    routing must describe delivered traffic only, so trim each stage's
    incoming flows back to what the following stage carries, walking from
    the egress toward the ingress.
    """
    for z in range(chain.num_stages - 1, 0, -1):
        incoming: dict[str, float] = defaultdict(float)
        outgoing: dict[str, float] = defaultdict(float)
        for (_src, dst), frac in solution.stage_flows(chain.name, z).items():
            incoming[dst] += frac
        for (src, _dst), frac in solution.stage_flows(
            chain.name, z + 1
        ).items():
            outgoing[src] += frac
        for site, in_frac in incoming.items():
            out_frac = outgoing.get(site, 0.0)
            if in_frac <= out_frac + _EPS:
                continue
            factor = out_frac / in_frac if in_frac > 0 else 0.0
            for (src, dst), frac in solution.stage_flows(
                chain.name, z
            ).items():
                if dst == site:
                    solution.set_flow(chain.name, z, src, dst, frac * factor)


def _route_one_compute_aware(
    model: NetworkModel,
    chain: Chain,
    solution: RoutingSolution,
    vnf_load: dict[tuple[str, str], float],
    site_load: dict[str, float],
) -> None:
    # Fractions of the chain's demand sitting at each current location.
    at: dict[str, float] = {chain.ingress: 1.0}
    for z in range(1, chain.num_stages + 1):
        next_at: dict[str, float] = defaultdict(float)
        if z == chain.num_stages:
            # Egress consumes no compute; forward everything.
            for src, frac in at.items():
                solution.add_flow(chain.name, z, src, chain.egress, frac)
                next_at[chain.egress] += frac
            at = dict(next_at)
            continue

        vnf_name = chain.vnf_at(z)
        vnf = model.vnfs[vnf_name]
        per_unit = vnf.load_per_unit * (
            chain.stage_traffic(z) + chain.stage_traffic(z + 1)
        )
        for src, frac in at.items():
            remaining = frac
            for dst in sorted(
                model.vnf_sites(vnf_name),
                key=lambda s, src=src: (model.site_latency(src, s), s),
            ):
                if remaining <= _EPS:
                    break
                cap = vnf.site_capacity[dst]
                site_cap = model.sites[dst].capacity
                residual = min(
                    cap - vnf_load[(vnf_name, dst)],
                    site_cap - site_load[dst],
                )
                if residual <= _EPS:
                    continue
                take = remaining
                if per_unit > 0:
                    take = min(remaining, residual / per_unit)
                if take <= _EPS:
                    continue
                solution.add_flow(chain.name, z, src, dst, take)
                vnf_load[(vnf_name, dst)] += per_unit * take
                site_load[dst] += per_unit * take
                next_at[dst] += take
                remaining -= take
            # Any remainder is simply not admitted (compute everywhere full).
        at = dict(next_at)
        if not at:
            return


def scale_to_capacity(solution: RoutingSolution) -> RoutingSolution:
    """Convert offered routing into carried routing under capacities.

    For every resource (VNF-site, site, link) compute its oversubscription
    ratio ``load / capacity``.  Each chain is then scaled down by the
    worst ratio over the resources its flows traverse (capped at 1).
    This models proportional sharing at congested resources without
    simulating per-packet queueing and is applied uniformly to every
    scheme so that throughput comparisons are apples-to-apples.
    """
    model = solution.model
    vnf_ratio: dict[tuple[str, str], float] = {}
    for (vnf, site), load in solution.vnf_site_loads().items():
        cap = model.vnfs[vnf].site_capacity.get(site, 0.0)
        vnf_ratio[(vnf, site)] = load / cap if cap > 0 else float("inf")
    site_ratio: dict[str, float] = {}
    for site, load in solution.site_loads().items():
        cap = model.sites[site].capacity if site in model.sites else 0.0
        site_ratio[site] = load / cap if cap > 0 else float("inf")
    link_ratio: dict[str, float] = {}
    if model.links:
        traffic = solution.link_traffic()
        for name, link in model.links.items():
            headroom = model.link_headroom(link)
            used = traffic.get(name, 0.0)
            if used <= 0:
                continue
            link_ratio[name] = used / headroom if headroom > 0 else float("inf")

    scaled = RoutingSolution(model)
    for cname, chain in model.chains.items():
        worst = 1.0
        flows = [
            (z, pair, frac)
            for z in range(1, chain.num_stages + 1)
            for pair, frac in solution.stage_flows(cname, z).items()
        ]
        if not flows:
            continue
        for z, (src, dst), frac in flows:
            if frac <= _EPS:
                continue
            if z < chain.num_stages:
                vnf = chain.vnf_at(z)
                worst = max(worst, vnf_ratio.get((vnf, dst), 1.0))
                worst = max(worst, site_ratio.get(dst, 1.0))
            if z > 1:
                vnf = chain.vnf_at(z - 1)
                worst = max(worst, vnf_ratio.get((vnf, src), 1.0))
                worst = max(worst, site_ratio.get(src, 1.0))
            n1, n2 = model.endpoint_node(src), model.endpoint_node(dst)
            fwd = chain.forward_traffic[z - 1]
            rev = chain.reverse_traffic[z - 1]
            for direction, volume in (((n1, n2), fwd), ((n2, n1), rev)):
                if volume <= 0:
                    continue
                for link_name in model.links_between(*direction):
                    worst = max(worst, link_ratio.get(link_name, 1.0))
        factor = 0.0 if worst == float("inf") else 1.0 / worst
        if factor <= _EPS:
            continue
        for z, (src, dst), frac in flows:
            scaled.add_flow(cname, z, src, dst, frac * factor)
    return scaled


__all__ = [
    "route_anycast",
    "route_compute_aware",
    "scale_to_capacity",
]
