"""Global Switchboard traffic engineering (the paper's Section 4).

Public surface:

- :mod:`repro.core.model` -- the network model of Table 1.
- :mod:`repro.core.routes` -- routing solutions (the ``x_czn1n2``
  variables) and derived metrics (latency objective, site/VNF loads,
  link utilization).
- :mod:`repro.core.costs` -- the piecewise-linear convex utilization
  penalty used by the dynamic-programming heuristic.
- :mod:`repro.core.lp` -- SB-LP: the optimal linear program (Section 4.3).
- :mod:`repro.core.dp` -- SB-DP: the dynamic-programming heuristic
  (Section 4.4) plus its ablations (DP-LATENCY, ONEHOP).
- :mod:`repro.core.baselines` -- ANYCAST and COMPUTE-AWARE distributed
  load balancing (Section 7.2/7.3).
- :mod:`repro.core.capacity` -- VNF and cloud capacity planning
  (Sections 4.2/4.3).
"""

from repro.core.baselines import route_anycast, route_compute_aware
from repro.core.capacity import (
    CloudCapacityPlan,
    VnfPlacementPlan,
    plan_cloud_capacity,
    plan_vnf_placement,
)
from repro.core.costs import PiecewiseLinearCost, fortz_thorup_cost
from repro.core.dp import DpConfig, route_chains_dp
from repro.core.lp import LpObjective, LpResult, solve_chain_routing_lp
from repro.core.model import Chain, CloudSite, Link, NetworkModel, VNF
from repro.core.multipoint import MultipointChain, summarize_multipoint
from repro.core.routes import RoutingSolution, StageFlow
from repro.core.serialization import (
    model_from_json,
    model_to_json,
    spec_from_json,
    spec_to_json,
)

__all__ = [
    "Chain",
    "CloudCapacityPlan",
    "CloudSite",
    "DpConfig",
    "Link",
    "LpObjective",
    "LpResult",
    "NetworkModel",
    "PiecewiseLinearCost",
    "RoutingSolution",
    "StageFlow",
    "VNF",
    "VnfPlacementPlan",
    "fortz_thorup_cost",
    "model_from_json",
    "MultipointChain",
    "model_to_json",
    "plan_cloud_capacity",
    "plan_vnf_placement",
    "route_anycast",
    "route_chains_dp",
    "route_compute_aware",
    "solve_chain_routing_lp",
    "spec_from_json",
    "summarize_multipoint",
    "spec_to_json",
]
