"""Brute-force chain routing, for verification only.

Enumerates every site path for a chain and returns the cheapest by
propagation latency.  Exponential in chain length (``|S|^|F_c|``), so it
only exists to anchor correctness tests: on instances small enough to
enumerate, SB-DP with a latency-only cost function must match the
brute-force optimum exactly, and the full SB-DP must never do better
than it (latency-wise) at zero load.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.model import Chain, NetworkModel


class BruteForceError(Exception):
    """Raised when enumeration would be intractable."""


@dataclass(frozen=True)
class BrutePath:
    """One enumerated chain path and its propagation latency."""

    sites: tuple[str, ...]
    latency: float


def enumerate_paths(
    model: NetworkModel, chain: Chain, max_paths: int = 200_000
) -> list[BrutePath]:
    """All (ingress, site_1, ..., site_k, egress) paths with latencies."""
    site_lists = [
        model.vnf_sites(vnf_name) for vnf_name in chain.vnfs
    ]
    count = 1
    for sites in site_lists:
        count *= max(1, len(sites))
        if count > max_paths:
            raise BruteForceError(
                f"{count}+ paths exceed the enumeration cap {max_paths}"
            )
    paths = []
    for combo in itertools.product(*site_lists):
        sites = (chain.ingress, *combo, chain.egress)
        latency = sum(
            model.site_latency(a, b) for a, b in zip(sites, sites[1:])
        )
        paths.append(BrutePath(sites, latency))
    return paths


def min_latency_path(model: NetworkModel, chain: Chain) -> BrutePath:
    """The provably latency-optimal path (ties broken lexicographically)."""
    paths = enumerate_paths(model, chain)
    if not paths:
        raise BruteForceError(f"chain {chain.name!r} has no paths")
    return min(paths, key=lambda p: (p.latency, p.sites))
