"""JSON serialization of the network model and chain specifications.

Section 4.5: "The parameters of the network model (Table 1) for Global
Switchboard are defined using the YANG data modeling language and data
entries are stored as JSON objects."  This module is the JSON half of
that: a stable, versioned document format for the Table 1 model and for
customer chain specifications, with validation on load.  The CLI and
the replicated controller store both use plain dicts, so these documents
are also what a standby controller or an external orchestrator (the
paper's ONAP discussion) would exchange.
"""

from __future__ import annotations

import json
from typing import Any

from repro.controller.chainspec import ChainSpecification
from repro.core.model import Chain, CloudSite, Link, NetworkModel, VNF

SCHEMA_VERSION = 1


class SerializationError(Exception):
    """Raised on malformed documents."""


# ---------------------------------------------------------------------------
# NetworkModel
# ---------------------------------------------------------------------------


def model_to_dict(model: NetworkModel) -> dict[str, Any]:
    """The Table 1 model as a JSON-compatible document."""
    return {
        "schema_version": SCHEMA_VERSION,
        "nodes": list(model.nodes),
        "latency": [
            {"from": n1, "to": n2, "delay_ms": delay}
            for (n1, n2), delay in sorted(model._latency.items())
        ],
        "sites": [
            {"name": s.name, "node": s.node, "capacity": s.capacity}
            for s in model.sites.values()
        ],
        "vnfs": [
            {
                "name": v.name,
                "load_per_unit": v.load_per_unit,
                "site_capacity": dict(v.site_capacity),
            }
            for v in model.vnfs.values()
        ],
        "chains": [
            {
                "name": c.name,
                "ingress": c.ingress,
                "egress": c.egress,
                "vnfs": list(c.vnfs),
                "forward_traffic": list(c.forward_traffic),
                "reverse_traffic": list(c.reverse_traffic),
            }
            for c in model.chains.values()
        ],
        "links": [
            {
                "name": link.name,
                "src": link.src,
                "dst": link.dst,
                "bandwidth": link.bandwidth,
                "background": link.background,
            }
            for link in model.links.values()
        ],
        "routing": [
            {"from": n1, "to": n2, "fractions": dict(fractions)}
            for (n1, n2), fractions in sorted(model.routing.items())
        ],
        "mlu_limit": model.mlu_limit,
    }


def model_from_dict(document: dict[str, Any]) -> NetworkModel:
    """Parse and validate a model document (raises on malformed input)."""
    try:
        version = document["schema_version"]
        if version != SCHEMA_VERSION:
            raise SerializationError(
                f"unsupported schema version {version!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        latency = {
            (entry["from"], entry["to"]): float(entry["delay_ms"])
            for entry in document.get("latency", [])
        }
        sites = [
            CloudSite(s["name"], s["node"], float(s["capacity"]))
            for s in document.get("sites", [])
        ]
        vnfs = [
            VNF(
                v["name"],
                float(v["load_per_unit"]),
                {k: float(c) for k, c in v["site_capacity"].items()},
            )
            for v in document.get("vnfs", [])
        ]
        chains = [
            Chain(
                c["name"],
                c["ingress"],
                c["egress"],
                c["vnfs"],
                c["forward_traffic"],
                c["reverse_traffic"],
            )
            for c in document.get("chains", [])
        ]
        links = [
            Link(
                link["name"], link["src"], link["dst"],
                float(link["bandwidth"]), float(link.get("background", 0.0)),
            )
            for link in document.get("links", [])
        ]
        routing = {
            (entry["from"], entry["to"]): {
                k: float(f) for k, f in entry["fractions"].items()
            }
            for entry in document.get("routing", [])
        }
        return NetworkModel(
            nodes=document["nodes"],
            latency=latency,
            sites=sites,
            vnfs=vnfs,
            chains=chains,
            links=links,
            routing=routing,
            mlu_limit=float(document.get("mlu_limit", 1.0)),
        )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed model document: {exc}") from exc


def model_to_json(model: NetworkModel, indent: int | None = 2) -> str:
    return json.dumps(model_to_dict(model), indent=indent)


def model_from_json(text: str) -> NetworkModel:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise SerializationError("model document must be a JSON object")
    return model_from_dict(document)


# ---------------------------------------------------------------------------
# ChainSpecification
# ---------------------------------------------------------------------------


def spec_to_dict(spec: ChainSpecification) -> dict[str, Any]:
    """A chain specification as the portal would submit it."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": spec.name,
        "edge_service": spec.edge_service,
        "ingress_attachment": spec.ingress_attachment,
        "egress_attachment": spec.egress_attachment,
        "vnf_services": list(spec.vnf_services),
        "forward_demand": spec.forward_demand,
        "reverse_demand": spec.reverse_demand,
        "src_prefix": spec.src_prefix,
        "dst_prefixes": list(spec.dst_prefixes),
        "protocol": spec.protocol,
        "dst_port_range": list(spec.dst_port_range)
        if spec.dst_port_range
        else None,
    }


def spec_from_dict(document: dict[str, Any]) -> ChainSpecification:
    try:
        version = document["schema_version"]
        if version != SCHEMA_VERSION:
            raise SerializationError(
                f"unsupported schema version {version!r}"
            )
        port_range = document.get("dst_port_range")
        return ChainSpecification(
            document["name"],
            document["edge_service"],
            document["ingress_attachment"],
            document["egress_attachment"],
            document["vnf_services"],
            forward_demand=float(document.get("forward_demand", 1.0)),
            reverse_demand=float(document.get("reverse_demand", 0.0)),
            src_prefix=document.get("src_prefix"),
            dst_prefixes=document.get("dst_prefixes", ()),
            protocol=document.get("protocol"),
            dst_port_range=tuple(port_range) if port_range else None,
        )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed chain document: {exc}") from exc


def spec_to_json(spec: ChainSpecification, indent: int | None = 2) -> str:
    return json.dumps(spec_to_dict(spec), indent=indent)


def spec_from_json(text: str) -> ChainSpecification:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise SerializationError("chain document must be a JSON object")
    return spec_from_dict(document)
