"""Multi-ingress / multi-egress chains (the generalization the paper
omits "for ease of exposition", Section 4.1).

An enterprise chain rarely has one ingress and one egress: a customer
with several offices wants the same chain from every office to every
other.  The data plane already supports this shape -- the egress-site
label is per *packet*, so one chain label can fan out to many egresses,
and Section 6's on-demand edge addition grafts extra ingresses.

On the traffic-engineering side, a multipoint chain decomposes exactly
into one (ingress, egress) sub-chain per pair: the packet's egress is
fixed by its destination address, so the per-pair demand is the chain
total split by the ingress shares times, per ingress, the distribution
over egresses.  The sub-chains share the chain's VNFs (and therefore its
capacity via normal joint optimization), which is precisely how the
prototype realizes it (a route per (chain label, egress label) pair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.model import Chain
from repro.core.routes import RoutingSolution


class MultipointError(Exception):
    """Raised on malformed multipoint specifications."""


@dataclass(frozen=True)
class MultipointChain:
    """A chain with weighted ingress and egress node sets.

    ``ingress_shares`` gives each ingress node's fraction of the total
    demand (they must sum to 1); ``egress_shares`` distributes each
    ingress's traffic over egresses.  An ingress that is also an egress
    never sends to itself; its egress shares are renormalized over the
    remaining egresses.
    """

    name: str
    ingress_shares: Mapping[str, float]
    egress_shares: Mapping[str, float]
    vnfs: tuple[str, ...]
    forward_demand: float
    reverse_demand: float = 0.0

    def __init__(
        self,
        name: str,
        ingress_shares: Mapping[str, float],
        egress_shares: Mapping[str, float],
        vnfs,
        forward_demand: float,
        reverse_demand: float = 0.0,
    ):
        for label, shares in (
            ("ingress", ingress_shares), ("egress", egress_shares)
        ):
            if not shares:
                raise MultipointError(f"chain {name!r}: empty {label} set")
            if any(s <= 0 for s in shares.values()):
                raise MultipointError(
                    f"chain {name!r}: non-positive {label} share"
                )
            total = sum(shares.values())
            if abs(total - 1.0) > 1e-6:
                raise MultipointError(
                    f"chain {name!r}: {label} shares sum to {total}, not 1"
                )
        if forward_demand < 0 or reverse_demand < 0:
            raise MultipointError(f"chain {name!r}: negative demand")
        if set(ingress_shares) == set(egress_shares) and len(ingress_shares) == 1:
            raise MultipointError(
                f"chain {name!r}: sole ingress equals sole egress"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "ingress_shares", dict(ingress_shares))
        object.__setattr__(self, "egress_shares", dict(egress_shares))
        object.__setattr__(self, "vnfs", tuple(vnfs))
        object.__setattr__(self, "forward_demand", forward_demand)
        object.__setattr__(self, "reverse_demand", reverse_demand)

    def pair_name(self, ingress: str, egress: str) -> str:
        return f"{self.name}@{ingress}>{egress}"

    def expand(self) -> list[Chain]:
        """The per-(ingress, egress) sub-chains with split demands."""
        chains: list[Chain] = []
        for ingress, in_share in sorted(self.ingress_shares.items()):
            egresses = {
                e: s for e, s in self.egress_shares.items() if e != ingress
            }
            norm = sum(egresses.values())
            if norm <= 0:
                raise MultipointError(
                    f"chain {self.name!r}: ingress {ingress!r} has no "
                    "egress to send to"
                )
            for egress, e_share in sorted(egresses.items()):
                weight = in_share * e_share / norm
                chains.append(
                    Chain(
                        self.pair_name(ingress, egress),
                        ingress,
                        egress,
                        self.vnfs,
                        self.forward_demand * weight,
                        self.reverse_demand * weight,
                    )
                )
        return chains


@dataclass
class MultipointSummary:
    """Aggregated view of a routed multipoint chain."""

    name: str
    carried_fraction: float
    mean_latency_ms: float
    #: (ingress, egress) -> carried fraction of that pair's demand.
    pair_fractions: dict[tuple[str, str], float] = field(default_factory=dict)


def summarize_multipoint(
    chain: MultipointChain, solution: RoutingSolution
) -> MultipointSummary:
    """Aggregate a routing solution's per-pair results back to the chain."""
    total_demand = 0.0
    carried = 0.0
    latency_weight = 0.0
    pair_fractions: dict[tuple[str, str], float] = {}
    for sub in chain.expand():
        if sub.name not in solution.model.chains:
            raise MultipointError(
                f"sub-chain {sub.name!r} is not in the routed model"
            )
        demand = sub.stage_traffic(1)
        fraction = solution.routed_fraction(sub.name)
        total_demand += demand
        carried += fraction * demand
        if fraction > 1e-9:
            latency_weight += (
                fraction * demand * solution.chain_latency(sub.name)
            )
        ingress, egress = sub.ingress, sub.egress
        pair_fractions[(ingress, egress)] = fraction
    mean_latency = latency_weight / carried if carried > 0 else float("inf")
    return MultipointSummary(
        chain.name,
        carried / total_demand if total_demand > 0 else 0.0,
        mean_latency,
        pair_fractions,
    )
