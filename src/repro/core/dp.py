"""SB-DP: the dynamic-programming routing heuristic of Section 4.4.

For one chain, the algorithm builds the table ``E(z, s)`` -- the least
cost of a route through the first ``z`` chain nodes that ends at site
``s`` -- using the recurrence of Equation 8::

    E(z + 1, s) = min over s' of E(z, s') + cost(s', z, s)

where ``cost`` combines propagation latency, network-utilization cost,
and compute-utilization cost, the utilization terms using a
piecewise-linear convex penalty (Fortz--Thorup) that grows steeply above
50% utilization.  The least-cost route is recovered by walking the table
backwards from the egress.  If resource constraints let the route carry
only part of the chain's traffic, the algorithm repeats on the residual
capacities until the chain is fully routed or no capacity remains.

Multi-chain workloads are routed sequentially, each chain seeing the
utilization left behind by its predecessors -- this is the "computationally
efficient routing heuristic" evaluated against SB-LP in Section 7.3.

Two ablations from Figure 13a are expressed as configurations:

- ``DpConfig.latency_only()`` -- DP-LATENCY: the cost function degenerates
  to propagation delay (capacities are still *enforced*, they just do not
  steer route choice).
- ``DpConfig.one_hop()`` -- ONEHOP: the same cost function but applied
  greedily one stage at a time instead of over the whole chain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, TYPE_CHECKING

from repro.core.costs import FORTZ_THORUP, PiecewiseLinearCost
from repro.core.model import Chain, NetworkModel
from repro.core.routes import RoutingSolution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

_EPS = 1e-9
_INF = float("inf")


@dataclass(frozen=True)
class DpConfig:
    """Tuning knobs for :func:`route_chains_dp`.

    ``utilization_weight`` scales the dimensionless utilization penalty
    into latency units; ``None`` picks ``network diameter / penalty(1.0)``
    so that a fully-utilized resource costs about one diameter crossing.
    """

    use_network_cost: bool = True
    use_compute_cost: bool = True
    per_hop: bool = False
    utilization_weight: float | None = None
    penalty: PiecewiseLinearCost = field(default=FORTZ_THORUP)
    max_paths_per_chain: int = 64
    sort_by_demand: bool = False

    @staticmethod
    def latency_only() -> "DpConfig":
        """The DP-LATENCY ablation of Figure 13a."""
        return DpConfig(use_network_cost=False, use_compute_cost=False)

    @staticmethod
    def one_hop() -> "DpConfig":
        """The ONEHOP ablation of Figure 13a."""
        return DpConfig(per_hop=True)


class _ResourceState:
    """Mutable residual-capacity state shared across sequentially routed
    chains: VNF loads, site loads, and link loads."""

    def __init__(self, model: NetworkModel):
        self.model = model
        self.vnf_load: dict[tuple[str, str], float] = {}
        self.site_load: dict[str, float] = {}
        self.link_load: dict[str, float] = {
            name: link.background for name, link in model.links.items()
        }

    # -- residual capacities -------------------------------------------

    def vnf_residual(self, vnf: str, site: str) -> float:
        cap = self.model.vnfs[vnf].site_capacity.get(site, 0.0)
        return cap - self.vnf_load.get((vnf, site), 0.0)

    def site_residual(self, site: str) -> float:
        return self.model.sites[site].capacity - self.site_load.get(site, 0.0)

    def link_residual(self, link_name: str) -> float:
        link = self.model.links[link_name]
        return self.model.mlu_limit * link.bandwidth - self.link_load[link_name]

    # -- utilizations ------------------------------------------------------

    def vnf_utilization(self, vnf: str, site: str, extra: float = 0.0) -> float:
        cap = self.model.vnfs[vnf].site_capacity.get(site, 0.0)
        if cap <= 0:
            return _INF
        return (self.vnf_load.get((vnf, site), 0.0) + extra) / cap

    def link_utilization(self, link_name: str, extra: float = 0.0) -> float:
        link = self.model.links[link_name]
        return (self.link_load[link_name] + extra) / link.bandwidth

    # -- commits -------------------------------------------------------------

    def commit_vnf(self, vnf: str, site: str, load: float) -> None:
        self.vnf_load[(vnf, site)] = self.vnf_load.get((vnf, site), 0.0) + load
        self.site_load[site] = self.site_load.get(site, 0.0) + load

    def commit_link_traffic(self, n1: str, n2: str, volume: float) -> None:
        """Add (or, with negative ``volume``, remove) traffic between two
        nodes, spread over links by the routing fractions."""
        if volume == 0:
            return
        for link_name, frac in self.model.links_between(n1, n2).items():
            self.link_load[link_name] += volume * frac


@dataclass
class DpResult:
    """Outcome of routing a workload with SB-DP."""

    solution: RoutingSolution
    #: chain name -> fraction of demand left unrouted (only chains with
    #: a non-zero remainder appear).
    unrouted: dict[str, float]
    paths_computed: int

    @property
    def fully_routed(self) -> bool:
        return not self.unrouted


def route_chains_dp(
    model: NetworkModel,
    config: DpConfig | None = None,
    chain_order: Iterable[str] | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> DpResult:
    """Route every chain in the model with the SB-DP heuristic."""
    config = config or DpConfig()
    router = _DpRouter(model, config)
    if chain_order is None:
        names = list(model.chains)
        if config.sort_by_demand:
            names.sort(
                key=lambda n: model.chains[n].stage_traffic(1), reverse=True
            )
    else:
        names = list(chain_order)
        unknown = set(names) - set(model.chains)
        if unknown:
            raise KeyError(f"unknown chains in chain_order: {sorted(unknown)}")

    solution = RoutingSolution(model)
    unrouted: dict[str, float] = {}
    chain_hist = (
        metrics.histogram("solver.dp_chain_s") if metrics is not None else None
    )
    start = time.perf_counter()
    for name in names:
        chain_start = time.perf_counter()
        remainder = router.route_chain(model.chains[name], solution)
        if chain_hist is not None:
            chain_hist.observe(time.perf_counter() - chain_start)
        if remainder > _EPS:
            unrouted[name] = remainder
    if metrics is not None:
        # Wall-clock heuristic time over the whole workload (the number
        # the paper compares against SB-LP's hours-long CPLEX solves).
        metrics.histogram("solver.dp_route_s").observe(
            time.perf_counter() - start
        )
        metrics.counter("solver.dp_paths_computed").inc(router.paths_computed)
    return DpResult(solution, unrouted, router.paths_computed)


class _DpRouter:
    """Routes chains one at a time against shared residual state."""

    def __init__(self, model: NetworkModel, config: DpConfig):
        self.model = model
        self.config = config
        self.state = _ResourceState(model)
        self.paths_computed = 0
        self._weight = self._resolve_utilization_weight()

    def _resolve_utilization_weight(self) -> float:
        if self.config.utilization_weight is not None:
            return self.config.utilization_weight
        diameter = 0.0
        nodes = self.model.nodes
        for n1 in nodes:
            for n2 in nodes:
                try:
                    d = self.model.latency(n1, n2)
                except Exception:
                    continue
                # A failed link's delay is infinite (repro.chaos); the
                # utilization weight must stay finite regardless.
                if d != _INF:
                    diameter = max(diameter, d)
        penalty_at_full = self.config.penalty(1.0)
        if diameter <= 0 or penalty_at_full <= 0:
            return 1.0
        return diameter / penalty_at_full

    # -- public per-chain entry point ------------------------------------

    def route_chain(
        self,
        chain: Chain,
        solution: RoutingSolution,
        remaining: float = 1.0,
    ) -> float:
        """Route (up to) ``remaining`` of one chain's demand, committing
        onto the shared state.

        Returns the unrouted remainder fraction.
        """
        for _ in range(self.config.max_paths_per_chain):
            if remaining <= _EPS:
                break
            path = self._find_path(chain, remaining)
            self.paths_computed += 1
            if path is None:
                break
            fraction = min(remaining, self._max_feasible_fraction(chain, path))
            if fraction <= _EPS:
                break
            self._commit(chain, path, fraction)
            solution.add_path(chain.name, path, fraction)
            remaining -= fraction
        return max(0.0, remaining)

    # -- path search ----------------------------------------------------------

    def _find_path(self, chain: Chain, pass_fraction: float) -> list[str] | None:
        if self.config.per_hop:
            return self._find_path_greedy(chain, pass_fraction)
        return self._find_path_dp(chain, pass_fraction)

    def _find_path_dp(self, chain: Chain, pass_fraction: float) -> list[str] | None:
        """The Equation 8 table computation with parent backtracking."""
        # Chain nodes 0 .. num_stages: node 0 is the ingress, node
        # num_stages is the egress; node z (1-based) hosts VNF z.
        prev_sites = [chain.ingress]
        prev_cost = {chain.ingress: 0.0}
        parents: list[dict[str, str]] = []

        for z in range(1, chain.num_stages + 1):
            dests = self.model.stage_destinations(chain, z)
            cost: dict[str, float] = {}
            parent: dict[str, str] = {}
            for dst in dests:
                best, best_src = _INF, None
                for src in prev_sites:
                    base = prev_cost.get(src, _INF)
                    if base == _INF:
                        continue
                    step = self._transition_cost(chain, z, src, dst, pass_fraction)
                    if base + step < best:
                        best = base + step
                        best_src = src
                if best_src is not None:
                    cost[dst] = best
                    parent[dst] = best_src
            if not cost:
                return None
            parents.append(parent)
            prev_sites = list(cost)
            prev_cost = cost

        # Backtrack from the egress.
        path = [chain.egress]
        current = chain.egress
        for parent in reversed(parents):
            current = parent[current]
            path.append(current)
        path.reverse()
        return path

    def _find_path_greedy(
        self, chain: Chain, pass_fraction: float
    ) -> list[str] | None:
        """ONEHOP: pick each next site by local cost only."""
        path = [chain.ingress]
        current = chain.ingress
        for z in range(1, chain.num_stages + 1):
            best, best_dst = _INF, None
            for dst in self.model.stage_destinations(chain, z):
                step = self._transition_cost(chain, z, current, dst, pass_fraction)
                if step < best:
                    best = step
                    best_dst = dst
            if best_dst is None:
                return None
            path.append(best_dst)
            current = best_dst
        return path

    # -- cost function -----------------------------------------------------------

    def _transition_cost(
        self, chain: Chain, z: int, src: str, dst: str, pass_fraction: float
    ) -> float:
        """``cost(src, z-1, dst)`` in the paper's notation: latency +
        network-utilization cost + compute-utilization cost of moving
        stage-``z`` traffic from ``src`` to ``dst``."""
        cost = self.model.site_latency(src, dst)
        traffic = chain.stage_traffic(z) * pass_fraction

        if z < chain.num_stages:
            vnf = chain.vnf_at(z)
            residual = self.state.vnf_residual(vnf, dst)
            site_residual = self.state.site_residual(dst)
            if residual <= _EPS or site_residual <= _EPS:
                return _INF
            if self.config.use_compute_cost:
                # The VNF both receives stage-z and sends stage-(z+1)
                # traffic; approximate the added load with twice the
                # incoming demand (symmetric chains).
                load = self.model.vnfs[vnf].load_per_unit * traffic * 2.0
                util = self.state.vnf_utilization(vnf, dst, extra=load)
                cost += self._weight * self.config.penalty(min(util, 2.0))

        if self.config.use_network_cost and self.model.routing:
            n1 = self.model.endpoint_node(src)
            n2 = self.model.endpoint_node(dst)
            fwd = chain.forward_traffic[z - 1] * pass_fraction
            rev = chain.reverse_traffic[z - 1] * pass_fraction
            for direction, volume in (((n1, n2), fwd), ((n2, n1), rev)):
                if volume <= 0:
                    continue
                for link_name, frac in self.model.links_between(*direction).items():
                    util = self.state.link_utilization(
                        link_name, extra=volume * frac
                    )
                    cost += (
                        self._weight
                        * frac
                        * self.config.penalty(min(util, 2.0))
                    )
        return cost

    # -- feasibility and commit ------------------------------------------------------

    def _max_feasible_fraction(self, chain: Chain, path: list[str]) -> float:
        """Largest fraction of the chain's demand the path can carry given
        residual VNF, site, and link capacities."""
        max_fraction = 1.0

        # Compute: each VNF node z (1 .. len(vnfs)) at path[z].  Demands
        # are aggregated per (VNF, site) and per site first, so a path
        # placing several VNFs at one site cannot overload it.
        vnf_demand: dict[tuple[str, str], float] = {}
        site_demand: dict[str, float] = {}
        for z in range(1, chain.num_stages):
            vnf = chain.vnf_at(z)
            site = path[z]
            per_unit = self.model.vnfs[vnf].load_per_unit * (
                chain.stage_traffic(z) + chain.stage_traffic(z + 1)
            )
            if per_unit > 0:
                key = (vnf, site)
                vnf_demand[key] = vnf_demand.get(key, 0.0) + per_unit
                site_demand[site] = site_demand.get(site, 0.0) + per_unit
        for (vnf, site), per_unit in vnf_demand.items():
            max_fraction = min(
                max_fraction, self.state.vnf_residual(vnf, site) / per_unit
            )
        for site, per_unit in site_demand.items():
            max_fraction = min(
                max_fraction, self.state.site_residual(site) / per_unit
            )

        # Network: links along each stage hop.
        if self.model.routing and self.model.links:
            link_demand: dict[str, float] = {}
            for z, (src, dst) in enumerate(zip(path, path[1:]), start=1):
                n1 = self.model.endpoint_node(src)
                n2 = self.model.endpoint_node(dst)
                fwd = chain.forward_traffic[z - 1]
                rev = chain.reverse_traffic[z - 1]
                for direction, volume in (((n1, n2), fwd), ((n2, n1), rev)):
                    if volume <= 0:
                        continue
                    for name, frac in self.model.links_between(*direction).items():
                        link_demand[name] = link_demand.get(name, 0.0) + volume * frac
            for name, per_unit in link_demand.items():
                if per_unit > 0:
                    max_fraction = min(
                        max_fraction, self.state.link_residual(name) / per_unit
                    )

        return max(0.0, max_fraction)

    def _commit(self, chain: Chain, path: list[str], fraction: float) -> None:
        for z in range(1, chain.num_stages):
            vnf = chain.vnf_at(z)
            load = (
                self.model.vnfs[vnf].load_per_unit
                * (chain.stage_traffic(z) + chain.stage_traffic(z + 1))
                * fraction
            )
            self.state.commit_vnf(vnf, path[z], load)
        for z, (src, dst) in enumerate(zip(path, path[1:]), start=1):
            n1 = self.model.endpoint_node(src)
            n2 = self.model.endpoint_node(dst)
            self.state.commit_link_traffic(
                n1, n2, chain.forward_traffic[z - 1] * fraction
            )
            self.state.commit_link_traffic(
                n2, n1, chain.reverse_traffic[z - 1] * fraction
            )


class IncrementalDpRouter:
    """Route chains one at a time against persistent residual state.

    This is the interface Global Switchboard uses operationally: chains
    arrive over time, each is routed against the utilization left by the
    chains already installed, and the accumulated
    :class:`~repro.core.routes.RoutingSolution` always reflects the
    currently installed routes.
    """

    def __init__(self, model: NetworkModel, config: DpConfig | None = None):
        self.model = model
        self.config = config or DpConfig()
        self._router = _DpRouter(model, self.config)
        self.solution = RoutingSolution(model)

    def route(self, chain_name: str) -> float:
        """Route one chain (must already be in the model).

        Any demand already carried (a previous partial routing) is left
        in place and only the remainder is attempted, so re-invoking
        after new capacity appears implements the paper's dynamic route
        addition.  Returns the total carried fraction.
        """
        chain = self.model.chains[chain_name]
        remaining = max(0.0, 1.0 - self.solution.routed_fraction(chain_name))
        self._router.route_chain(chain, self.solution, remaining)
        return self.solution.routed_fraction(chain_name)

    def rollback(self, chain_name: str) -> None:
        """Undo a routed chain: release its VNF, site, and link load and
        drop its flows from the accumulated solution.

        Used when a two-phase commit is rejected by a VNF controller and
        the route must be recomputed (Section 3, chain creation).
        """
        chain = self.model.chains[chain_name]
        for z in range(1, chain.num_stages + 1):
            for (src, dst), frac in self.solution.stage_flows(chain_name, z).items():
                traffic = chain.stage_traffic(z) * frac
                if z < chain.num_stages:
                    vnf = chain.vnf_at(z)
                    load = self.model.vnfs[vnf].load_per_unit * traffic
                    self._router.state.commit_vnf(vnf, dst, -load)
                if z > 1:
                    vnf = chain.vnf_at(z - 1)
                    load = self.model.vnfs[vnf].load_per_unit * traffic
                    self._router.state.commit_vnf(vnf, src, -load)
                n1 = self.model.endpoint_node(src)
                n2 = self.model.endpoint_node(dst)
                fwd = chain.forward_traffic[z - 1] * frac
                rev = chain.reverse_traffic[z - 1] * frac
                self._router.state.commit_link_traffic(n1, n2, -fwd)
                self._router.state.commit_link_traffic(n2, n1, -rev)
        self.solution.clear_chain(chain_name)

    def sync_vnf_capacity(self, vnf_name: str, site: str, available: float) -> None:
        """Reconcile the router's view of a VNF's remaining capacity at a
        site with the capacity the VNF controller actually reports (used
        after a two-phase-commit rejection)."""
        current = self._router.state.vnf_residual(vnf_name, site)
        if available < current:
            extra = current - available
            self._router.state.commit_vnf(vnf_name, site, extra)

    def residual_vnf_capacity(self, vnf_name: str, site: str) -> float:
        return self._router.state.vnf_residual(vnf_name, site)


def dp_latency_config() -> DpConfig:
    """Convenience alias for the DP-LATENCY ablation."""
    return DpConfig.latency_only()


def one_hop_config() -> DpConfig:
    """Convenience alias for the ONEHOP ablation."""
    return DpConfig.one_hop()


__all__ = [
    "DpConfig",
    "DpResult",
    "IncrementalDpRouter",
    "dp_latency_config",
    "one_hop_config",
    "route_chains_dp",
]
