"""SB-DP: the dynamic-programming routing heuristic of Section 4.4.

For one chain, the algorithm builds the table ``E(z, s)`` -- the least
cost of a route through the first ``z`` chain nodes that ends at site
``s`` -- using the recurrence of Equation 8::

    E(z + 1, s) = min over s' of E(z, s') + cost(s', z, s)

where ``cost`` combines propagation latency, network-utilization cost,
and compute-utilization cost, the utilization terms using a
piecewise-linear convex penalty (Fortz--Thorup) that grows steeply above
50% utilization.  The least-cost route is recovered by walking the table
backwards from the egress.  If resource constraints let the route carry
only part of the chain's traffic, the algorithm repeats on the residual
capacities until the chain is fully routed or no capacity remains.

Multi-chain workloads are routed sequentially, each chain seeing the
utilization left behind by its predecessors -- this is the "computationally
efficient routing heuristic" evaluated against SB-LP in Section 7.3.

Two ablations from Figure 13a are expressed as configurations:

- ``DpConfig.latency_only()`` -- DP-LATENCY: the cost function degenerates
  to propagation delay (capacities are still *enforced*, they just do not
  steer route choice).
- ``DpConfig.one_hop()`` -- ONEHOP: the same cost function but applied
  greedily one stage at a time instead of over the whole chain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, TYPE_CHECKING

import numpy as np

from repro.core.columns import ragged_gather
from repro.core.costs import FORTZ_THORUP, PiecewiseLinearCost
from repro.core.model import Chain, NetworkModel
from repro.core.routes import RoutingSolution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

_EPS = 1e-9
_INF = float("inf")


@dataclass(frozen=True)
class DpConfig:
    """Tuning knobs for :func:`route_chains_dp`.

    ``utilization_weight`` scales the dimensionless utilization penalty
    into latency units; ``None`` picks ``network diameter / penalty(1.0)``
    so that a fully-utilized resource costs about one diameter crossing.
    """

    use_network_cost: bool = True
    use_compute_cost: bool = True
    per_hop: bool = False
    utilization_weight: float | None = None
    penalty: PiecewiseLinearCost = field(default=FORTZ_THORUP)
    max_paths_per_chain: int = 64
    sort_by_demand: bool = False
    #: Evaluate the Equation 8 recurrence one stage front at a time over
    #: columnar arrays instead of one ``_transition_cost`` call per
    #: (source, destination) pair.  Same routes (the accumulation order
    #: per matrix element matches the scalar code exactly); ``False``
    #: forces the scalar reference implementation.
    vectorized: bool = True

    @staticmethod
    def latency_only() -> "DpConfig":
        """The DP-LATENCY ablation of Figure 13a."""
        return DpConfig(use_network_cost=False, use_compute_cost=False)

    @staticmethod
    def one_hop() -> "DpConfig":
        """The ONEHOP ablation of Figure 13a."""
        return DpConfig(per_hop=True)


class _ResourceState:
    """Mutable residual-capacity state shared across sequentially routed
    chains: VNF loads, site loads, and link loads.

    Array-backed over the model's columnar index maps so the vectorized
    path search can read whole stage fronts at once; the name-keyed
    accessors below translate through the index maps and keep the
    historical per-resource semantics.
    """

    def __init__(self, model: NetworkModel):
        self.model = model
        sub = model.substrate_columns()
        n_vnfs = len(sub.vnf_names)
        n_sites = len(sub.site_names)
        self.vnf_load = np.zeros((n_vnfs, n_sites))
        self.site_load = np.zeros(n_sites)
        self.link_load = sub.link_background.copy()
        self.refresh_substrate(sub)

    def refresh_substrate(self, sub) -> None:
        """Re-read capacities after the substrate views were rebuilt.

        Supported in-place mutations replace catalog *values* (a VNF's
        capacities, a site's capacity, link latencies); names and index
        maps are unchanged, so committed loads carry over.
        """
        self.sub = sub
        caps = np.zeros((len(sub.vnf_names), len(sub.site_names)))
        for (vi, si), cap in sub.vnf_site_cap.items():
            caps[vi, si] = cap
        self.vnf_cap = caps

    # -- residual capacities -------------------------------------------

    def vnf_residual(self, vnf: str, site: str) -> float:
        vi = self.sub.vnf_index[vnf]
        si = self.sub.site_index.get(site)
        if si is None:
            return 0.0
        return float(self.vnf_cap[vi, si] - self.vnf_load[vi, si])

    def site_residual(self, site: str) -> float:
        si = self.sub.site_index[site]
        return float(self.sub.site_capacity[si] - self.site_load[si])

    def link_residual(self, link_name: str) -> float:
        li = self.sub.link_index[link_name]
        return float(
            self.model.mlu_limit * self.sub.link_bandwidth[li]
            - self.link_load[li]
        )

    # -- utilizations ------------------------------------------------------

    def vnf_utilization(self, vnf: str, site: str, extra: float = 0.0) -> float:
        vi = self.sub.vnf_index[vnf]
        si = self.sub.site_index.get(site)
        cap = 0.0 if si is None else self.vnf_cap[vi, si]
        if cap <= 0:
            return _INF
        return float((self.vnf_load[vi, si] + extra) / cap)

    def link_utilization(self, link_name: str, extra: float = 0.0) -> float:
        li = self.sub.link_index[link_name]
        return float(
            (self.link_load[li] + extra) / self.sub.link_bandwidth[li]
        )

    # -- commits -------------------------------------------------------------

    def commit_vnf(self, vnf: str, site: str, load: float) -> None:
        vi = self.sub.vnf_index[vnf]
        si = self.sub.site_index[site]
        self.vnf_load[vi, si] += load
        self.site_load[si] += load

    def commit_link_traffic(self, n1: str, n2: str, volume: float) -> None:
        """Add (or, with negative ``volume``, remove) traffic between two
        nodes, spread over links by the routing fractions."""
        if volume == 0:
            return
        sub = self.sub
        i = sub.node_index.get(n1)
        j = sub.node_index.get(n2)
        if i is None or j is None:
            return
        p = sub.pair_id[i, j]
        if p < 0:
            return
        s = sub.pair_start[p]
        e = s + sub.pair_len[p]
        # Each pair's pool lists every link once, so fancy += is safe.
        self.link_load[sub.pool_link[s:e]] += volume * sub.pool_frac[s:e]


@dataclass
class DpResult:
    """Outcome of routing a workload with SB-DP."""

    solution: RoutingSolution
    #: chain name -> fraction of demand left unrouted (only chains with
    #: a non-zero remainder appear).
    unrouted: dict[str, float]
    paths_computed: int

    @property
    def fully_routed(self) -> bool:
        return not self.unrouted


def route_chains_dp(
    model: NetworkModel,
    config: DpConfig | None = None,
    chain_order: Iterable[str] | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> DpResult:
    """Route every chain in the model with the SB-DP heuristic."""
    config = config or DpConfig()
    router = _DpRouter(model, config)
    if chain_order is None:
        names = list(model.chains)
        if config.sort_by_demand:
            names.sort(
                key=lambda n: model.chains[n].stage_traffic(1), reverse=True
            )
    else:
        names = list(chain_order)
        unknown = set(names) - set(model.chains)
        if unknown:
            raise KeyError(f"unknown chains in chain_order: {sorted(unknown)}")

    solution = RoutingSolution(model)
    unrouted: dict[str, float] = {}
    chain_hist = (
        metrics.histogram("solver.dp_chain_s") if metrics is not None else None
    )
    start = time.perf_counter()
    for name in names:
        chain_start = time.perf_counter()
        remainder = router.route_chain(model.chains[name], solution)
        if chain_hist is not None:
            chain_hist.observe(time.perf_counter() - chain_start)
        if remainder > _EPS:
            unrouted[name] = remainder
    if metrics is not None:
        # Wall-clock heuristic time over the whole workload (the number
        # the paper compares against SB-LP's hours-long CPLEX solves).
        metrics.histogram("solver.dp_route_s").observe(
            time.perf_counter() - start
        )
        metrics.counter("solver.dp_paths_computed").inc(router.paths_computed)
    return DpResult(solution, unrouted, router.paths_computed)


@dataclass(frozen=True)
class _StageFront:
    """Static per-stage arrays used by the vectorized DP.

    Everything here is demand-independent: the propagation-latency
    block over (previous front x this front) and, per traffic
    direction, flattened gather tables mapping each link a pair can use
    to its matrix element.  Demands and residual loads are read fresh
    on every call.
    """

    dst_names: list[str]
    dst_nodes: np.ndarray  # network-node index of each destination
    dst_sites: np.ndarray | None  # site indices (None for the egress)
    vnf_index: int  # -1 for the egress stage
    load_per_unit: float
    lat: np.ndarray  # (n_prev, n_dst) one-way delays
    fwd_targets: np.ndarray  # flat (src, dst) element per pool entry
    fwd_links: np.ndarray
    fwd_fracs: np.ndarray
    fwd_wfracs: np.ndarray  # utilization_weight * frac
    fwd_bw: np.ndarray
    rev_targets: np.ndarray
    rev_links: np.ndarray
    rev_fracs: np.ndarray
    rev_wfracs: np.ndarray
    rev_bw: np.ndarray


class _DpRouter:
    """Routes chains one at a time against shared residual state."""

    def __init__(self, model: NetworkModel, config: DpConfig):
        self.model = model
        self.config = config
        self.state = _ResourceState(model)
        self._sub = self.state.sub
        self._chain_static: dict[tuple, list[_StageFront]] = {}
        # (src_key, dst_key) -> shared latency/link tables; chains with
        # the same stage transition (e.g. the same consecutive VNF pair)
        # reuse one entry.
        self._transition_cache: dict[tuple, tuple] = {}
        self._model_sig = self._substrate_signature()
        self.paths_computed = 0
        self._weight = self._resolve_utilization_weight()

    def _resolve_utilization_weight(self) -> float:
        if self.config.utilization_weight is not None:
            return self.config.utilization_weight
        # A failed link's delay is infinite (repro.chaos); the
        # utilization weight must stay finite regardless.
        finite = self._sub.latency[np.isfinite(self._sub.latency)]
        diameter = float(finite.max()) if finite.size else 0.0
        penalty_at_full = self.config.penalty(1.0)
        if diameter <= 0 or penalty_at_full <= 0:
            return 1.0
        return diameter / penalty_at_full

    def _substrate_signature(self) -> tuple:
        """Object identities of the mutable substrate catalogs.

        Capacity growth and similar dynamic scenarios replace entries of
        ``model.vnfs`` / ``model.sites`` / ``model.links`` in place; the
        scalar code read those dicts live on every transition, so the
        vectorized router re-checks the identities once per routed chain
        and refreshes its snapshots when anything was swapped.
        """
        m = self.model
        return (
            tuple(map(id, m.vnfs.values())),
            tuple(map(id, m.sites.values())),
            tuple(map(id, m.links.values())),
        )

    def _maybe_refresh(self) -> None:
        """Re-read the substrate views after an in-place mutation.

        Triggered either by an external ``invalidate_substrate()`` call
        (``controller.failures`` flipping latency entries) or by a
        catalog-entry swap detected via :meth:`_substrate_signature`.
        Topology names and index maps are unchanged in both cases, so
        committed loads carry over and only the cached views (and the
        derived stage-front tables) are rebuilt.
        """
        sig = self._substrate_signature()
        sub = self.model.substrate_columns()
        if sub is self._sub and sig == self._model_sig:
            return
        if sig != self._model_sig:
            self.model.invalidate_substrate()
            sub = self.model.substrate_columns()
            self._model_sig = sig
        self._sub = sub
        self.state.refresh_substrate(sub)
        self._chain_static.clear()
        self._transition_cache.clear()

    # -- public per-chain entry point ------------------------------------

    def route_chain(
        self,
        chain: Chain,
        solution: RoutingSolution,
        remaining: float = 1.0,
    ) -> float:
        """Route (up to) ``remaining`` of one chain's demand, committing
        onto the shared state.

        Returns the unrouted remainder fraction.
        """
        self._maybe_refresh()
        for _ in range(self.config.max_paths_per_chain):
            if remaining <= _EPS:
                break
            path = self._find_path(chain, remaining)
            self.paths_computed += 1
            if path is None:
                break
            fraction = min(remaining, self._max_feasible_fraction(chain, path))
            if fraction <= _EPS:
                break
            self._commit(chain, path, fraction)
            solution.add_path(chain.name, path, fraction)
            remaining -= fraction
        return max(0.0, remaining)

    # -- path search ----------------------------------------------------------

    def _find_path(self, chain: Chain, pass_fraction: float) -> list[str] | None:
        if self.config.per_hop:
            return self._find_path_greedy(chain, pass_fraction)
        if self.config.vectorized:
            return self._find_path_dp_vec(chain, pass_fraction)
        return self._find_path_dp(chain, pass_fraction)

    def _find_path_dp(self, chain: Chain, pass_fraction: float) -> list[str] | None:
        """The Equation 8 table computation with parent backtracking."""
        # Chain nodes 0 .. num_stages: node 0 is the ingress, node
        # num_stages is the egress; node z (1-based) hosts VNF z.
        prev_sites = [chain.ingress]
        prev_cost = {chain.ingress: 0.0}
        parents: list[dict[str, str]] = []

        for z in range(1, chain.num_stages + 1):
            dests = self.model.stage_destinations(chain, z)
            cost: dict[str, float] = {}
            parent: dict[str, str] = {}
            for dst in dests:
                best, best_src = _INF, None
                for src in prev_sites:
                    base = prev_cost.get(src, _INF)
                    if base == _INF:
                        continue
                    step = self._transition_cost(chain, z, src, dst, pass_fraction)
                    if base + step < best:
                        best = base + step
                        best_src = src
                if best_src is not None:
                    cost[dst] = best
                    parent[dst] = best_src
            if not cost:
                return None
            parents.append(parent)
            prev_sites = list(cost)
            prev_cost = cost

        # Backtrack from the egress.
        path = [chain.egress]
        current = chain.egress
        for parent in reversed(parents):
            current = parent[current]
            path.append(current)
        path.reverse()
        return path

    def _find_path_dp_vec(
        self, chain: Chain, pass_fraction: float
    ) -> list[str] | None:
        """Equation 8 over whole stage fronts.

        One (sources x destinations) cost matrix per stage replaces one
        ``_transition_cost`` call per pair.  Every matrix element is
        accumulated in the same order as the scalar code (latency, then
        compute penalty, then forward link penalties in pool order, then
        reverse), and ``argmin`` keeps the first minimum exactly like
        the scalar strict-``<`` scan, so both implementations pick
        identical routes.
        """
        cfg = self.config
        state = self.state
        sub = self._sub
        fronts = self._stage_fronts(chain)
        use_links = cfg.use_network_cost and bool(self.model.routing)
        # Costs run over the *full* stage fronts; capacity-blocked or
        # unreachable entries carry +inf, which the min-reduction
        # ignores whenever any finite alternative exists -- the same
        # outcome as the scalar code's explicit skips.
        prev_cost = np.zeros(1)
        parents: list[np.ndarray] = []

        for z in range(1, chain.num_stages + 1):
            front = fronts[z - 1]
            is_vnf = front.vnf_index >= 0
            fwd = rev = 0.0
            if use_links:
                fwd = chain.forward_traffic[z - 1] * pass_fraction
                rev = chain.reverse_traffic[z - 1] * pass_fraction
            want_fwd = fwd > 0 and front.fwd_targets.size > 0
            want_rev = rev > 0 and front.rev_targets.size > 0

            # One penalty evaluation per stage: compute utilization,
            # forward-link utilization, and reverse-link utilization are
            # concatenated, run through the (element-wise) piecewise
            # penalty once, and split back apart.
            segments = []
            if is_vnf and cfg.use_compute_cost:
                si = front.dst_sites
                caps = state.vnf_cap[front.vnf_index, si]
                traffic = chain.stage_traffic(z) * pass_fraction
                load = front.load_per_unit * traffic * 2.0
                with np.errstate(divide="ignore"):
                    util = np.where(
                        caps > 0,
                        (state.vnf_load[front.vnf_index, si] + load) / caps,
                        _INF,
                    )
                segments.append(np.minimum(util, 2.0))
            if want_fwd:
                util = (
                    state.link_load[front.fwd_links] + fwd * front.fwd_fracs
                ) / front.fwd_bw
                segments.append(np.minimum(util, 2.0))
            if want_rev:
                util = (
                    state.link_load[front.rev_links] + rev * front.rev_fracs
                ) / front.rev_bw
                segments.append(np.minimum(util, 2.0))
            pens = (
                cfg.penalty.batch(
                    np.concatenate(segments)
                    if len(segments) > 1
                    else segments[0]
                )
                if segments
                else None
            )

            step = front.lat.copy()
            offset = 0
            if is_vnf:
                si = front.dst_sites
                caps = state.vnf_cap[front.vnf_index, si]
                loads = state.vnf_load[front.vnf_index, si]
                blocked = (caps - loads <= _EPS) | (
                    sub.site_capacity[si] - state.site_load[si] <= _EPS
                )
                if cfg.use_compute_cost:
                    n = len(si)
                    step = step + (
                        self._weight * pens[offset : offset + n]
                    )[None, :]
                    offset += n
                step[:, blocked] = _INF
            flat = step.ravel()
            if want_fwd:
                n = front.fwd_targets.size
                np.add.at(
                    flat,
                    front.fwd_targets,
                    front.fwd_wfracs * pens[offset : offset + n],
                )
                offset += n
            if want_rev:
                n = front.rev_targets.size
                np.add.at(
                    flat,
                    front.rev_targets,
                    front.rev_wfracs * pens[offset : offset + n],
                )
            total = prev_cost[:, None] + step
            best_src = np.argmin(total, axis=0)
            best = total[best_src, np.arange(total.shape[1])]
            if not (best < _INF).any():
                return None
            parents.append(best_src)
            prev_cost = best

        if not prev_cost[0] < _INF:
            return None
        # Backtrack from the egress (the only destination of the last
        # stage, so its front index is 0).
        idx = 0
        path = [chain.egress]
        for z in range(len(parents) - 1, 0, -1):
            idx = int(parents[z][idx])
            path.append(fronts[z - 1].dst_names[idx])
        path.append(chain.ingress)
        path.reverse()
        return path

    def _stage_fronts(self, chain: Chain) -> list[_StageFront]:
        """Per-stage static arrays (cached per chain structure)."""
        key = (chain.name, chain.ingress, chain.egress, tuple(chain.vnfs))
        cached = self._chain_static.get(key)
        if cached is not None:
            return cached
        sub = self._sub
        model = self.model
        ingress = sub.endpoint_id(chain.ingress, model)
        prev_nodes = np.array([sub.endpoint_node[ingress]], dtype=np.int64)
        prev_key: tuple = ("ep", ingress)
        fronts: list[_StageFront] = []
        for z in range(1, chain.num_stages + 1):
            if z == chain.num_stages:
                ep = sub.endpoint_id(chain.egress, model)
                dst_names = [chain.egress]
                dst_nodes = np.array(
                    [sub.endpoint_node[ep]], dtype=np.int64
                )
                dst_sites = None
                vnf_index = -1
                load_per_unit = 0.0
                dst_key: tuple = ("ep", ep)
            else:
                vnf_index = sub.vnf_index[chain.vnf_at(z)]
                dst_sites = sub.vnf_sites[vnf_index]
                dst_names = [sub.site_names[si] for si in dst_sites]
                dst_nodes = sub.site_node[dst_sites]
                load_per_unit = float(sub.vnf_load[vnf_index])
                dst_key = ("vnf", vnf_index)
            shared = self._transition_cache.get((prev_key, dst_key))
            if shared is None:
                shared = (
                    sub.latency[np.ix_(prev_nodes, dst_nodes)],
                    self._pair_tables(prev_nodes, dst_nodes, False),
                    self._pair_tables(dst_nodes, prev_nodes, True),
                )
                self._transition_cache[(prev_key, dst_key)] = shared
            lat, fwd, rev = shared
            fronts.append(
                _StageFront(
                    dst_names=dst_names,
                    dst_nodes=dst_nodes,
                    dst_sites=dst_sites,
                    vnf_index=vnf_index,
                    load_per_unit=load_per_unit,
                    lat=lat,
                    fwd_targets=fwd[0],
                    fwd_links=fwd[1],
                    fwd_fracs=fwd[2],
                    fwd_wfracs=fwd[3],
                    fwd_bw=fwd[4],
                    rev_targets=rev[0],
                    rev_links=rev[1],
                    rev_fracs=rev[2],
                    rev_wfracs=rev[3],
                    rev_bw=rev[4],
                )
            )
            prev_nodes = dst_nodes
            prev_key = dst_key
        self._chain_static[key] = fronts
        return fronts

    def _pair_tables(
        self, a_nodes: np.ndarray, b_nodes: np.ndarray, transpose: bool
    ) -> tuple[np.ndarray, ...]:
        """Flat link-gather tables for every (a, b) node pair.

        ``targets`` maps each pool entry to its cost-matrix element --
        (a, b) element order, or (b, a) with ``transpose`` (the
        reverse-traffic direction of a stage).  Entries stay in pool
        order per pair so the penalty accumulation (``np.add.at`` is
        sequential) reproduces the scalar code's per-link order.
        """
        sub = self._sub
        if not self.model.routing:
            empty_i = np.zeros(0, dtype=np.int64)
            empty_f = np.zeros(0)
            return empty_i, empty_i, empty_f, empty_f, empty_f
        pids = sub.pair_id[np.ix_(a_nodes, b_nodes)].ravel()
        valid = np.flatnonzero(pids >= 0)
        p = pids[valid]
        pool_idx, row_of = ragged_gather(sub.pair_start[p], sub.pair_len[p])
        links = sub.pool_link[pool_idx]
        fracs = sub.pool_frac[pool_idx]
        targets = valid[row_of]
        if transpose:
            a_i, b_i = np.divmod(targets, b_nodes.size)
            targets = b_i * a_nodes.size + a_i
        return (
            targets,
            links,
            fracs,
            self._weight * fracs,
            sub.link_bandwidth[links],
        )

    def _find_path_greedy(
        self, chain: Chain, pass_fraction: float
    ) -> list[str] | None:
        """ONEHOP: pick each next site by local cost only."""
        path = [chain.ingress]
        current = chain.ingress
        for z in range(1, chain.num_stages + 1):
            best, best_dst = _INF, None
            for dst in self.model.stage_destinations(chain, z):
                step = self._transition_cost(chain, z, current, dst, pass_fraction)
                if step < best:
                    best = step
                    best_dst = dst
            if best_dst is None:
                return None
            path.append(best_dst)
            current = best_dst
        return path

    # -- cost function -----------------------------------------------------------

    def _transition_cost(
        self, chain: Chain, z: int, src: str, dst: str, pass_fraction: float
    ) -> float:
        """``cost(src, z-1, dst)`` in the paper's notation: latency +
        network-utilization cost + compute-utilization cost of moving
        stage-``z`` traffic from ``src`` to ``dst``."""
        cost = self.model.site_latency(src, dst)
        traffic = chain.stage_traffic(z) * pass_fraction

        if z < chain.num_stages:
            vnf = chain.vnf_at(z)
            residual = self.state.vnf_residual(vnf, dst)
            site_residual = self.state.site_residual(dst)
            if residual <= _EPS or site_residual <= _EPS:
                return _INF
            if self.config.use_compute_cost:
                # The VNF both receives stage-z and sends stage-(z+1)
                # traffic; approximate the added load with twice the
                # incoming demand (symmetric chains).
                load = self.model.vnfs[vnf].load_per_unit * traffic * 2.0
                util = self.state.vnf_utilization(vnf, dst, extra=load)
                cost += self._weight * self.config.penalty(min(util, 2.0))

        if self.config.use_network_cost and self.model.routing:
            n1 = self.model.endpoint_node(src)
            n2 = self.model.endpoint_node(dst)
            fwd = chain.forward_traffic[z - 1] * pass_fraction
            rev = chain.reverse_traffic[z - 1] * pass_fraction
            for direction, volume in (((n1, n2), fwd), ((n2, n1), rev)):
                if volume <= 0:
                    continue
                for link_name, frac in self.model.links_between(*direction).items():
                    util = self.state.link_utilization(
                        link_name, extra=volume * frac
                    )
                    cost += (
                        self._weight
                        * frac
                        * self.config.penalty(min(util, 2.0))
                    )
        return cost

    # -- feasibility and commit ------------------------------------------------------

    def _max_feasible_fraction(self, chain: Chain, path: list[str]) -> float:
        """Largest fraction of the chain's demand the path can carry given
        residual VNF, site, and link capacities."""
        max_fraction = 1.0

        # Compute: each VNF node z (1 .. len(vnfs)) at path[z].  Demands
        # are aggregated per (VNF, site) and per site first, so a path
        # placing several VNFs at one site cannot overload it.
        vnf_demand: dict[tuple[str, str], float] = {}
        site_demand: dict[str, float] = {}
        for z in range(1, chain.num_stages):
            vnf = chain.vnf_at(z)
            site = path[z]
            per_unit = self.model.vnfs[vnf].load_per_unit * (
                chain.stage_traffic(z) + chain.stage_traffic(z + 1)
            )
            if per_unit > 0:
                key = (vnf, site)
                vnf_demand[key] = vnf_demand.get(key, 0.0) + per_unit
                site_demand[site] = site_demand.get(site, 0.0) + per_unit
        for (vnf, site), per_unit in vnf_demand.items():
            max_fraction = min(
                max_fraction, self.state.vnf_residual(vnf, site) / per_unit
            )
        for site, per_unit in site_demand.items():
            max_fraction = min(
                max_fraction, self.state.site_residual(site) / per_unit
            )

        # Network: links along each stage hop.
        if self.model.routing and self.model.links:
            link_demand: dict[str, float] = {}
            for z, (src, dst) in enumerate(zip(path, path[1:]), start=1):
                n1 = self.model.endpoint_node(src)
                n2 = self.model.endpoint_node(dst)
                fwd = chain.forward_traffic[z - 1]
                rev = chain.reverse_traffic[z - 1]
                for direction, volume in (((n1, n2), fwd), ((n2, n1), rev)):
                    if volume <= 0:
                        continue
                    for name, frac in self.model.links_between(*direction).items():
                        link_demand[name] = link_demand.get(name, 0.0) + volume * frac
            for name, per_unit in link_demand.items():
                if per_unit > 0:
                    max_fraction = min(
                        max_fraction, self.state.link_residual(name) / per_unit
                    )

        return max(0.0, max_fraction)

    def _commit(self, chain: Chain, path: list[str], fraction: float) -> None:
        for z in range(1, chain.num_stages):
            vnf = chain.vnf_at(z)
            load = (
                self.model.vnfs[vnf].load_per_unit
                * (chain.stage_traffic(z) + chain.stage_traffic(z + 1))
                * fraction
            )
            self.state.commit_vnf(vnf, path[z], load)
        for z, (src, dst) in enumerate(zip(path, path[1:]), start=1):
            n1 = self.model.endpoint_node(src)
            n2 = self.model.endpoint_node(dst)
            self.state.commit_link_traffic(
                n1, n2, chain.forward_traffic[z - 1] * fraction
            )
            self.state.commit_link_traffic(
                n2, n1, chain.reverse_traffic[z - 1] * fraction
            )


class IncrementalDpRouter:
    """Route chains one at a time against persistent residual state.

    This is the interface Global Switchboard uses operationally: chains
    arrive over time, each is routed against the utilization left by the
    chains already installed, and the accumulated
    :class:`~repro.core.routes.RoutingSolution` always reflects the
    currently installed routes.
    """

    def __init__(self, model: NetworkModel, config: DpConfig | None = None):
        self.model = model
        self.config = config or DpConfig()
        self._router = _DpRouter(model, self.config)
        self.solution = RoutingSolution(model)

    def route(self, chain_name: str) -> float:
        """Route one chain (must already be in the model).

        Any demand already carried (a previous partial routing) is left
        in place and only the remainder is attempted, so re-invoking
        after new capacity appears implements the paper's dynamic route
        addition.  Returns the total carried fraction.
        """
        chain = self.model.chains[chain_name]
        remaining = max(0.0, 1.0 - self.solution.routed_fraction(chain_name))
        self._router.route_chain(chain, self.solution, remaining)
        return self.solution.routed_fraction(chain_name)

    def rollback(self, chain_name: str) -> None:
        """Undo a routed chain: release its VNF, site, and link load and
        drop its flows from the accumulated solution.

        Used when a two-phase commit is rejected by a VNF controller and
        the route must be recomputed (Section 3, chain creation).
        """
        chain = self.model.chains[chain_name]
        for z in range(1, chain.num_stages + 1):
            for (src, dst), frac in self.solution.stage_flows(chain_name, z).items():
                traffic = chain.stage_traffic(z) * frac
                if z < chain.num_stages:
                    vnf = chain.vnf_at(z)
                    load = self.model.vnfs[vnf].load_per_unit * traffic
                    self._router.state.commit_vnf(vnf, dst, -load)
                if z > 1:
                    vnf = chain.vnf_at(z - 1)
                    load = self.model.vnfs[vnf].load_per_unit * traffic
                    self._router.state.commit_vnf(vnf, src, -load)
                n1 = self.model.endpoint_node(src)
                n2 = self.model.endpoint_node(dst)
                fwd = chain.forward_traffic[z - 1] * frac
                rev = chain.reverse_traffic[z - 1] * frac
                self._router.state.commit_link_traffic(n1, n2, -fwd)
                self._router.state.commit_link_traffic(n2, n1, -rev)
        self.solution.clear_chain(chain_name)

    def sync_vnf_capacity(self, vnf_name: str, site: str, available: float) -> None:
        """Reconcile the router's view of a VNF's remaining capacity at a
        site with the capacity the VNF controller actually reports (used
        after a two-phase-commit rejection)."""
        current = self._router.state.vnf_residual(vnf_name, site)
        if available < current:
            extra = current - available
            self._router.state.commit_vnf(vnf_name, site, extra)

    def residual_vnf_capacity(self, vnf_name: str, site: str) -> float:
        return self._router.state.vnf_residual(vnf_name, site)


def dp_latency_config() -> DpConfig:
    """Convenience alias for the DP-LATENCY ablation."""
    return DpConfig.latency_only()


def one_hop_config() -> DpConfig:
    """Convenience alias for the ONEHOP ablation."""
    return DpConfig.one_hop()


__all__ = [
    "DpConfig",
    "DpResult",
    "IncrementalDpRouter",
    "dp_latency_config",
    "one_hop_config",
    "route_chains_dp",
]
