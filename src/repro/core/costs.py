"""Utilization cost functions for the dynamic-programming heuristic.

Section 4.4: "Utilization-dependent costs are based on a piecewise-linear
convex function that increases exponentially with utilization at values
above 0.5 [Fortz & Thorup 2000]."

We provide the classic Fortz--Thorup penalty and a small class for
arbitrary piecewise-linear convex functions, so ablations can swap the
penalty shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


class CostError(Exception):
    """Raised on invalid cost-function construction or evaluation."""


@dataclass(frozen=True)
class PiecewiseLinearCost:
    """A convex piecewise-linear function defined by breakpoints and slopes.

    ``breakpoints[i]`` is where slope ``slopes[i]`` begins; the first
    breakpoint must be 0.  Convexity requires strictly increasing
    breakpoints and non-decreasing slopes.  The function is continuous
    with ``f(0) = 0``.
    """

    breakpoints: tuple[float, ...]
    slopes: tuple[float, ...]

    def __init__(self, breakpoints: Sequence[float], slopes: Sequence[float]):
        breakpoints = tuple(float(b) for b in breakpoints)
        slopes = tuple(float(s) for s in slopes)
        if len(breakpoints) != len(slopes):
            raise CostError("breakpoints and slopes must have equal length")
        if not breakpoints or breakpoints[0] != 0.0:
            raise CostError("first breakpoint must be 0")
        if any(b2 <= b1 for b1, b2 in zip(breakpoints, breakpoints[1:])):
            raise CostError("breakpoints must be strictly increasing")
        if any(s2 < s1 for s1, s2 in zip(slopes, slopes[1:])):
            raise CostError("slopes must be non-decreasing (convexity)")
        object.__setattr__(self, "breakpoints", breakpoints)
        object.__setattr__(self, "slopes", slopes)

    def __call__(self, utilization: float) -> float:
        """Evaluate the penalty at the given utilization (>= 0)."""
        if utilization < 0:
            raise CostError(f"negative utilization {utilization}")
        total = 0.0
        for i, (start, slope) in enumerate(zip(self.breakpoints, self.slopes)):
            end = (
                self.breakpoints[i + 1]
                if i + 1 < len(self.breakpoints)
                else float("inf")
            )
            if utilization <= start:
                break
            total += slope * (min(utilization, end) - start)
        return total

    def batch(self, utilization: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`__call__` over an array of utilizations.

        Performs the same per-segment accumulation as the scalar
        evaluation (identical floating-point operation order per
        element), so batch and scalar results are bitwise equal.
        """
        u = np.asarray(utilization, dtype=float)
        total = np.zeros_like(u)
        for i, (start, slope) in enumerate(
            zip(self.breakpoints, self.slopes)
        ):
            end = (
                self.breakpoints[i + 1]
                if i + 1 < len(self.breakpoints)
                else float("inf")
            )
            active = u > start
            if not active.any():
                break
            total = np.where(
                active, total + slope * (np.minimum(u, end) - start), total
            )
        return total

    def marginal(self, utilization: float) -> float:
        """Slope of the penalty at the given utilization."""
        if utilization < 0:
            raise CostError(f"negative utilization {utilization}")
        slope = self.slopes[0]
        for start, s in zip(self.breakpoints, self.slopes):
            if utilization >= start:
                slope = s
        return slope


#: The Fortz--Thorup link-cost function from "Internet traffic engineering
#: by optimizing OSPF weights" (INFOCOM 2000): slope 1 below 1/3
#: utilization, then 3, 10, 70, 500, and 5000 above 110%.  This is the
#: function the paper cites for its utilization-dependent costs.
FORTZ_THORUP = PiecewiseLinearCost(
    breakpoints=(0.0, 1.0 / 3.0, 2.0 / 3.0, 0.9, 1.0, 1.1),
    slopes=(1.0, 3.0, 10.0, 70.0, 500.0, 5000.0),
)


def fortz_thorup_cost(utilization: float) -> float:
    """Evaluate the Fortz--Thorup penalty at ``utilization``."""
    return FORTZ_THORUP(utilization)
