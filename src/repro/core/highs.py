"""Warm-startable LP solves through the HiGHS library bundled with scipy.

``scipy.optimize.linprog`` rebuilds and presolves the whole program on
every call, which wastes most of the solve time when the same structure
is re-solved under new demands -- exactly what ``reoptimize()`` rounds,
the solver farm's incremental ``resolve``, and the capacity-planning
budget sweeps do.  This module talks to the HiGHS instance scipy ships
(``scipy.optimize._highspy``) directly, which exposes what ``linprog``
hides:

- keeping a solver instance alive across solves,
- warm-starting dual simplex from the previous optimal basis, and
- column generation: solving a restricted master over a subset of
  columns and pricing the rest in with one vectorized reduced-cost pass
  (``c - A.T @ y``) per round.

Column generation is only used for programs that are feasible with all
flow variables at zero (``MAX_THROUGHPUT`` chain routing and the
capacity-planning alpha maximization); equality-covered objectives go
through ``linprog`` unchanged.

The private-module import is feature-detected: when unavailable, every
caller falls back to the scipy ``linprog`` path, which remains the
reference implementation.  Setting ``REPRO_LP_BACKEND=linprog`` forces
the fallback (used by the equivalence tests to compare both backends).
"""

from __future__ import annotations

import os

import numpy as np
from scipy.sparse import csc_matrix

try:  # pragma: no cover - exercised implicitly by every import
    from scipy.optimize._highspy import _core as _hc

    _HIGHS_IMPORTED = True
except Exception:  # pragma: no cover - older/newer scipy layouts
    _hc = None
    _HIGHS_IMPORTED = False


def direct_backend_available() -> bool:
    """True when the direct HiGHS backend can (and should) be used."""
    if os.environ.get("REPRO_LP_BACKEND", "").lower() == "linprog":
        return False
    return _HIGHS_IMPORTED


class ColumnGenError(Exception):
    """Raised when the direct backend cannot finish; callers fall back."""


def _new_highs():
    h = _hc._Highs()
    h.setOptionValue("output_flag", False)
    # Presolve rarely pays off on the small restricted masters and
    # discards the warm basis; dual simplex from the previous basis is
    # the whole point here.
    h.setOptionValue("presolve", "off")
    return h


class ColumnGenSolver:
    """Restricted-master column generation with cross-solve warm starts.

    One instance corresponds to one constraint-matrix *structure*; the
    caller caches instances keyed on the model's structure digest and
    calls :meth:`solve` with refreshed numeric data each round.  The
    active column set and the optimal basis survive between calls, so a
    re-solve after a demand change usually costs one dual-simplex run
    plus one or two pricing rounds.
    """

    #: Reduced costs below this are considered improving.
    PRICING_TOL = 1e-9
    #: Safety cap; genuine solves converge in < 20 rounds.
    MAX_ROUNDS = 60

    def __init__(self) -> None:
        if not _HIGHS_IMPORTED:  # pragma: no cover - guarded by callers
            raise ColumnGenError("direct HiGHS backend unavailable")
        self._highs = _new_highs()
        self._active: np.ndarray | None = None  # sorted active column ids
        self._basis = None
        self.last_rounds = 0

    def solve(
        self,
        cost: np.ndarray,
        matrix: csc_matrix,
        row_lower: np.ndarray,
        row_upper: np.ndarray,
        col_lower: np.ndarray,
        col_upper: np.ndarray,
        seed_columns: np.ndarray | None = None,
    ) -> tuple[np.ndarray, float]:
        """Solve ``min c@x  s.t.  rl <= A x <= ru, cl <= x <= cu``.

        The program must be feasible with every column absent (all-zero
        flow), which makes any restricted master feasible.  Returns the
        full-length primal solution and the objective value.
        """
        n_cols = matrix.shape[1]
        matrix_t = matrix.T.tocsr()
        active = self._initial_active(cost, n_cols, seed_columns)

        highs = self._highs
        self._pass_restricted(
            highs, cost, matrix, row_lower, row_upper, col_lower, col_upper, active
        )
        if self._basis is not None and len(self._basis.col_status) == len(active):
            highs.setBasis(self._basis)
        # Dual simplex for the (possibly warm-started) restricted master...
        highs.setOptionValue("simplex_strategy", 1)
        highs.run()
        self._check_status()
        # ...but primal for the pricing re-solves: after addCols the old
        # basis stays primal-feasible (new columns enter nonbasic at 0)
        # while dual feasibility is exactly what pricing violated, so
        # primal iterates only on the entering columns instead of
        # re-solving from scratch.  Measured ~9x on the 128-chain bench.
        highs.setOptionValue("simplex_strategy", 4)

        active_mask = np.zeros(n_cols, dtype=bool)
        active_mask[active] = True
        self.last_rounds = 0
        for _ in range(self.MAX_ROUNDS):
            self.last_rounds += 1
            solution = highs.getSolution()
            duals = np.asarray(solution.row_dual)
            reduced = cost - matrix_t @ duals
            candidates = np.flatnonzero(~active_mask & (reduced < -self.PRICING_TOL))
            if candidates.size == 0:
                break
            take = self._select_columns(candidates, reduced)
            self._add_columns(
                highs, cost, matrix, col_lower, col_upper, take
            )
            active = np.concatenate([active, take])
            active_mask[take] = True
            highs.run()
            self._check_status()
        else:
            raise ColumnGenError("column generation did not converge")

        solution = highs.getSolution()
        x = np.zeros(n_cols)
        x[active] = np.asarray(solution.col_value)
        self._active = np.sort(active)
        self._basis = highs.getBasis()
        # Reorder the saved basis to match the sorted active set used on
        # the next call's restricted master.
        order = np.argsort(active, kind="stable")
        col_status = list(self._basis.col_status)
        self._basis.col_status = [col_status[i] for i in order]
        return x, float(cost[active] @ np.asarray(solution.col_value))

    # -- internals ------------------------------------------------------

    @staticmethod
    def _select_columns(
        candidates: np.ndarray, reduced: np.ndarray
    ) -> np.ndarray:
        """Most-negative reduced-cost candidates to price in this round."""
        order = np.argsort(reduced[candidates])
        return candidates[order[: max(500, candidates.size // 4)]]

    def _initial_active(
        self,
        cost: np.ndarray,
        n_cols: int,
        seed_columns: np.ndarray | None,
    ) -> np.ndarray:
        if self._active is not None and self._active.size and (
            self._active < n_cols
        ).all():
            return self._active
        if seed_columns is not None:
            active = np.unique(np.asarray(seed_columns, dtype=np.int64))
        else:
            active = np.flatnonzero(cost != 0.0)
        if active.size == 0:
            active = np.arange(min(n_cols, 1), dtype=np.int64)
        return active

    @staticmethod
    def _pass_restricted(
        highs,
        cost: np.ndarray,
        matrix: csc_matrix,
        row_lower: np.ndarray,
        row_upper: np.ndarray,
        col_lower: np.ndarray,
        col_upper: np.ndarray,
        active: np.ndarray,
    ) -> None:
        sub = matrix[:, active]
        lp = _hc.HighsLp()
        lp.num_col_ = int(len(active))
        lp.num_row_ = int(matrix.shape[0])
        lp.col_cost_ = cost[active]
        lp.col_lower_ = col_lower[active]
        lp.col_upper_ = col_upper[active]
        lp.row_lower_ = row_lower
        lp.row_upper_ = row_upper
        lp.a_matrix_.format_ = _hc.MatrixFormat.kColwise
        lp.a_matrix_.start_ = sub.indptr
        lp.a_matrix_.index_ = sub.indices
        lp.a_matrix_.value_ = sub.data
        highs.passModel(lp)

    @staticmethod
    def _add_columns(
        highs,
        cost: np.ndarray,
        matrix: csc_matrix,
        col_lower: np.ndarray,
        col_upper: np.ndarray,
        take: np.ndarray,
    ) -> None:
        sub = matrix[:, take]
        highs.addCols(
            int(take.size),
            cost[take],
            col_lower[take],
            col_upper[take],
            int(sub.nnz),
            sub.indptr[:-1],
            sub.indices,
            sub.data,
        )

    def _check_status(self) -> None:
        status = self._highs.getModelStatus()
        if status != _hc.HighsModelStatus.kOptimal:
            # Any restricted master of a zero-feasible program is
            # feasible; anything else is a numerical failure.
            self._active = None
            self._basis = None
            raise ColumnGenError(f"HiGHS status {status}")


__all__ = [
    "ColumnGenError",
    "ColumnGenSolver",
    "direct_backend_available",
]
