"""Columnar (numpy) views of :class:`~repro.core.model.NetworkModel`.

The dict-of-dataclasses model is convenient for construction and for the
simulation layers, but the LP assembly in :mod:`repro.core.lp` and
:mod:`repro.core.capacity` touches every (chain, stage, src, dst) tuple
and was dominated by per-variable Python loops.  This module flattens the
model into integer index maps and dense/ragged numpy arrays once, so
constraint matrices can be assembled from array slices (COO triplets)
instead.

Three layers, mirroring what changes how often:

- :class:`SubstrateColumns` — nodes, latencies, sites, VNF deployments,
  links and routing fractions.  Invariant under chain changes, so
  ``copy_with_chains`` shares it between model copies.
- :class:`ChainColumns` — the flattened (chain, stage) table with
  per-stage demands and endpoint lists.  Cheap to rebuild; refreshed
  whenever chains are added, removed, or rescaled.
- :func:`build_variable_columns` — the cartesian (src × dst) expansion
  defining the LP variable order.  This is the expensive part and is what
  the constraint-matrix caches in ``lp.py``/``capacity.py`` key on.

Index-map invariants (relied on by the assembly code and documented in
DESIGN.md):

- node/site/vnf/link/chain indices follow the model's dict insertion
  order, matching the scalar code's iteration order exactly;
- endpoint ids are ``node_index`` for nodes and ``n_nodes + site_index``
  for sites (a site and its colocated node are distinct endpoints);
- variable order is chain-major, then stage, then source-major over the
  stage's (sources × destinations) — identical to the historical
  ``_VariableSpace`` enumeration, so cached matrices stay valid for
  solution extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ModelError, NetworkModel


def _ranges(lengths: np.ndarray) -> np.ndarray:
    """``concatenate([arange(n) for n in lengths])`` without the loop."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.cumsum(lengths) - lengths
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)


def ragged_gather(
    starts: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-row (start, length) slices into flat pool indices.

    Returns ``(pool_idx, row_of)`` where ``pool_idx[k]`` indexes the
    pool entry and ``row_of[k]`` the originating row.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    rows = np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)
    pool_idx = np.repeat(np.asarray(starts, dtype=np.int64), lengths) + _ranges(
        lengths
    )
    return pool_idx, rows


class SubstrateColumns:
    """Numpy view of everything in the model except the chains."""

    def __init__(self, model: NetworkModel):
        self.nodes: list[str] = list(model.nodes)
        self.node_index: dict[str, int] = {
            name: i for i, name in enumerate(self.nodes)
        }
        n = len(self.nodes)

        # Dense one-way delay matrix with the same semantics as
        # ``model.latency``: explicit entry, symmetric fallback, zero
        # diagonal, +inf when genuinely unknown.
        lat = np.full((n, n), np.inf)
        np.fill_diagonal(lat, 0.0)
        for (n1, n2), d in model._latency.items():
            i, j = self.node_index[n1], self.node_index[n2]
            if np.isinf(lat[j, i]) and j != i:
                lat[j, i] = d  # symmetric fallback
            lat[i, j] = d
        for (n1, n2), d in model._latency.items():
            i, j = self.node_index[n1], self.node_index[n2]
            lat[i, j] = d  # explicit entries win over fallbacks
        self.latency = lat

        # Sites / endpoints.  Endpoint id = node id, or n_nodes + site id.
        self.site_names: list[str] = list(model.sites)
        self.site_index: dict[str, int] = {
            s: i for i, s in enumerate(self.site_names)
        }
        self.site_node = np.array(
            [self.node_index[model.sites[s].node] for s in self.site_names],
            dtype=np.int64,
        )
        self.site_capacity = np.array(
            [model.sites[s].capacity for s in self.site_names]
        )
        self.n_nodes = n
        self.endpoint_names: list[str] = self.nodes + self.site_names
        self.endpoint_index: dict[str, int] = {}
        for i, name in enumerate(self.endpoint_names):
            # Later site entries shadow same-named nodes, matching
            # ``NetworkModel.endpoint_node``'s site-first resolution.
            self.endpoint_index[name] = i
        self.endpoint_node = np.concatenate(
            [np.arange(n, dtype=np.int64), self.site_node]
        ) if self.site_names else np.arange(n, dtype=np.int64)

        # VNF catalog and ragged deployment lists.
        self.vnf_names: list[str] = list(model.vnfs)
        self.vnf_index: dict[str, int] = {
            v: i for i, v in enumerate(self.vnf_names)
        }
        self.vnf_load = np.array(
            [model.vnfs[v].load_per_unit for v in self.vnf_names]
        )
        self.vnf_sites: list[np.ndarray] = []
        for v in self.vnf_names:
            sites = model.vnfs[v].sites
            self.vnf_sites.append(
                np.array([self.site_index[s] for s in sites], dtype=np.int64)
            )
        self.vnf_site_cap: dict[tuple[int, int], float] = {}
        for v in self.vnf_names:
            vi = self.vnf_index[v]
            for s, cap in model.vnfs[v].site_capacity.items():
                self.vnf_site_cap[(vi, self.site_index[s])] = cap

        # Name ranks reproduce the scalar code's sorted-by-name row order.
        self.site_rank = _rank(self.site_names)
        self.vnf_rank = _rank(self.vnf_names)

        # Links.
        self.link_names: list[str] = list(model.links)
        self.link_index: dict[str, int] = {
            name: i for i, name in enumerate(self.link_names)
        }
        self.link_bandwidth = np.array(
            [model.links[name].bandwidth for name in self.link_names]
        )
        self.link_background = np.array(
            [model.links[name].background for name in self.link_names]
        )
        self.link_rank = _rank(self.link_names)

        # Routing fractions as a CSR over node pairs: pair_id[n1, n2]
        # selects a slice [pair_start[p] : pair_start[p] + pair_len[p])
        # of (pool_link, pool_frac).
        self.pair_id = np.full((n, n), -1, dtype=np.int64)
        starts: list[int] = []
        lens: list[int] = []
        pool_link: list[int] = []
        pool_frac: list[float] = []
        for p, ((n1, n2), fractions) in enumerate(model.routing.items()):
            self.pair_id[self.node_index[n1], self.node_index[n2]] = p
            starts.append(len(pool_link))
            lens.append(len(fractions))
            for link_name, frac in fractions.items():
                pool_link.append(self.link_index[link_name])
                pool_frac.append(frac)
        self.pair_start = np.array(starts, dtype=np.int64)
        self.pair_len = np.array(lens, dtype=np.int64)
        self.pool_link = np.array(pool_link, dtype=np.int64)
        self.pool_frac = np.array(pool_frac)
        self.mlu_limit = model.mlu_limit

    def headroom(self) -> np.ndarray:
        """Per-link capacity available under the MLU budget."""
        return np.maximum(
            0.0, self.mlu_limit * self.link_bandwidth - self.link_background
        )

    def endpoint_id(self, name: str, model: NetworkModel) -> int:
        """Endpoint id of a site name or node name (site wins)."""
        if name in self.site_index:
            return self.n_nodes + self.site_index[name]
        node = self.node_index.get(name)
        if node is None:
            raise ModelError(f"unknown endpoint {name!r}")
        return node


def _rank(names: list[str]) -> np.ndarray:
    """``rank[i]`` = position of ``names[i]`` in sorted name order."""
    order = sorted(range(len(names)), key=lambda i: names[i])
    rank = np.zeros(len(names), dtype=np.int64)
    for pos, i in enumerate(order):
        rank[i] = pos
    return rank


class ChainColumns:
    """Flattened (chain, stage) table for the model's current chains.

    Rebuilding this is cheap (linear in the number of stages); the
    expensive cartesian variable expansion lives in
    :func:`build_variable_columns` and is cached on matrix structure.
    """

    def __init__(self, model: NetworkModel, sub: SubstrateColumns):
        self.chain_names: list[str] = list(model.chains)
        self.chain_index: dict[str, int] = {
            c: i for i, c in enumerate(self.chain_names)
        }
        st_chain: list[int] = []
        st_z: list[int] = []
        st_fwd: list[float] = []
        st_rev: list[float] = []
        st_src_vnf: list[int] = []
        st_dst_vnf: list[int] = []
        src_pool: list[np.ndarray] = []
        dst_pool: list[np.ndarray] = []
        src_start: list[int] = []
        src_len: list[int] = []
        dst_start: list[int] = []
        dst_len: list[int] = []
        self.chain_stage_start: list[int] = []
        pool_src_n = 0
        pool_dst_n = 0
        for ci, cname in enumerate(self.chain_names):
            chain = model.chains[cname]
            self.chain_stage_start.append(len(st_chain))
            stages = chain.num_stages
            for z in range(1, stages + 1):
                st_chain.append(ci)
                st_z.append(z)
                st_fwd.append(chain.forward_traffic[z - 1])
                st_rev.append(chain.reverse_traffic[z - 1])
                if z == 1:
                    srcs = np.array(
                        [sub.endpoint_id(chain.ingress, model)], dtype=np.int64
                    )
                    st_src_vnf.append(-1)
                else:
                    vi = sub.vnf_index[chain.vnfs[z - 2]]
                    srcs = sub.n_nodes + sub.vnf_sites[vi]
                    st_src_vnf.append(vi)
                if z == stages:
                    dsts = np.array(
                        [sub.endpoint_id(chain.egress, model)], dtype=np.int64
                    )
                    st_dst_vnf.append(-1)
                else:
                    vi = sub.vnf_index[chain.vnfs[z - 1]]
                    dsts = sub.n_nodes + sub.vnf_sites[vi]
                    st_dst_vnf.append(vi)
                src_pool.append(srcs)
                dst_pool.append(dsts)
                src_start.append(pool_src_n)
                src_len.append(len(srcs))
                dst_start.append(pool_dst_n)
                dst_len.append(len(dsts))
                pool_src_n += len(srcs)
                pool_dst_n += len(dsts)
        self.n_stage_rows = len(st_chain)
        self.stage_chain = np.array(st_chain, dtype=np.int64)
        self.stage_z = np.array(st_z, dtype=np.int64)
        self.stage_fwd = np.array(st_fwd)
        self.stage_rev = np.array(st_rev)
        self.stage_total = self.stage_fwd + self.stage_rev
        self.stage_src_vnf = np.array(st_src_vnf, dtype=np.int64)
        self.stage_dst_vnf = np.array(st_dst_vnf, dtype=np.int64)
        self.src_pool = (
            np.concatenate(src_pool) if src_pool else np.zeros(0, np.int64)
        )
        self.dst_pool = (
            np.concatenate(dst_pool) if dst_pool else np.zeros(0, np.int64)
        )
        self.src_start = np.array(src_start, dtype=np.int64)
        self.src_len = np.array(src_len, dtype=np.int64)
        self.dst_start = np.array(dst_start, dtype=np.int64)
        self.dst_len = np.array(dst_len, dtype=np.int64)
        # Number of stages per chain (for conservation row bases).
        self.chain_stage_start.append(self.n_stage_rows)

    def structure_signature(self) -> tuple:
        """Hashable summary of everything except demand magnitudes.

        Demand *positivity* is included: the link-constraint sparsity
        pattern keeps an entry only when the stage's forward (reverse)
        demand is non-zero, so flipping a demand between zero and
        positive changes matrix structure, not just values.
        """
        return (
            tuple(self.chain_names),
            self.stage_chain.tobytes(),
            self.stage_src_vnf.tobytes(),
            self.stage_dst_vnf.tobytes(),
            self.src_pool.tobytes(),
            self.dst_pool.tobytes(),
            (self.stage_fwd > 0).tobytes(),
            (self.stage_rev > 0).tobytes(),
        )


@dataclass
class VariableColumns:
    """The cartesian (src × dst) variable expansion, in scalar order."""

    n_vars: int
    var_stage: np.ndarray  # index into the ChainColumns stage table
    var_src_ep: np.ndarray  # endpoint ids
    var_dst_ep: np.ndarray
    var_src_pos: np.ndarray  # position of src in its stage's source list
    var_dst_pos: np.ndarray  # position of dst in its stage's dest list
    var_latency: np.ndarray  # one-way delay src -> dst
    stage_var_start: np.ndarray  # first variable of each stage row


def build_variable_columns(
    sub: SubstrateColumns, ch: ChainColumns
) -> VariableColumns:
    """Expand the stage table into per-variable arrays.

    The order is exactly the historical scalar enumeration: for each
    stage row, sources vary slowest and destinations fastest.
    """
    counts = ch.src_len * ch.dst_len
    stage_var_start = np.concatenate(
        [[0], np.cumsum(counts)]
    ).astype(np.int64)
    n_vars = int(stage_var_start[-1])
    var_stage = np.repeat(
        np.arange(ch.n_stage_rows, dtype=np.int64), counts
    )

    # src index repeats each destination-count times within its stage row;
    # dst index tiles across sources.
    src_sel, _rows = ragged_gather(ch.src_start, ch.src_len)
    # Expand each source entry by its stage's destination count.
    per_src_repeat = np.repeat(ch.dst_len, ch.src_len)
    var_src_ep = np.repeat(ch.src_pool[src_sel], per_src_repeat)
    var_src_pos = np.repeat(
        _ranges(ch.src_len), per_src_repeat
    )

    # Destinations: for each stage row, tile the dst list src_len times.
    tiled_dst_start = np.repeat(ch.dst_start, ch.src_len)
    tiled_dst_len = np.repeat(ch.dst_len, ch.src_len)
    dst_sel, _ = ragged_gather(tiled_dst_start, tiled_dst_len)
    var_dst_ep = ch.dst_pool[dst_sel]
    var_dst_pos = _ranges(tiled_dst_len)

    lat = sub.latency[
        sub.endpoint_node[var_src_ep], sub.endpoint_node[var_dst_ep]
    ]
    if np.isinf(lat).any():
        bad = int(np.argmax(np.isinf(lat)))
        src = sub.endpoint_names[int(var_src_ep[bad])]
        dst = sub.endpoint_names[int(var_dst_ep[bad])]
        raise ModelError(f"no latency entry for {src!r} -> {dst!r}")
    return VariableColumns(
        n_vars=n_vars,
        var_stage=var_stage,
        var_src_ep=var_src_ep,
        var_dst_ep=var_dst_ep,
        var_src_pos=var_src_pos,
        var_dst_pos=var_dst_pos,
        var_latency=lat,
        stage_var_start=stage_var_start,
    )


class ModelColumns:
    """Bundle of the substrate, chain, and variable columns for a model."""

    def __init__(self, model: NetworkModel):
        self.substrate = model.substrate_columns()
        self.chains = ChainColumns(model, self.substrate)
        self.variables = build_variable_columns(self.substrate, self.chains)


__all__ = [
    "ChainColumns",
    "ModelColumns",
    "SubstrateColumns",
    "VariableColumns",
    "build_variable_columns",
    "ragged_gather",
]
