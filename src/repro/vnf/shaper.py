"""A traffic-shaper network function.

Section 5.3 cites traffic shapers as the class of stateful VNF that
needs *flow affinity but not symmetric return*: the token-bucket state
for a flow lives in one instance, but nothing about the reverse
direction must return there.

The shaper is a classic token-bucket policer.  Time is advanced
explicitly (``advance``) so behaviour is deterministic in tests and in
the synchronous data-plane walker.
"""

from __future__ import annotations

from repro.dataplane.forwarder import DropPacket
from repro.dataplane.labels import Packet


class ShaperError(Exception):
    """Raised on invalid shaper configuration."""

class TokenBucketShaper:
    """Token-bucket policer: ``rate`` bytes/s sustained, ``burst`` bytes
    of headroom.  Packets that find insufficient tokens are dropped
    (policing, as with ``tc police``)."""

    def __init__(self, rate_bytes_per_s: float, burst_bytes: float):
        if rate_bytes_per_s <= 0:
            raise ShaperError(f"non-positive rate {rate_bytes_per_s}")
        if burst_bytes <= 0:
            raise ShaperError(f"non-positive burst {burst_bytes}")
        self.rate = rate_bytes_per_s
        self.burst = burst_bytes
        self.tokens = burst_bytes
        self.forwarded = 0
        self.dropped = 0

    def advance(self, seconds: float) -> None:
        """Accumulate tokens for elapsed time."""
        if seconds < 0:
            raise ShaperError(f"negative time step {seconds}")
        self.tokens = min(self.burst, self.tokens + seconds * self.rate)

    def __call__(self, packet: Packet) -> None:
        if packet.size_bytes <= self.tokens:
            self.tokens -= packet.size_bytes
            self.forwarded += 1
            return
        self.dropped += 1
        raise DropPacket(
            f"shaper: {packet.size_bytes}B packet exceeds "
            f"{self.tokens:.0f}B of tokens"
        )
