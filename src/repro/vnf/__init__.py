"""VNF platform services (Section 3) and behavioural VNF models.

A *VNF service* is a multi-site, multi-tenant service: instances at each
deployment site plus a centralized VNF controller that manages capacity
and participates in Global Switchboard's two-phase chain installation.

Behavioural models of the VNFs used in the paper's experiments:

- :mod:`repro.vnf.nat` -- a NAT (iptables in the paper) that rewrites
  five-tuples and needs symmetric return;
- :mod:`repro.vnf.firewall` -- a stateful firewall that needs flow
  affinity;
- :mod:`repro.vnf.cache` -- the Squid-style web cache of the Table 3
  shared-vs-siloed experiment, driven by a Zipf workload.
"""

from repro.vnf.cache import (
    CacheExperimentResult,
    LruCache,
    ZipfWorkload,
    run_cache_experiment,
)
from repro.vnf.compressor import Compressor, compressed_stage_demands
from repro.vnf.firewall import StatefulFirewall
from repro.vnf.ids import IntrusionDetector
from repro.vnf.nat import NatFunction
from repro.vnf.service import AllocationError, VnfService
from repro.vnf.shaper import TokenBucketShaper

__all__ = [
    "AllocationError",
    "CacheExperimentResult",
    "Compressor",
    "compressed_stage_demands",
    "IntrusionDetector",
    "LruCache",
    "NatFunction",
    "StatefulFirewall",
    "TokenBucketShaper",
    "VnfService",
    "ZipfWorkload",
    "run_cache_experiment",
]
