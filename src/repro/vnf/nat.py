"""A NAT network function (the paper's iptables NAT).

Forward packets get their source rewritten to the NAT's public address
with an allocated port; reverse packets addressed to the public mapping
are rewritten back to the original private endpoint.  A NAT is the
paper's canonical VNF requiring *symmetric return*: a reverse packet
that reached a different NAT instance would find no mapping and be
dropped -- which :class:`DropPacket` models.
"""

from __future__ import annotations

from repro.dataplane.forwarder import DropPacket
from repro.dataplane.labels import FiveTuple, Packet

__all__ = ["DropPacket", "NatFunction"]


class NatFunction:
    """Source NAT with per-instance mapping state.

    Use one instance per data-plane :class:`VnfInstance`; the mapping
    table is deliberately *not* shared between instances, which is what
    makes symmetric return a correctness requirement.
    """

    def __init__(self, public_ip: str, port_base: int = 40000):
        self.public_ip = public_ip
        self._next_port = port_base
        #: (private ip, private port, protocol) -> public port
        self._forward: dict[tuple[str, int, str], int] = {}
        #: public port -> (private ip, private port, protocol)
        self._reverse: dict[int, tuple[str, int, str]] = {}
        self.translations = 0
        self.drops = 0

    def __call__(self, packet: Packet) -> None:
        if packet.direction == "forward":
            self._translate_forward(packet)
        else:
            self._translate_reverse(packet)

    def _translate_forward(self, packet: Packet) -> None:
        flow = packet.flow
        key = (flow.src_ip, flow.src_port, flow.protocol)
        port = self._forward.get(key)
        if port is None:
            port = self._next_port
            self._next_port += 1
            self._forward[key] = port
            self._reverse[port] = key
        packet.flow = FiveTuple(
            self.public_ip, flow.dst_ip, flow.protocol, port, flow.dst_port
        )
        self.translations += 1

    def _translate_reverse(self, packet: Packet) -> None:
        flow = packet.flow
        if flow.dst_ip != self.public_ip:
            self.drops += 1
            raise DropPacket(
                f"NAT {self.public_ip}: reverse packet for foreign address "
                f"{flow.dst_ip}"
            )
        mapping = self._reverse.get(flow.dst_port)
        if mapping is None or mapping[2] != flow.protocol:
            self.drops += 1
            raise DropPacket(
                f"NAT {self.public_ip}: no mapping for port {flow.dst_port}"
            )
        private_ip, private_port, protocol = mapping
        packet.flow = FiveTuple(
            flow.src_ip, private_ip, protocol, flow.src_port, private_port
        )
        self.translations += 1
